//! Datagram (UDP) sockets.
//!
//! Memcached's UDP mode is the §III baseline: Facebook's scaling work
//! ("Scaling memcached at Facebook") moved gets to UDP to cut per-
//! connection memory and kernel overhead, reaching ~250 K requests/s per
//! server at 173 µs average latency. Datagrams here are unreliable: no
//! connection, silent loss when the receiver's socket buffer overflows
//! (the real failure mode Facebook engineered around), silent loss into
//! dead nodes, and per-message kernel costs like the TCP paths — but no
//! per-connection state.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use simnet::profiles::SocketStackProfile;
use simnet::sync::Notify;
use simnet::{Network, Sim, Stack};

use crate::fabric::SockFabricInner;
use crate::stream::{SockError, SocketAddr};

/// Datagrams queued beyond this bound are dropped (SO_RCVBUF overflow).
pub const DGRAM_RCVBUF_DATAGRAMS: usize = 256;

/// Largest UDP payload accepted (IPv4 datagram limit minus headers).
pub const MAX_DGRAM_BYTES: usize = 65_507;

pub(crate) struct DgramInbox {
    pub queue: RefCell<VecDeque<(SocketAddr, Vec<u8>)>>,
    pub notify: Rc<Notify>,
    pub dropped: std::cell::Cell<u64>,
}

/// An unconnected datagram socket bound to `(stack, node, port)`.
pub struct DgramSocket {
    pub(crate) fabric: Rc<SockFabricInner>,
    pub(crate) stack: Stack,
    pub(crate) profile: SocketStackProfile,
    pub(crate) net: Rc<Network>,
    pub(crate) local: SocketAddr,
    pub(crate) inbox: Rc<DgramInbox>,
}

impl DgramSocket {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Datagrams dropped at this socket due to buffer overflow.
    pub fn dropped(&self) -> u64 {
        self.inbox.dropped.get()
    }

    /// Sends one datagram to `dst`. Resolves when the local kernel has
    /// taken the packet; delivery is best-effort.
    pub async fn send_to(&self, dst: SocketAddr, payload: &[u8]) -> Result<(), SockError> {
        if payload.len() > MAX_DGRAM_BYTES {
            return Err(SockError::Closed);
        }
        let sim = self.sim();
        if self.fabric.is_dead(self.local.node) {
            return Err(SockError::Closed);
        }
        if dst.node == self.local.node {
            return Err(SockError::ConnectionRefused);
        }
        sim.sleep(self.profile.app_send).await;
        let kernel = &self.fabric.cluster.node(self.local.node).kernel;
        let launch = kernel.occupy_from(sim.now(), self.profile.kernel_send);
        let wire = payload.len() as u64 + 46; // UDP/IP/Ethernet headers
        let fabric = self.fabric.clone();
        let profile = self.profile;
        let stack = self.stack;
        let src = self.local;
        let payload = payload.to_vec();
        let sim2 = sim.clone();
        self.net
            .transmit(&sim, src.node, dst.node, wire, launch, move || {
                if fabric.is_dead(dst.node) {
                    return; // dropped on the floor
                }
                let kernel = &fabric.cluster.node(dst.node).kernel;
                let ready = kernel.occupy_from(
                    sim2.now(),
                    profile.kernel_recv + profile.data_path_cost(payload.len() as u64),
                );
                let fabric2 = fabric.clone();
                sim2.clone().schedule_at(ready, move || {
                    let Some(inbox) = fabric2.dgram_inbox(stack, dst) else {
                        return; // no socket bound: ICMP port unreachable, i.e. silence
                    };
                    let mut q = inbox.queue.borrow_mut();
                    if q.len() >= DGRAM_RCVBUF_DATAGRAMS {
                        // Receive buffer overflow: the datagram is lost. This
                        // is UDP's defining hazard under load.
                        inbox.dropped.set(inbox.dropped.get() + 1);
                        return;
                    }
                    q.push_back((src, payload));
                    drop(q);
                    inbox.notify.notify_all();
                });
            });
        Ok(())
    }

    /// Receives the next datagram (waits if none is queued).
    pub async fn recv_from(&self) -> Result<(SocketAddr, Vec<u8>), SockError> {
        let sim = self.sim();
        loop {
            let popped = self.inbox.queue.borrow_mut().pop_front();
            if let Some(dgram) = popped {
                sim.sleep(self.profile.app_recv).await;
                return Ok(dgram);
            }
            if self.fabric.is_dead(self.local.node) {
                return Err(SockError::Closed);
            }
            let inbox = self.inbox.clone();
            let notify = self.inbox.notify.clone();
            notify
                .wait_until(move || !inbox.queue.borrow().is_empty())
                .await;
        }
    }

    fn sim(&self) -> Sim {
        self.fabric.cluster.sim().clone()
    }
}

impl Drop for DgramSocket {
    fn drop(&mut self) {
        self.fabric.dgram_unbind(self.stack, self.local);
    }
}
