//! Byte-stream sockets: the data path.
//!
//! A [`Socket`] is one endpoint of a full-duplex byte stream. Unlike the
//! verbs layer, a socket write crosses the kernel: the sender pays a
//! syscall cost, the sending node's kernel pipeline is occupied per
//! message, the bytes are segmented onto the wire with per-segment header
//! overhead, and the receiving node's kernel pipeline is occupied for the
//! per-message cost *plus the per-byte data-path cost* (buffer copies and
//! byte-stream re-framing — the semantic mismatch the paper identifies as
//! the fundamental sockets limitation, §III). The reader finally pays a
//! wakeup/copy-out cost. All of this is driven by the per-stack
//! [`SocketStackProfile`](simnet::profiles::SocketStackProfile).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use simnet::profiles::SocketStackProfile;
use simnet::sync::Notify;
use simnet::{Network, NodeId, Sim, SimDuration, Stack};

use crate::fabric::SockFabricInner;

/// Errors from socket operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SockError {
    /// The peer closed (or its node died) and all buffered data is drained.
    Closed,
    /// No listener at the target, or the target node is down.
    ConnectionRefused,
    /// Connect handshake timed out.
    ConnectionTimeout,
    /// The requested transport does not exist on this cluster.
    StackUnavailable(Stack),
}

impl fmt::Display for SockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SockError::Closed => write!(f, "connection closed"),
            SockError::ConnectionRefused => write!(f, "connection refused"),
            SockError::ConnectionTimeout => write!(f, "connection timed out"),
            SockError::StackUnavailable(s) => {
                write!(f, "transport {} not available on this cluster", s.label())
            }
        }
    }
}

impl std::error::Error for SockError {}

/// A socket address: node + service port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SocketAddr {
    /// Target node.
    pub node: NodeId,
    /// Service port.
    pub port: u16,
}

/// Per-direction receive buffer (lives at the receiving endpoint).
pub(crate) struct RecvBuf {
    pub data: RefCell<VecDeque<u8>>,
    pub notify: Rc<Notify>,
    pub closed: Cell<bool>,
    /// Latest scheduled delivery instant: keeps the byte stream in order
    /// even when a jitter spike delays one message.
    pub last_delivery: Cell<simnet::SimTime>,
}

impl RecvBuf {
    pub(crate) fn new() -> Rc<RecvBuf> {
        Rc::new(RecvBuf {
            data: RefCell::new(VecDeque::new()),
            notify: Rc::new(Notify::new()),
            closed: Cell::new(false),
            last_delivery: Cell::new(simnet::SimTime::ZERO),
        })
    }

    pub(crate) fn push(&self, bytes: &[u8]) {
        self.data.borrow_mut().extend(bytes.iter().copied());
        self.notify.notify_all();
    }

    pub(crate) fn close(&self) {
        self.closed.set(true);
        self.notify.notify_all();
    }
}

/// Ethernet/IP/TCP (or IPoIB/SDP framing) header bytes charged per segment.
const SEGMENT_HEADER_BYTES: u64 = 66;

/// Extra launch delay for small writes when Nagle's algorithm is left on.
/// The paper's benchmarks set `MEMCACHED_BEHAVIOR_TCP_NODELAY, 1` to avoid
/// exactly this coalescing penalty (§VI).
const NAGLE_COALESCE_DELAY: SimDuration = SimDuration::from_micros(400);

/// One endpoint of an established byte-stream connection.
pub struct Socket {
    pub(crate) fabric: Rc<SockFabricInner>,
    pub(crate) stack: Stack,
    pub(crate) profile: SocketStackProfile,
    pub(crate) net: Rc<Network>,
    pub(crate) local: SocketAddr,
    pub(crate) peer: SocketAddr,
    /// Inbound bytes for this endpoint.
    pub(crate) rx: Rc<RecvBuf>,
    /// The peer's inbound buffer (where our writes land).
    pub(crate) peer_rx: Rc<RecvBuf>,
    pub(crate) nodelay: Cell<bool>,
    pub(crate) sock_id: u64,
    /// Set by [`close`](Socket::close): writes fail immediately (EPIPE).
    pub(crate) local_closed: Cell<bool>,
}

impl Socket {
    /// Local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Peer address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Transport this socket runs on.
    pub fn stack(&self) -> Stack {
        self.stack
    }

    /// Enables/disables Nagle coalescing (`TCP_NODELAY`). Memcached's
    /// clients set this, and the paper's benchmarks rely on it.
    pub fn set_nodelay(&self, on: bool) {
        self.nodelay.set(on);
    }

    /// Queues `buf` for transmission. Resolves when the local kernel has
    /// accepted the bytes (socket-buffer semantics): the transfer itself
    /// completes asynchronously in simulated time.
    pub async fn write_all(&self, buf: &[u8]) -> Result<(), SockError> {
        let sim = self.sim();
        if self.local_closed.get() || self.peer_rx.closed.get() {
            return Err(SockError::Closed);
        }
        if self.fabric.is_dead(self.local.node) {
            return Err(SockError::Closed);
        }
        // Application-side syscall + copy into the socket buffer.
        sim.sleep(self.profile.app_send).await;

        let mss = (self.net.mtu() as u64)
            .saturating_sub(SEGMENT_HEADER_BYTES)
            .max(1);
        let nseg = (buf.len() as u64).div_ceil(mss).max(1);
        let wire_bytes = buf.len() as u64 + nseg * SEGMENT_HEADER_BYTES;

        // Kernel send-side occupancy (shared with every other socket on
        // this node).
        let src_kernel = &self.fabric.cluster.node(self.local.node).kernel;
        let mut launch = src_kernel.occupy_from(sim.now(), self.profile.kernel_send);
        if !self.nodelay.get() && (buf.len() as u64) < mss {
            launch += NAGLE_COALESCE_DELAY;
        }

        // Receive-side work happens at delivery.
        let fabric = self.fabric.clone();
        let dst_node = self.peer.node;
        let profile = self.profile;
        let peer_rx = self.peer_rx.clone();
        let payload = buf.to_vec();
        let sim2 = sim.clone();
        self.net.transmit(
            &sim,
            self.local.node,
            dst_node,
            wire_bytes,
            launch,
            move || {
                if fabric.is_dead(dst_node) {
                    return; // bytes vanish into the dead node
                }
                // Kernel receive-side occupancy: per-message cost plus the
                // per-byte data path (copies, re-framing).
                let service = profile.kernel_recv + profile.data_path_cost(payload.len() as u64);
                let dst_kernel = &fabric.cluster.node(dst_node).kernel;
                let mut ready = dst_kernel.occupy_from(sim2.now(), service);
                // Jitter spikes (the SDP-on-QDR artifact, §VI-B) delay this
                // message's delivery but do not burn shared kernel time —
                // the paper observes noisy latency, not collapsed
                // throughput.
                if let Some(j) = profile.jitter {
                    let spike = fabric.cluster.sim().with_rng(|r| {
                        if r.gen_bool(j.prob) {
                            r.gen_exp(j.mean)
                        } else {
                            SimDuration::ZERO
                        }
                    });
                    ready += spike;
                }
                // TCP ordering: never deliver before earlier bytes of this
                // direction.
                ready = ready.max(peer_rx.last_delivery.get());
                peer_rx.last_delivery.set(ready);
                sim2.clone().schedule_at(ready, move || {
                    if !peer_rx.closed.get() {
                        peer_rx.push(&payload);
                    }
                });
            },
        );
        Ok(())
    }

    /// Reads up to `max` available bytes, waiting for at least one.
    /// `Err(Closed)` once the peer has closed and the buffer is drained.
    pub async fn read(&self, max: usize) -> Result<Vec<u8>, SockError> {
        assert!(max > 0, "read of zero bytes");
        let sim = self.sim();
        loop {
            if self.local_closed.get() {
                return Err(SockError::Closed);
            }
            let taken = {
                let mut data = self.rx.data.borrow_mut();
                if data.is_empty() {
                    None
                } else {
                    let n = data.len().min(max);
                    Some(data.drain(..n).collect::<Vec<u8>>())
                }
            };
            if let Some(out) = taken {
                // Reader wakeup + copy-out.
                sim.sleep(self.profile.app_recv).await;
                return Ok(out);
            }
            if self.rx.closed.get() {
                return Err(SockError::Closed);
            }
            let rx = self.rx.clone();
            let notify = self.rx.notify.clone();
            notify
                .wait_until(move || !rx.data.borrow().is_empty() || rx.closed.get())
                .await;
        }
    }

    /// Reads exactly `n` bytes (looping over [`read`](Socket::read)).
    pub async fn read_exact(&self, n: usize) -> Result<Vec<u8>, SockError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let chunk = self.read(n - out.len()).await?;
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// Bytes currently buffered for reading.
    pub fn available(&self) -> usize {
        self.rx.data.borrow().len()
    }

    /// Closes both directions. The peer observes EOF after the in-flight
    /// data drains (a FIN takes one propagation delay).
    pub fn close(&self) {
        let sim = self.sim();
        self.local_closed.set(true);
        self.rx.close();
        let peer_rx = self.peer_rx.clone();
        sim.schedule(self.net.propagation(), move || peer_rx.close());
        self.fabric.forget(self.sock_id);
    }

    fn sim(&self) -> Sim {
        self.fabric.cluster.sim().clone()
    }
}

impl fmt::Debug for Socket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Socket")
            .field("stack", &self.stack)
            .field("local", &self.local)
            .field("peer", &self.peer)
            .finish()
    }
}
