//! # socksim — byte-stream transports over the simulated fabric
//!
//! The baseline side of the paper's comparison: BSD-socket semantics over
//! four stacks — plain kernel TCP on **1GigE**, hardware-offloaded TCP on
//! **10GigE-TOE**, kernel TCP over **IPoIB** (connected mode), and **SDP**
//! (buffered-copy mode) — each with a calibrated cost model from
//! [`simnet::profiles`]. Unmodified Memcached runs on this API exactly as
//! the real one runs on sockets; the RDMA design (`ucr` crate) never
//! touches it.
//!
//! ```
//! use std::rc::Rc;
//! use simnet::{Cluster, NodeId, Stack};
//! use socksim::{SockFabric, SocketAddr, DEFAULT_CONNECT_TIMEOUT};
//!
//! let cluster = Rc::new(Cluster::cluster_a(3, 2));
//! let sim = cluster.sim().clone();
//! let fabric = SockFabric::new(cluster);
//!
//! let listener = fabric.listen(Stack::TenGigEToe, NodeId(1), 11211).unwrap();
//! let f2 = fabric.clone();
//! let server = sim.spawn(async move {
//!     let sock = listener.accept().await.unwrap();
//!     let req = sock.read_exact(4).await.unwrap();
//!     sock.write_all(&req).await.unwrap(); // echo
//! });
//! let echoed = sim.block_on(async move {
//!     let sock = f2
//!         .connect(Stack::TenGigEToe, NodeId(0), SocketAddr { node: NodeId(1), port: 11211 },
//!                  DEFAULT_CONNECT_TIMEOUT)
//!         .await
//!         .unwrap();
//!     sock.set_nodelay(true);
//!     sock.write_all(b"ping").await.unwrap();
//!     let out = sock.read_exact(4).await.unwrap();
//!     server.await;
//!     out
//! });
//! assert_eq!(echoed, b"ping");
//! ```

#![warn(missing_docs)]

mod dgram;
mod fabric;
mod stream;

pub use dgram::{DgramSocket, DGRAM_RCVBUF_DATAGRAMS, MAX_DGRAM_BYTES};
pub use fabric::{Listener, SockFabric, DEFAULT_CONNECT_TIMEOUT};
pub use stream::{SockError, Socket, SocketAddr};
