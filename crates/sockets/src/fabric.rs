//! Socket fabric: listeners, connection establishment, failure injection.
//!
//! The same listen/connect shape as BSD sockets: a server binds
//! `(stack, node, port)`, a client connects across the matching physical
//! network, and both sides get a [`Socket`]. The handshake pays the
//! stack's per-message costs in both directions (SYN / SYN-ACK), so
//! connection setup over 1GigE is visibly slower than over SDP — but no
//! benchmark in the paper measures it; Memcached connects once.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use simnet::profiles::SocketStackProfile;
use simnet::sync::{self, timeout};
use simnet::{Cluster, Network, NodeId, SimDuration, Stack};

use crate::dgram::{DgramInbox, DgramSocket};
use crate::stream::{RecvBuf, SockError, Socket, SocketAddr};

/// Default connect handshake timeout.
pub const DEFAULT_CONNECT_TIMEOUT: SimDuration = SimDuration::from_millis(200);

/// Wire size of a handshake control segment.
const HANDSHAKE_BYTES: u64 = 74;

struct ConnRequest {
    src: SocketAddr,
    /// The buffer the client reads from; the server writes into it.
    client_rx: Rc<RecvBuf>,
    /// Resolver: hands the client the buffer the server reads from.
    reply: sync::OneSender<Rc<RecvBuf>>,
}

struct SockRec {
    node: NodeId,
    rx: Rc<RecvBuf>,
    peer_rx: Rc<RecvBuf>,
}

pub(crate) struct SockFabricInner {
    pub cluster: Rc<Cluster>,
    listeners: RefCell<HashMap<(Stack, NodeId, u16), sync::Sender<ConnRequest>>>,
    dgram_socks: RefCell<HashMap<(Stack, NodeId, u16), Rc<DgramInbox>>>,
    socks: RefCell<HashMap<u64, SockRec>>,
    dead: RefCell<HashSet<NodeId>>,
    next_sock: Cell<u64>,
    next_port: Cell<u16>,
}

/// Handle to a cluster's byte-stream transports.
#[derive(Clone)]
pub struct SockFabric {
    inner: Rc<SockFabricInner>,
}

impl SockFabric {
    /// Creates the socket fabric over a cluster.
    pub fn new(cluster: Rc<Cluster>) -> SockFabric {
        SockFabric {
            inner: Rc::new(SockFabricInner {
                cluster,
                listeners: RefCell::new(HashMap::new()),
                dgram_socks: RefCell::new(HashMap::new()),
                socks: RefCell::new(HashMap::new()),
                dead: RefCell::new(HashSet::new()),
                next_sock: Cell::new(1),
                next_port: Cell::new(40000),
            }),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Rc<Cluster> {
        &self.inner.cluster
    }

    /// Binds a listener for `stack` traffic at `(node, port)`.
    pub fn listen(&self, stack: Stack, node: NodeId, port: u16) -> Result<Listener, SockError> {
        self.check_stack(stack)?;
        let key = (stack, node, port);
        let mut listeners = self.inner.listeners.borrow_mut();
        if listeners.contains_key(&key) {
            return Err(SockError::ConnectionRefused);
        }
        let (tx, rx) = sync::channel();
        listeners.insert(key, tx);
        Ok(Listener {
            fabric: self.inner.clone(),
            stack,
            addr: SocketAddr { node, port },
            rx,
        })
    }

    /// Connects from `src` to a listener at `dst` over `stack`.
    pub async fn connect(
        &self,
        stack: Stack,
        src: NodeId,
        dst: SocketAddr,
        connect_timeout: SimDuration,
    ) -> Result<Socket, SockError> {
        self.check_stack(stack)?;
        let inner = &self.inner;
        let sim = inner.cluster.sim().clone();
        if inner.is_dead(src) {
            return Err(SockError::Closed);
        }
        if src == dst.node {
            // Loopback never touches the simulated network; Memcached
            // deployments always separate clients and servers.
            return Err(SockError::ConnectionRefused);
        }
        let (profile, net) = inner.stack_env(stack)?;

        let client_rx = RecvBuf::new();
        let (reply_tx, reply_rx) = sync::oneshot();
        let local_port = inner.next_port.get();
        inner.next_port.set(local_port.wrapping_add(1).max(40000));
        let local = SocketAddr {
            node: src,
            port: local_port,
        };

        // SYN across the fabric.
        sim.sleep(profile.app_send).await;
        let launch = inner
            .cluster
            .node(src)
            .kernel
            .occupy_from(sim.now(), profile.kernel_send);
        let fabric2 = inner.clone();
        let client_rx2 = client_rx.clone();
        let sim2 = sim.clone();
        net.transmit(&sim, src, dst.node, HANDSHAKE_BYTES, launch, move || {
            if fabric2.is_dead(dst.node) {
                client_rx2.close();
                return;
            }
            let kernel = &fabric2.cluster.node(dst.node).kernel;
            let ready = kernel.occupy_from(sim2.now(), profile.kernel_recv);
            let fabric3 = fabric2.clone();
            sim2.clone().schedule_at(ready, move || {
                let listener = fabric3
                    .listeners
                    .borrow()
                    .get(&(stack, dst.node, dst.port))
                    .cloned();
                let delivered = listener
                    .map(|tx| {
                        tx.send(ConnRequest {
                            src: local,
                            client_rx: client_rx2.clone(),
                            reply: reply_tx,
                        })
                        .is_ok()
                    })
                    .unwrap_or(false);
                if !delivered {
                    // RST: wake the connecting client with a refusal.
                    client_rx2.close();
                }
            });
        });

        match timeout(&sim, connect_timeout, reply_rx).await {
            Ok(Ok(server_rx)) => {
                let sock_id = inner.register(src, client_rx.clone(), server_rx.clone());
                Ok(Socket {
                    fabric: inner.clone(),
                    stack,
                    profile,
                    net,
                    local,
                    peer: dst,
                    rx: client_rx,
                    peer_rx: server_rx,
                    nodelay: Cell::new(false),
                    sock_id,
                    local_closed: Cell::new(false),
                })
            }
            Ok(Err(_)) => Err(SockError::ConnectionRefused),
            Err(_) => Err(SockError::ConnectionTimeout),
        }
    }

    /// Binds a datagram (UDP-style) socket at `(stack, node, port)`.
    /// Memcached's UDP mode (§III's Facebook baseline) runs on this.
    pub fn udp_bind(
        &self,
        stack: Stack,
        node: NodeId,
        port: u16,
    ) -> Result<DgramSocket, SockError> {
        self.check_stack(stack)?;
        let key = (stack, node, port);
        let mut socks = self.inner.dgram_socks.borrow_mut();
        if socks.contains_key(&key) {
            return Err(SockError::ConnectionRefused);
        }
        let inbox = Rc::new(DgramInbox {
            queue: RefCell::new(std::collections::VecDeque::new()),
            notify: Rc::new(simnet::sync::Notify::new()),
            dropped: Cell::new(0),
        });
        let (profile, net) = self.inner.stack_env(stack)?;
        socks.insert(key, inbox.clone());
        Ok(DgramSocket {
            fabric: self.inner.clone(),
            stack,
            profile,
            net,
            local: SocketAddr { node, port },
            inbox,
        })
    }

    /// Simulates a node dying: all its sockets reset; traffic to it is
    /// dropped; peers see EOF after one round trip.
    pub fn kill_node(&self, node: NodeId) {
        let inner = &self.inner;
        inner.dead.borrow_mut().insert(node);
        let sim = inner.cluster.sim().clone();
        let rst_delay = inner.cluster.profile().ib.propagation * 2;
        for rec in inner.socks.borrow().values() {
            if rec.node == node {
                rec.rx.close();
                let peer = rec.peer_rx.clone();
                sim.schedule(rst_delay, move || peer.close());
            }
        }
        // Listeners on the dead node stop accepting.
        inner
            .listeners
            .borrow_mut()
            .retain(|(_, n, _), _| *n != node);
    }

    /// True if `node` has been killed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.inner.is_dead(node)
    }

    fn check_stack(&self, stack: Stack) -> Result<(), SockError> {
        if stack == Stack::Ucr {
            // UCR is not a byte-stream transport.
            return Err(SockError::StackUnavailable(stack));
        }
        if self.inner.cluster.profile().socket_stack(stack).is_none() {
            return Err(SockError::StackUnavailable(stack));
        }
        Ok(())
    }
}

impl SockFabricInner {
    pub(crate) fn is_dead(&self, node: NodeId) -> bool {
        self.dead.borrow().contains(&node)
    }

    /// Stack profile + physical network for `stack`. Callers have already
    /// validated the stack (`check_stack`, or a live listener/socket that
    /// could only exist for a configured stack), but the lookup stays
    /// fallible so racing a profile away can surface as a socket error
    /// instead of a panic.
    fn stack_env(&self, stack: Stack) -> Result<(SocketStackProfile, Rc<Network>), SockError> {
        let Some(profile) = self.cluster.profile().socket_stack(stack) else {
            return Err(SockError::StackUnavailable(stack));
        };
        let Some(net) = self.cluster.network(stack.net()) else {
            return Err(SockError::StackUnavailable(stack));
        };
        Ok((*profile, net.clone()))
    }

    fn register(self: &Rc<Self>, node: NodeId, rx: Rc<RecvBuf>, peer_rx: Rc<RecvBuf>) -> u64 {
        let id = self.next_sock.get();
        self.next_sock.set(id + 1);
        self.socks
            .borrow_mut()
            .insert(id, SockRec { node, rx, peer_rx });
        id
    }

    pub(crate) fn forget(&self, sock_id: u64) {
        self.socks.borrow_mut().remove(&sock_id);
    }

    pub(crate) fn dgram_inbox(&self, stack: Stack, addr: SocketAddr) -> Option<Rc<DgramInbox>> {
        self.dgram_socks
            .borrow()
            .get(&(stack, addr.node, addr.port))
            .cloned()
    }

    pub(crate) fn dgram_unbind(&self, stack: Stack, addr: SocketAddr) {
        self.dgram_socks
            .borrow_mut()
            .remove(&(stack, addr.node, addr.port));
    }
}

/// A bound, accepting socket.
pub struct Listener {
    fabric: Rc<SockFabricInner>,
    stack: Stack,
    addr: SocketAddr,
    rx: sync::Receiver<ConnRequest>,
}

impl Listener {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts one connection: completes the handshake and returns the
    /// server-side socket.
    pub async fn accept(&self) -> Result<Socket, SockError> {
        let req = self.rx.recv().await.map_err(|_| SockError::Closed)?;
        let inner = &self.fabric;
        let sim = inner.cluster.sim().clone();
        let (profile, net) = inner.stack_env(self.stack)?;

        // Server-side accept cost + SYN-ACK back to the client.
        sim.sleep(profile.app_recv).await;
        let server_rx = RecvBuf::new();
        let launch = inner
            .cluster
            .node(self.addr.node)
            .kernel
            .occupy_from(sim.now(), profile.kernel_send);
        let reply = req.reply;
        let server_rx2 = server_rx.clone();
        net.transmit(
            &sim,
            self.addr.node,
            req.src.node,
            HANDSHAKE_BYTES,
            launch,
            move || {
                let _ = reply.send(server_rx2);
            },
        );

        let sock_id = inner.register(self.addr.node, server_rx.clone(), req.client_rx.clone());
        Ok(Socket {
            fabric: inner.clone(),
            stack: self.stack,
            profile,
            net,
            local: self.addr,
            peer: req.src,
            rx: server_rx,
            peer_rx: req.client_rx,
            nodelay: Cell::new(false),
            sock_id,
            local_closed: Cell::new(false),
        })
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.fabric
            .listeners
            .borrow_mut()
            .remove(&(self.stack, self.addr.node, self.addr.port));
    }
}
