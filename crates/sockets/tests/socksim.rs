//! Integration tests for the byte-stream transports: data integrity,
//! ordering, latency ordering across stacks, Nagle behaviour, kernel
//! contention, and failure injection.

use std::rc::Rc;

use simnet::{Cluster, NodeId, SimDuration, Stack};
use socksim::{SockError, SockFabric, Socket, SocketAddr, DEFAULT_CONNECT_TIMEOUT};

fn fabric_a() -> (Rc<Cluster>, SockFabric) {
    let cluster = Rc::new(Cluster::cluster_a(5, 6));
    let fabric = SockFabric::new(cluster.clone());
    (cluster, fabric)
}

fn fabric_b() -> (Rc<Cluster>, SockFabric) {
    let cluster = Rc::new(Cluster::cluster_b(5, 6));
    let fabric = SockFabric::new(cluster.clone());
    (cluster, fabric)
}

const SERVER: SocketAddr = SocketAddr {
    node: NodeId(1),
    port: 11211,
};

/// Spawns an echo server and returns a connected client socket.
async fn echo_pair(fabric: &SockFabric, stack: Stack, rounds: usize) -> Socket {
    let listener = fabric.listen(stack, SERVER.node, SERVER.port).unwrap();
    let sim = fabric.cluster().sim().clone();
    sim.spawn(async move {
        let sock = listener.accept().await.unwrap();
        sock.set_nodelay(true);
        for _ in 0..rounds {
            match sock.read(1 << 20).await {
                Ok(data) => {
                    if sock.write_all(&data).await.is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    });
    let sock = fabric
        .connect(stack, NodeId(0), SERVER, DEFAULT_CONNECT_TIMEOUT)
        .await
        .unwrap();
    sock.set_nodelay(true);
    sock
}

#[test]
fn bytes_round_trip_intact() {
    let (cluster, fabric) = fabric_a();
    let sim = cluster.sim().clone();
    sim.block_on(async move {
        let sock = echo_pair(&fabric, Stack::TenGigEToe, 1).await;
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        sock.write_all(&msg).await.unwrap();
        let back = sock.read_exact(msg.len()).await.unwrap();
        assert_eq!(back, msg);
    });
}

#[test]
fn writes_arrive_in_order() {
    let (cluster, fabric) = fabric_a();
    let sim = cluster.sim().clone();
    sim.block_on(async move {
        let sock = echo_pair(&fabric, Stack::Ipoib, 50).await;
        for i in 0..50u8 {
            sock.write_all(&[i; 4]).await.unwrap();
        }
        let back = sock.read_exact(200).await.unwrap();
        let expect: Vec<u8> = (0..50u8).flat_map(|i| [i; 4]).collect();
        assert_eq!(back, expect);
    });
}

/// One request-response round trip, returning the simulated latency.
fn rtt(stack: Stack, bytes: usize, cluster_b: bool) -> SimDuration {
    let (cluster, fabric) = if cluster_b { fabric_b() } else { fabric_a() };
    let sim = cluster.sim().clone();
    sim.block_on(async move {
        let sock = echo_pair(&fabric, stack, 4).await;
        // Warm-up round, then measure.
        sock.write_all(&vec![7u8; bytes]).await.unwrap();
        sock.read_exact(bytes).await.unwrap();
        let t0 = fabric.cluster().sim().now();
        sock.write_all(&vec![7u8; bytes]).await.unwrap();
        sock.read_exact(bytes).await.unwrap();
        fabric.cluster().sim().now() - t0
    })
}

#[test]
fn latency_ordering_matches_the_paper() {
    // Small-message RTT on Cluster A: TOE < SDP < IPoIB < 1GigE.
    let toe = rtt(Stack::TenGigEToe, 32, false);
    let sdp = rtt(Stack::Sdp, 32, false);
    let ipoib = rtt(Stack::Ipoib, 32, false);
    let onegige = rtt(Stack::OneGigE, 32, false);
    assert!(toe < sdp, "TOE {toe} should beat SDP {sdp}");
    assert!(sdp < ipoib, "SDP {sdp} should beat IPoIB {ipoib}");
    assert!(ipoib < onegige, "IPoIB {ipoib} should beat 1GigE {onegige}");
    // And everything lands in the tens-of-microseconds band for small
    // messages, as 2011-era sockets did.
    assert!(
        toe.as_micros_f64() > 10.0 && toe.as_micros_f64() < 40.0,
        "TOE rtt {toe}"
    );
    assert!(
        onegige.as_micros_f64() > 50.0 && onegige.as_micros_f64() < 200.0,
        "1GigE rtt {onegige}"
    );
}

#[test]
fn cluster_b_sockets_are_faster_than_cluster_a() {
    let a = rtt(Stack::Ipoib, 64, false);
    let b = rtt(Stack::Ipoib, 64, true);
    assert!(
        b < a,
        "Westmere+QDR IPoIB {b} should beat Clovertown+DDR {a}"
    );
}

#[test]
fn larger_payloads_cost_more() {
    let small = rtt(Stack::TenGigEToe, 64, false);
    let large = rtt(Stack::TenGigEToe, 65536, false);
    assert!(large > small * 2, "64 KB {large} vs 64 B {small}");
}

#[test]
fn nagle_delays_small_writes() {
    fn one_way(nodelay: bool) -> SimDuration {
        let (cluster, fabric) = fabric_a();
        let sim = cluster.sim().clone();
        sim.block_on(async move {
            let listener = fabric
                .listen(Stack::TenGigEToe, SERVER.node, SERVER.port)
                .unwrap();
            let srv = fabric.cluster().sim().spawn(async move {
                let s = listener.accept().await.unwrap();
                s.read_exact(8).await.unwrap();
            });
            let sock = fabric
                .connect(
                    Stack::TenGigEToe,
                    NodeId(0),
                    SERVER,
                    DEFAULT_CONNECT_TIMEOUT,
                )
                .await
                .unwrap();
            sock.set_nodelay(nodelay);
            let t0 = fabric.cluster().sim().now();
            sock.write_all(&[1u8; 8]).await.unwrap();
            srv.await;
            fabric.cluster().sim().now() - t0
        })
    }
    let with_nagle = one_way(false);
    let without = one_way(true);
    assert!(
        with_nagle > without + SimDuration::from_micros(300),
        "Nagle {with_nagle} vs NODELAY {without}"
    );
}

#[test]
fn connect_refused_without_listener() {
    let (cluster, fabric) = fabric_a();
    let sim = cluster.sim().clone();
    let err = sim.block_on(async move {
        fabric
            .connect(Stack::Sdp, NodeId(0), SERVER, DEFAULT_CONNECT_TIMEOUT)
            .await
            .unwrap_err()
    });
    assert_eq!(err, SockError::ConnectionRefused);
}

#[test]
fn unavailable_stack_is_reported() {
    let (cluster, fabric) = fabric_b();
    let sim = cluster.sim().clone();
    // Cluster B has no 10GigE cards.
    assert!(matches!(
        fabric.listen(Stack::TenGigEToe, NodeId(1), 1),
        Err(SockError::StackUnavailable(Stack::TenGigEToe))
    ));
    let err = sim.block_on(async move {
        fabric
            .connect(
                Stack::TenGigEToe,
                NodeId(0),
                SERVER,
                DEFAULT_CONNECT_TIMEOUT,
            )
            .await
            .unwrap_err()
    });
    assert_eq!(err, SockError::StackUnavailable(Stack::TenGigEToe));
}

#[test]
fn ucr_is_not_a_socket_stack() {
    let (_cluster, fabric) = fabric_a();
    assert!(matches!(
        fabric.listen(Stack::Ucr, NodeId(1), 1),
        Err(SockError::StackUnavailable(Stack::Ucr))
    ));
}

#[test]
fn killed_node_resets_peers() {
    let (cluster, fabric) = fabric_a();
    let sim = cluster.sim().clone();
    let f2 = fabric.clone();
    sim.block_on(async move {
        let sock = echo_pair(&f2, Stack::Ipoib, 100).await;
        sock.write_all(b"before").await.unwrap();
        sock.read_exact(6).await.unwrap();
        f2.kill_node(SERVER.node);
        // Any buffered data may drain, then EOF.
        let err = loop {
            match sock.read(64).await {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err, SockError::Closed);
        // Reconnecting to the dead node fails.
        let err = f2
            .connect(Stack::Ipoib, NodeId(2), SERVER, SimDuration::from_millis(1))
            .await
            .unwrap_err();
        assert!(matches!(
            err,
            SockError::ConnectionTimeout | SockError::ConnectionRefused
        ));
    });
}

#[test]
fn kernel_contention_limits_aggregate_throughput() {
    // Many clients hammering one node over IPoIB: the shared kernel
    // resource must make aggregate throughput sub-linear in client count.
    fn run(clients: u32) -> f64 {
        let cluster = Rc::new(Cluster::cluster_a(9, 6));
        let fabric = SockFabric::new(cluster.clone());
        let sim = cluster.sim().clone();
        let listener = fabric.listen(Stack::Ipoib, NodeId(0), 9000).unwrap();
        let reqs = 200usize;

        sim.spawn(async move {
            while let Ok(sock) = listener.accept().await {
                sock.set_nodelay(true);
                fabric_server(sock, reqs).await;
            }
        });

        async fn fabric_server(sock: Socket, rounds: usize) {
            for _ in 0..rounds {
                let Ok(data) = sock.read(1 << 16).await else {
                    return;
                };
                if sock.write_all(&data).await.is_err() {
                    return;
                }
            }
        }

        let mut joins = Vec::new();
        for c in 0..clients {
            let f = fabric.clone();
            let sim2 = sim.clone();
            joins.push(sim.spawn(async move {
                let sock = f
                    .connect(
                        Stack::Ipoib,
                        NodeId(1 + (c % 5)),
                        SocketAddr {
                            node: NodeId(0),
                            port: 9000,
                        },
                        DEFAULT_CONNECT_TIMEOUT,
                    )
                    .await
                    .unwrap();
                sock.set_nodelay(true);
                for _ in 0..reqs {
                    sock.write_all(&[9u8; 16]).await.unwrap();
                    sock.read_exact(16).await.unwrap();
                }
                let _ = sim2;
            }));
        }
        let t0 = sim.now();
        sim.block_on(async move {
            for j in joins {
                j.await;
            }
        });
        let elapsed = (sim.now() - t0).as_secs_f64();
        (clients as usize * reqs) as f64 / elapsed
    }

    let tps1 = run(1);
    let tps4 = run(4);
    assert!(tps4 > tps1, "more clients must add some throughput");
    assert!(
        tps4 < tps1 * 3.5,
        "kernel contention must make scaling sub-linear: 1→{tps1:.0}, 4→{tps4:.0}"
    );
}

// ---------------------------------------------------------------------
// Additional coverage: stream semantics, jitter, concurrency
// ---------------------------------------------------------------------

#[test]
fn partial_reads_drain_the_stream() {
    let (cluster, fabric) = fabric_a();
    let sim = cluster.sim().clone();
    sim.block_on(async move {
        let sock = echo_pair(&fabric, Stack::TenGigEToe, 1).await;
        sock.write_all(&[7u8; 100]).await.unwrap();
        // Read in odd-sized chunks; total must be exact.
        let mut total = Vec::new();
        while total.len() < 100 {
            let chunk = sock.read(33).await.unwrap();
            assert!(!chunk.is_empty() && chunk.len() <= 33);
            total.extend_from_slice(&chunk);
        }
        assert_eq!(total, vec![7u8; 100]);
        assert_eq!(sock.available(), 0);
    });
}

#[test]
fn bidirectional_traffic_does_not_interfere() {
    let (cluster, fabric) = fabric_a();
    let sim = cluster.sim().clone();
    let listener = fabric.listen(Stack::Sdp, SERVER.node, SERVER.port).unwrap();
    // Server sends stream of 'S' while receiving stream of 'C'.
    let srv = sim.spawn(async move {
        let sock = listener.accept().await.unwrap();
        sock.set_nodelay(true);
        for _ in 0..20 {
            sock.write_all(&[b'S'; 10]).await.unwrap();
        }
        let got = sock.read_exact(200).await.unwrap();
        assert!(got.iter().all(|&b| b == b'C'));
    });
    sim.block_on(async move {
        let sock = fabric
            .connect(Stack::Sdp, NodeId(0), SERVER, DEFAULT_CONNECT_TIMEOUT)
            .await
            .unwrap();
        sock.set_nodelay(true);
        for _ in 0..20 {
            sock.write_all(&[b'C'; 10]).await.unwrap();
        }
        let got = sock.read_exact(200).await.unwrap();
        assert!(got.iter().all(|&b| b == b'S'));
        srv.await;
    });
}

#[test]
fn same_port_different_stacks_coexist() {
    let (cluster, fabric) = fabric_a();
    // One port, four stacks — exactly how the Memcached server listens.
    let _l1 = fabric.listen(Stack::Sdp, NodeId(1), 11211).unwrap();
    let _l2 = fabric.listen(Stack::Ipoib, NodeId(1), 11211).unwrap();
    let _l3 = fabric.listen(Stack::TenGigEToe, NodeId(1), 11211).unwrap();
    let _l4 = fabric.listen(Stack::OneGigE, NodeId(1), 11211).unwrap();
    // But the same (stack, node, port) is exclusive.
    assert!(fabric.listen(Stack::Sdp, NodeId(1), 11211).is_err());
    let _ = cluster;
}

#[test]
fn sdp_jitter_appears_on_cluster_b_only() {
    fn spread(cluster_b: bool) -> f64 {
        let cluster = std::rc::Rc::new(if cluster_b {
            simnet::Cluster::cluster_b(31, 4)
        } else {
            simnet::Cluster::cluster_a(31, 4)
        });
        let fabric = SockFabric::new(cluster.clone());
        let sim = cluster.sim().clone();
        sim.block_on(async move {
            let sock = echo_pair(&fabric, Stack::Sdp, 40).await;
            let mut lats = Vec::new();
            for _ in 0..40 {
                let t0 = fabric.cluster().sim().now();
                sock.write_all(&[1u8; 16]).await.unwrap();
                sock.read_exact(16).await.unwrap();
                lats.push((fabric.cluster().sim().now() - t0).as_micros_f64());
            }
            let min = lats.iter().cloned().fold(f64::MAX, f64::min);
            let max = lats.iter().cloned().fold(0.0f64, f64::max);
            max - min
        })
    }
    let spread_a = spread(false);
    let spread_b = spread(true);
    assert!(spread_a < 1.0, "cluster A SDP should be steady: {spread_a}");
    assert!(
        spread_b > 5.0,
        "cluster B SDP should show the QDR jitter artifact: {spread_b}"
    );
}

#[test]
fn closed_socket_rejects_writes_eventually() {
    let (cluster, fabric) = fabric_a();
    let sim = cluster.sim().clone();
    sim.block_on(async move {
        let sock = echo_pair(&fabric, Stack::Ipoib, 1).await;
        sock.close();
        let err = sock.write_all(b"after close").await.unwrap_err();
        assert_eq!(err, SockError::Closed);
        assert!(sock.read(10).await.is_err());
    });
}

#[test]
fn many_sequential_connections_to_one_listener() {
    let (cluster, fabric) = fabric_a();
    let sim = cluster.sim().clone();
    let listener = fabric.listen(Stack::TenGigEToe, NodeId(0), 8080).unwrap();
    sim.spawn(async move {
        while let Ok(sock) = listener.accept().await {
            let data = sock.read(64).await.unwrap();
            sock.write_all(&data).await.unwrap();
        }
    });
    sim.block_on(async move {
        for i in 0..10u8 {
            let sock = fabric
                .connect(
                    Stack::TenGigEToe,
                    NodeId(1 + (i % 4) as u32),
                    SocketAddr {
                        node: NodeId(0),
                        port: 8080,
                    },
                    DEFAULT_CONNECT_TIMEOUT,
                )
                .await
                .unwrap();
            sock.write_all(&[i; 8]).await.unwrap();
            assert_eq!(sock.read_exact(8).await.unwrap(), vec![i; 8]);
            sock.close();
        }
    });
}

// ---------------------------------------------------------------------
// Datagram (UDP) sockets
// ---------------------------------------------------------------------

mod dgram {
    use super::*;
    use socksim::DGRAM_RCVBUF_DATAGRAMS;

    #[test]
    fn datagrams_round_trip_with_source_addresses() {
        let (cluster, fabric) = fabric_a();
        let sim = cluster.sim().clone();
        let server = fabric.udp_bind(Stack::TenGigEToe, NodeId(0), 5353).unwrap();
        let client = fabric.udp_bind(Stack::TenGigEToe, NodeId(1), 6000).unwrap();
        sim.block_on(async move {
            client
                .send_to(
                    SocketAddr {
                        node: NodeId(0),
                        port: 5353,
                    },
                    b"ping",
                )
                .await
                .unwrap();
            let (src, data) = server.recv_from().await.unwrap();
            assert_eq!(data, b"ping");
            assert_eq!(
                src,
                SocketAddr {
                    node: NodeId(1),
                    port: 6000
                }
            );
            // Reply straight back to the observed source.
            server.send_to(src, b"pong").await.unwrap();
            let (src2, data2) = client.recv_from().await.unwrap();
            assert_eq!(data2, b"pong");
            assert_eq!(src2.node, NodeId(0));
        });
    }

    #[test]
    fn unbound_ports_swallow_datagrams_silently() {
        let (cluster, fabric) = fabric_a();
        let sim = cluster.sim().clone();
        let client = fabric.udp_bind(Stack::Ipoib, NodeId(1), 6000).unwrap();
        let client = sim.block_on(async move {
            // No listener at the destination: fire and forget, no error.
            client
                .send_to(
                    SocketAddr {
                        node: NodeId(0),
                        port: 1,
                    },
                    b"void",
                )
                .await
                .unwrap();
            client
        });
        cluster.sim().run();
        assert_eq!(client.dropped(), 0);
    }

    #[test]
    fn receive_buffer_overflow_drops_excess_datagrams() {
        let (cluster, fabric) = fabric_a();
        let sim = cluster.sim().clone();
        let server = fabric.udp_bind(Stack::TenGigEToe, NodeId(0), 5353).unwrap();
        let client = fabric.udp_bind(Stack::TenGigEToe, NodeId(1), 6000).unwrap();
        let burst = DGRAM_RCVBUF_DATAGRAMS as u32 + 50;
        sim.block_on(async move {
            // Blast without the server draining: the kernel buffer caps.
            for i in 0..burst {
                client
                    .send_to(
                        SocketAddr {
                            node: NodeId(0),
                            port: 5353,
                        },
                        &i.to_le_bytes(),
                    )
                    .await
                    .unwrap();
            }
        });
        cluster.sim().run();
        assert_eq!(server.dropped(), 50, "overflow beyond SO_RCVBUF drops");
        // The surviving datagrams are the first N, in order.
        let got = sim.block_on({
            let server = server;
            async move {
                let mut got = Vec::new();
                for _ in 0..DGRAM_RCVBUF_DATAGRAMS {
                    let (_, d) = server.recv_from().await.unwrap();
                    got.push(u32::from_le_bytes(d.try_into().unwrap()));
                }
                got
            }
        });
        assert_eq!(got, (0..DGRAM_RCVBUF_DATAGRAMS as u32).collect::<Vec<_>>());
    }

    #[test]
    fn dgram_port_is_exclusive_and_released_on_drop() {
        let (_cluster, fabric) = fabric_a();
        let s1 = fabric.udp_bind(Stack::Sdp, NodeId(0), 7000).unwrap();
        assert!(fabric.udp_bind(Stack::Sdp, NodeId(0), 7000).is_err());
        // Same port on a different stack is independent.
        assert!(fabric.udp_bind(Stack::Ipoib, NodeId(0), 7000).is_ok());
        drop(s1);
        assert!(fabric.udp_bind(Stack::Sdp, NodeId(0), 7000).is_ok());
    }
}
