//! `rmc-lint` CLI.
//!
//! ```text
//! cargo run -p rmc-lint -- --check                 # gate: exit 1 on non-baselined violations
//! cargo run -p rmc-lint -- --check --json out.json # also write the machine-readable report
//! cargo run -p rmc-lint -- --list                  # every violation, baseline ignored
//! cargo run -p rmc-lint -- --update-baseline       # rewrite crates/lint/baseline.json
//! cargo run -p rmc-lint -- --write-manifest        # rewrite results/metric_manifest.json
//! cargo run -p rmc-lint -- --explain R6            # rule rationale + minimal failing example
//! ```
//!
//! Options: `--root PATH` (workspace root), `--baseline PATH`,
//! `--no-baseline` (treat every violation as new).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rmc_lint::{analyze_workspace, default_root, explain, failing_groups, report, Baseline};

enum Mode {
    Check,
    List,
    UpdateBaseline,
    WriteManifest,
    Explain(String),
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("rmc-lint: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut mode = None;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut no_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => mode = Some(Mode::Check),
            "--list" => mode = Some(Mode::List),
            "--update-baseline" => mode = Some(Mode::UpdateBaseline),
            "--write-manifest" => mode = Some(Mode::WriteManifest),
            "--no-baseline" => no_baseline = true,
            "--explain" => {
                let Some(v) = args.next() else {
                    eprintln!("rmc-lint: --explain needs a rule id\n{}", explain::index());
                    return ExitCode::from(2);
                };
                mode = Some(Mode::Explain(v));
            }
            "--root" | "--baseline" | "--json" => {
                let Some(v) = args.next() else {
                    return fail(&format!("{a} needs a value"));
                };
                match a.as_str() {
                    "--root" => root = Some(PathBuf::from(v)),
                    "--baseline" => baseline_path = Some(PathBuf::from(v)),
                    _ => json_path = Some(PathBuf::from(v)),
                }
            }
            other => return fail(&format!("unknown argument {other:?} (see --check/--list/--update-baseline/--write-manifest)")),
        }
    }
    let Some(mode) = mode else {
        return fail(
            "pick a mode: --check | --list | --update-baseline | --write-manifest | --explain RULE",
        );
    };

    if let Mode::Explain(id) = &mode {
        return match explain::lookup(id) {
            Some(doc) => {
                print!("{}", explain::render(doc));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("rmc-lint: no rule {id:?}\n{}", explain::index());
                ExitCode::from(2)
            }
        };
    }

    let root = root.unwrap_or_else(default_root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("crates/lint/baseline.json"));
    let manifest_path = root.join("results/metric_manifest.json");

    let started = Instant::now();
    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => return fail(&format!("walking {}: {e}", root.display())),
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;

    match mode {
        Mode::Explain(_) => unreachable!("handled before analysis"),
        Mode::List => {
            for v in &analysis.violations {
                println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            }
            println!(
                "{} violations in {} files scanned ({} waived) in {} ms",
                analysis.violations.len(),
                analysis.files_scanned,
                analysis.waived,
                elapsed_ms
            );
            ExitCode::SUCCESS
        }
        Mode::UpdateBaseline => {
            let counts = report::count_by_rule_file(&analysis.violations);
            let text = report::write_baseline(&counts);
            if let Err(e) = std::fs::write(&baseline_path, &text) {
                return fail(&format!("writing {}: {e}", baseline_path.display()));
            }
            println!(
                "baseline written to {} ({} rule groups)",
                baseline_path.display(),
                counts.len()
            );
            ExitCode::SUCCESS
        }
        Mode::WriteManifest => {
            if let Err(e) = std::fs::write(&manifest_path, &analysis.manifest) {
                return fail(&format!("writing {}: {e}", manifest_path.display()));
            }
            println!("manifest written to {}", manifest_path.display());
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let baseline: Baseline = if no_baseline {
                Baseline::new()
            } else {
                match std::fs::read_to_string(&baseline_path) {
                    Ok(text) => match report::parse_baseline(&text) {
                        Ok(b) => b,
                        Err(e) => {
                            return fail(&format!("parsing {}: {e}", baseline_path.display()))
                        }
                    },
                    Err(_) => Baseline::new(), // no baseline committed yet: everything is new
                }
            };

            if let Some(path) = &json_path {
                let text = report::write_report(
                    analysis.files_scanned,
                    &analysis.violations,
                    analysis.waived,
                    &baseline,
                    elapsed_ms,
                );
                if let Err(e) = std::fs::write(path, &text) {
                    return fail(&format!("writing {}: {e}", path.display()));
                }
            }

            let mut failed = false;

            let failing = failing_groups(&analysis.violations, &baseline);
            if !failing.is_empty() {
                failed = true;
                for (rule, file, found, allowed) in &failing {
                    eprintln!("[{rule}] {file}: {found} violation(s), {allowed} baselined:");
                    for v in analysis
                        .violations
                        .iter()
                        .filter(|v| v.rule == rule && v.file == *file)
                    {
                        eprintln!("  {}:{}: {}", v.file, v.line, v.message);
                    }
                }
            }

            // Manifest sync: the committed metric inventory must match
            // what the sources register, byte for byte.
            match std::fs::read_to_string(&manifest_path) {
                Ok(on_disk) if on_disk == analysis.manifest => {}
                Ok(_) => {
                    failed = true;
                    eprintln!(
                        "[R2] {}: stale — metric registrations changed; \
                         run `cargo run -p rmc-lint -- --write-manifest` and commit",
                        manifest_path.display()
                    );
                }
                Err(e) => {
                    failed = true;
                    eprintln!(
                        "[R2] {}: unreadable ({e}) — run `cargo run -p rmc-lint -- --write-manifest`",
                        manifest_path.display()
                    );
                }
            }

            if failed {
                eprintln!(
                    "rmc-lint: FAILED ({} files scanned, {} violations, {} waived) in {} ms",
                    analysis.files_scanned,
                    analysis.violations.len(),
                    analysis.waived,
                    elapsed_ms
                );
                ExitCode::FAILURE
            } else {
                println!(
                    "rmc-lint: clean ({} files scanned, {} baselined violations, {} waived) in {} ms",
                    analysis.files_scanned,
                    analysis.violations.len(),
                    analysis.waived,
                    elapsed_ms
                );
                ExitCode::SUCCESS
            }
        }
    }
}
