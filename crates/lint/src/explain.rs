//! `--explain <rule>` — per-rule rationale, scope, and a minimal
//! failing example.
//!
//! The examples are the fixture sources themselves (`include_str!`
//! from `tests/fixtures/`), the exact files the end-to-end tests pin
//! by `file:line` — so this documentation cannot drift from what the
//! analyzer actually flags.

/// Everything `--explain` prints for one rule.
pub struct RuleDoc {
    /// Canonical rule id as it appears in reports (`R1v2`, not `R1V2`).
    pub id: &'static str,
    /// One-line summary (matches the README rules table).
    pub title: &'static str,
    /// Why the rule exists — what breaks when it is violated.
    pub rationale: &'static str,
    /// Which paths the rule scans and what it skips.
    pub scope: &'static str,
    /// A minimal failing source, verbatim from `tests/fixtures/`.
    pub example: &'static str,
    /// Which lines of the example fire and why.
    pub example_note: &'static str,
}

/// All documented rules, in report order.
pub const RULES: &[RuleDoc] = &[
    RuleDoc {
        id: "R1",
        title: "no wall clock / OS entropy in simulated layers",
        rationale: "The reproduction's headline property is bit-identical \
                    virtual-time results across runs and machines. One \
                    Instant::now / SystemTime / thread_rng / RandomState in a \
                    simulated layer silently couples results to the host, and \
                    the regression only shows up as an unreproducible diff \
                    weeks later.",
        scope: "crates/{simnet,verbs,ucr,sockets,core,store,proto,bench}, \
                src/, examples/ — production code only (test modules and \
                tests/ trees are exempt; crates/lint and shims/ are host \
                tools by design).",
        example: include_str!("../tests/fixtures/r1.rs"),
        example_note: "Every direct use fires: Instant::now, SystemTime::now, \
                       thread_rng, rand::random, RandomState, and entropy via \
                       HashMap::new's default hasher.",
    },
    RuleDoc {
        id: "R1v2",
        title: "transitive wall-clock/entropy taint through the call graph",
        rationale: "R1 only sees direct uses, so a helper in a host-tool \
                    crate can launder Instant::now into a simulated layer \
                    through one call hop. R1v2 taints every function that \
                    (transitively) reaches an unwaived impurity and flags the \
                    call site where tainted code enters a simulated layer, \
                    printing the full call chain down to the source.",
        scope: "Same scope as R1 for the flagged caller; the taint source \
                may live anywhere (including crates/lint). A waiver on the \
                impurity line stops the taint at the source — and counts as \
                'used' for the W0 stale-waiver check.",
        example: concat!(
            "// --- crates/core/src/fixture_taint.rs (simulated layer) ---\n",
            include_str!("../tests/fixtures/r1v2_core.rs"),
            "\n// --- crates/lint/src/fixture_util.rs (host tool) ---\n",
            include_str!("../tests/fixtures/r1v2_util.rs"),
        ),
        example_note: "The call to stamp() in the core crate fires: the chain \
                       is now_ticks -> stamp -> ticks, where ticks calls \
                       Instant::now. seeded_ok() is clean because the helper \
                       waives its impurity at the source.",
    },
    RuleDoc {
        id: "R2",
        title: "metric names follow the grammar and reads match a registration",
        rationale: "Metrics are the observability contract: results/ plots \
                    and the SLO tracker key on exact metric names. A typo'd \
                    registration or a read of a never-registered name returns \
                    silent zeros instead of failing. The committed \
                    results/metric_manifest.json must byte-match what the \
                    sources register.",
        scope: "All scanned production code; registration sites feed the \
                manifest, read sites are checked against the union of \
                registrations across the whole workspace.",
        example: include_str!("../tests/fixtures/r2.rs"),
        example_note: "Grammar violations (bad layer, bad segment, uppercase, \
                       reserved .high suffix) fire at the registration; the \
                       read of an unregistered name fires at the read.",
    },
    RuleDoc {
        id: "R3",
        title: "span keys are non-zero (file-local dynamic-name pairing)",
        rationale: "Tracer spans with key 0 collide with the sentinel the \
                    profiler uses for 'no span', corrupting critical-path \
                    attribution. Dynamic-name spans (name built at runtime) \
                    can only be paired within the file that builds the name.",
        scope: "All scanned production code with `.begin(Layer::…` / \
                `.end(Layer::…` / `.end_detail(Layer::…` call shapes.",
        example: include_str!("../tests/fixtures/r3.rs"),
        example_note: "The literal-0 span key fires as R3; the unpaired \
                       literal-name begin/end fire as R3v2 (cross-file \
                       pairing subsumed the old file-local check).",
    },
    RuleDoc {
        id: "R3v2",
        title: "literal-name spans pair up across call-graph components",
        rationale: "A begin whose end lives in a function the begin-side can \
                    never reach (no call-graph connection) is either dead \
                    instrumentation or a span that never closes — both poison \
                    the folded profile. Pairing is satisfied by a counterpart \
                    in the same file, in a call-graph-connected function, or \
                    in top-level code outside any function.",
        scope: "All scanned production code; spans whose name argument is a \
                single string literal.",
        example: concat!(
            "// --- crates/ucr/src/fixture_sa.rs (begin side) ---\n",
            include_str!("../tests/fixtures/r3v2_a.rs"),
            "\n// --- crates/core/src/fixture_sb.rs (end side) ---\n",
            include_str!("../tests/fixtures/r3v2_b.rs"),
        ),
        example_note: "\"xfile_ok\" pairs: both sides call helper(), so they \
                       share a component. \"xfile_orphan\"'s begin and end are \
                       disconnected — both sides fire.",
    },
    RuleDoc {
        id: "R4",
        title: "no unwrap/expect/panic in RDMA transport paths",
        rationale: "Transport code runs inside the event loop; a panic there \
                    takes down the whole simulated cluster instead of \
                    surfacing a per-request error the retry machinery can \
                    absorb.",
        scope: "crates/verbs, crates/ucr, crates/sockets, crates/core — \
                production code only.",
        example: include_str!("../tests/fixtures/r4.rs"),
        example_note: "unwrap(), expect(), and panic! fire; unwrap_or / \
                       unwrap_or_else are fine (they cannot panic).",
    },
    RuleDoc {
        id: "R5",
        title: "UCR counter cells only mutate via CtrInner::bump",
        rationale: "The unreliable-connection retry accounting must stay \
                    consistent with the metrics layer; direct `.set`/`.0 +=` \
                    writes bypass the bump path that keeps both in sync.",
        scope: "crates/ucr production code.",
        example: include_str!("../tests/fixtures/r5.rs"),
        example_note: "Direct field writes to counter cells fire; calls \
                       through CtrInner::bump are the sanctioned path.",
    },
    RuleDoc {
        id: "R6",
        title: "VLock multi-acquisitions are provably ascending and \
                class-order forms a DAG",
        rationale: "PR 8's sharded store holds several VLocks at once \
                    (FlushAll, Stats). The no-deadlock argument is a global \
                    lock order: same-class acquisitions ascend by index, and \
                    the class-level acquired-before relation is acyclic. A \
                    violating path deadlocks only under a specific \
                    interleaving — exactly what a static check catches and a \
                    test suite misses.",
        scope: "All scanned production code except the VLock implementation \
                itself (crates/simnet/src/vlock.rs). Receivers are typed via \
                struct fields, let-bindings, unique call results, and \
                for-loop elements; untypeable receivers are skipped, not \
                guessed.",
        example: include_str!("../tests/fixtures/r6.rs"),
        example_note: "Descending literal indices fire; a loop over an \
                       unordered Vec fires (no provable order); the a->b / \
                       b->a cross-function cycle fires once at the edge that \
                       closes it. Ranges and BTreeSet/BTreeMap iteration are \
                       provably ascending and stay clean.",
    },
    RuleDoc {
        id: "R7",
        title: "retained MR registrations have a release path",
        rationale: "Memory regions pin physical pages. A registration stored \
                    into a long-lived container with no remove/retain/clear \
                    or dereg*/invalidate* call reachable in the same \
                    call-graph component grows pinned memory without bound — \
                    the leak PR 6's mirror-page retire path exists to \
                    prevent.",
        scope: "All scanned production code except crates/verbs (the \
                registrar itself). Only *retained* registrations (stored \
                into a container or bound then stored) carry the obligation; \
                transient registrations are out of scope by design.",
        example: include_str!("../tests/fixtures/r7.rs"),
        example_note: "The let-bound registration inserted into `bufs` and \
                       the direct push into `pool` fire (no release on those \
                       containers); the `live` insert is balanced by a later \
                       `live.remove` and stays clean.",
    },
    RuleDoc {
        id: "W0",
        title: "waivers must still suppress something",
        rationale: "An allow-comment whose rule no longer fires on its line \
                    is a silent hole: the next regression on that line is \
                    auto-suppressed by a comment written for code that no \
                    longer exists. Stale waivers are flagged at the waiver \
                    line and are not themselves waivable.",
        scope: "Every written waiver in scanned files. A waiver is 'used' if \
                it suppressed a violation on its line (or the line below, \
                for standalone comment lines) — or stopped an R1v2 taint \
                source.",
        example: "pub fn fine(x: Option<u8>) -> u8 {\n    x.unwrap_or(0) \
                  // lint:allow(R4) nothing to suppress: unwrap_or never panics\n}\n",
        example_note: "unwrap_or never fires R4, so the waiver suppresses \
                       nothing and is itself flagged.",
    },
];

/// Case-insensitive lookup (`r1v2`, `R1V2`, and `R1v2` all resolve).
pub fn lookup(id: &str) -> Option<&'static RuleDoc> {
    RULES.iter().find(|d| d.id.eq_ignore_ascii_case(id.trim()))
}

/// Renders one rule's documentation for the terminal.
pub fn render(doc: &RuleDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — {}\n\n", doc.id, doc.title));
    out.push_str(&format!("Why:\n{}\n\n", reflow(doc.rationale)));
    out.push_str(&format!("Scope:\n{}\n\n", reflow(doc.scope)));
    out.push_str("Minimal failing example (from tests/fixtures/):\n");
    for line in doc.example.lines() {
        out.push_str(&format!("    {line}\n"));
    }
    out.push_str(&format!("\n{}\n", reflow(doc.example_note)));
    out
}

/// One-line id+title per rule, for `--explain` with no/unknown rule.
pub fn index() -> String {
    let mut out = String::from("rules:\n");
    for d in RULES {
        out.push_str(&format!("  {:<5} {}\n", d.id, d.title));
    }
    out
}

/// Collapses the multi-line string-literal continuations (runs of
/// whitespace) into single spaces, then wraps at ~76 columns.
fn reflow(s: &str) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    let mut out = String::new();
    let mut col = 0usize;
    for w in words {
        if col == 0 {
            out.push_str("  ");
            col = 2;
        } else if col + 1 + w.len() > 76 {
            out.push_str("\n  ");
            col = 2;
        } else {
            out.push(' ');
            col += 1;
        }
        out.push_str(w);
        col += w.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_is_documented_and_looked_up() {
        for id in [
            "R1", "R1v2", "R2", "R3", "R3v2", "R4", "R5", "R6", "R7", "W0",
        ] {
            let doc = lookup(id).unwrap_or_else(|| panic!("missing doc for {id}"));
            assert_eq!(doc.id, id);
            assert!(!doc.example.is_empty());
            // Case-insensitive variants resolve to the same doc.
            assert_eq!(lookup(&id.to_lowercase()).unwrap().id, id);
            assert_eq!(lookup(&id.to_uppercase()).unwrap().id, id);
        }
        assert!(lookup("R99").is_none());
    }

    #[test]
    fn examples_come_from_the_fixture_files() {
        // Spot-check that the include_str! wiring points at the same
        // sources the end-to-end tests pin by file:line.
        assert!(lookup("R6").unwrap().example.contains("segs[2].lock"));
        assert!(lookup("R7").unwrap().example.contains("register(64)"));
        assert!(lookup("R1v2").unwrap().example.contains("Instant::now"));
        assert!(lookup("R3v2").unwrap().example.contains("xfile_orphan"));
    }

    #[test]
    fn render_and_index_are_presentable() {
        let text = render(lookup("R6").unwrap());
        assert!(text.starts_with("R6 — "));
        assert!(text.contains("Minimal failing example"));
        let idx = index();
        for d in RULES {
            assert!(idx.contains(d.id));
        }
    }
}
