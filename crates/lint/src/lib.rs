//! `rmc-lint` — in-tree invariant analyzer for the rmc workspace.
//!
//! The reproduction's headline property is bit-identical virtual-time
//! results; that property rests on source-level conventions no compiler
//! checks. This crate checks them statically: a hand-rolled Rust
//! tokenizer ([`lexer`]), five rules ([`rules`], R1–R5), a waiver
//! comment syntax, a committed ratcheting baseline for grandfathered
//! violations, and JSON / `file:line` reports ([`report`]). No external
//! dependencies — the build container is offline.
//!
//! Library entry points: [`analyze_workspace`] walks the real tree;
//! [`analyze_sources`] runs the same pipeline over in-memory
//! `(path, text)` pairs (how the fixture tests seed violations).

pub mod explain;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod rules2;

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

pub use report::Baseline;
pub use rules::Violation;

/// Path prefixes never scanned: build output, the dependency shims
/// (host-side by design: the criterion shim legitimately reads host
/// time), and the lint's own deliberately-violating fixtures.
pub const IGNORE_PREFIXES: [&str; 4] = [
    "target/",
    "shims/",
    "crates/lint/tests/fixtures/",
    "results/",
];

/// Files never scanned even if a future walk widens beyond `*.rs`:
/// prose documents quote violating code on purpose.
pub const IGNORE_FILES: [&str; 3] = ["ISSUE.md", "REVIEW.md", "CHANGES.md"];

/// Result of a full analysis pass.
pub struct Analysis {
    /// Files lexed and scanned.
    pub files_scanned: usize,
    /// Violations surviving waiver application, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Violations suppressed by `// lint:allow(...)` waivers.
    pub waived: usize,
    /// The metric manifest derived from every R2 registration site —
    /// the committed `results/metric_manifest.json` must byte-match it.
    pub manifest: String,
    /// Interprocedural pass statistics (call-graph size, typed lock
    /// acquisitions, MR obligations) — pinned by the self-check.
    pub stats: rules2::InterStats,
}

/// The workspace root when running via `cargo run -p rmc-lint`
/// (compile-time crate dir, two levels up).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn ignored(rel: &str) -> bool {
    IGNORE_PREFIXES.iter().any(|p| rel.starts_with(p))
        || IGNORE_FILES
            .iter()
            .any(|f| rel == *f || rel.ends_with(&format!("/{f}")))
        || rel.ends_with(".md")
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if ignored(&rel) {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Collects every scannable `*.rs` path (workspace-relative, `/`
/// separators, sorted) under the source roots.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the full pipeline over in-memory `(relative path, source)`
/// pairs: lex once, phase-1 per-file rules plus global metric-read
/// validation, phase-2 call-graph construction and interprocedural
/// rules, waiver application (with usage tracking feeding the W0
/// stale-waiver check), manifest derivation.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let lexed: Vec<(String, lexer::Lexed)> = files
        .iter()
        .map(|(p, t)| (p.clone(), lexer::lex(t)))
        .collect();
    let mut all_violations: Vec<Violation> = Vec::new();
    let mut sites = Vec::new();
    let mut reads = Vec::new();
    // Waiver coverage: (file, line) pairs per rule (names uppercased by
    // the lexer), for the violating line itself and (from standalone
    // comment lines) the line below. `entries` keeps one row per
    // written waiver for the stale-waiver check.
    let mut waiver_at: BTreeSet<(String, u32, String)> = BTreeSet::new();
    let mut entries: Vec<(String, u32, String)> = Vec::new();
    for (path, lx) in &lexed {
        for w in &lx.waivers {
            for r in &w.rules {
                entries.push((path.clone(), w.line, r.clone()));
                waiver_at.insert((path.clone(), w.line, r.clone()));
                if w.standalone {
                    waiver_at.insert((path.clone(), w.line + 1, r.clone()));
                }
            }
        }
        let scan = rules::scan_file(path, lx);
        all_violations.extend(scan.violations);
        sites.extend(scan.sites);
        reads.extend(scan.reads);
    }
    all_violations.extend(rules::check_reads(&sites, &reads));
    let call_graph = graph::build(&lexed);
    let (v2, stats) = rules2::run(&lexed, &call_graph, &waiver_at);
    all_violations.extend(v2);
    // Waiver application is case-insensitive on the rule id (the lexer
    // uppercases waived rule names to `R1V2`; the rule reports as
    // `R1v2`).
    let before = all_violations.len();
    let mut used: BTreeSet<(String, u32, String)> = BTreeSet::new();
    all_violations.retain(|v| {
        let key = (v.file.clone(), v.line, v.rule.to_ascii_uppercase());
        if waiver_at.contains(&key) {
            used.insert(key);
            false
        } else {
            true
        }
    });
    let waived = before - all_violations.len();
    for key in &stats.used_waivers {
        used.insert(key.clone());
    }
    // W0 — stale waivers: an allow whose rule fired on neither the
    // comment line nor the line below suppresses nothing and hides a
    // future regression. W0 itself is not waivable.
    for (file, line, rule) in &entries {
        let used_here = used.contains(&(file.clone(), *line, rule.clone()))
            || used.contains(&(file.clone(), line + 1, rule.clone()));
        if !used_here {
            all_violations.push(Violation {
                rule: "W0",
                file: file.clone(),
                line: *line,
                message: format!(
                    "stale waiver: lint:allow({rule}) suppresses nothing here — \
                     the rule no longer fires on this line; delete the waiver"
                ),
            });
        }
    }
    all_violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Analysis {
        files_scanned: files.len(),
        violations: all_violations,
        waived,
        manifest: report::write_manifest(&sites),
        stats,
    }
}

/// Walks the workspace at `root` and analyzes every collected file.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for rel in collect_files(root)? {
        let text = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, text));
    }
    Ok(analyze_sources(&files))
}

/// (rule, file, found, grandfathered) for every group exceeding its
/// baseline allowance — the check fails iff this is non-empty.
pub fn failing_groups(
    violations: &[Violation],
    baseline: &Baseline,
) -> Vec<(String, String, u64, u64)> {
    let counts = report::count_by_rule_file(violations);
    let mut out = Vec::new();
    for (rule, files) in &counts {
        for (file, &found) in files {
            let allowed = baseline
                .get(rule)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0);
            if found > allowed {
                out.push((rule.clone(), file.clone(), found, allowed));
            }
        }
    }
    out
}
