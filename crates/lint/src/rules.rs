//! The rule engine: five project invariants checked lexically.
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1   | virtual-time purity: no wall clock / OS randomness in the simulated layers |
//! | R2   | metric-name discipline: registry names parse against the dotted grammar `prometheus_text()` maps to `rmc_*` families, and reads reference registered names |
//! | R3   | trace-span balance: tracer `begin`/`end` names pair up per file; span keys are never the literal `0` |
//! | R4   | panic-path audit: no `unwrap()`/`expect()`/`panic!` in non-test code of the protocol crates |
//! | R5   | counter monotonicity: UCR counter cells are only written inside `counter.rs` |
//!
//! Rules see a token stream (comments and test regions already
//! classified by [`crate::lexer`]); violations are reported as
//! `file:line` plus a message. `// lint:allow(<rule>) reason` on the
//! offending line (or alone on the line above) waives a hit.

use std::collections::BTreeSet;

use crate::lexer::{Lexed, TokKind, Token};

/// One rule hit.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Rule id (`"R1"`..`"R5"`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// A metric registration site found by R2 (the manifest rows).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricSite {
    /// Dotted name with `format!` placeholders normalized to `*` (a `*`
    /// matches any run of `[a-z0-9_.]`, so one placeholder may stand for
    /// several segments).
    pub pattern: String,
    /// `counter` / `gauge` / `histogram`.
    pub kind: &'static str,
    /// Owning layer: the first literal segment when it is a known layer
    /// prefix, `dynamic` when the pattern starts with a placeholder,
    /// `other` otherwise.
    pub layer: String,
    /// File the registration lives in.
    pub file: String,
    /// Registration line.
    pub line: u32,
}

/// A literal-name metric *read* (`counter_value("…")`) found by R2,
/// checked against the registered patterns after all files are scanned.
#[derive(Clone, Debug)]
pub struct MetricRead {
    /// The read name, placeholders normalized to `x`.
    pub name: String,
    /// `counter` / `gauge` — the instrument kind the read expects.
    pub kind: &'static str,
    /// File / line of the read.
    pub file: String,
    /// Read line.
    pub line: u32,
}

/// Per-file scan result.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Rule hits (waivers not yet applied).
    pub violations: Vec<Violation>,
    /// Metric registrations (for the manifest and the read check).
    pub sites: Vec<MetricSite>,
    /// Metric reads (validated globally).
    pub reads: Vec<MetricRead>,
}

pub(crate) const R1_SCOPE: [&str; 10] = [
    "crates/simnet/",
    "crates/verbs/",
    "crates/ucr/",
    "crates/sockets/",
    "crates/core/",
    "crates/store/",
    "crates/proto/",
    "crates/bench/",
    "src/",
    "examples/",
];

const R4_SCOPE: [&str; 5] = [
    "crates/ucr/src/",
    "crates/verbs/src/",
    "crates/core/src/",
    "crates/sockets/src/",
    "crates/proto/src/",
];

/// Layer prefixes `prometheus_text()` turns into a `layer` label — kept
/// in sync with `simnet::timeseries::LAYER_PREFIXES`.
const KNOWN_LAYERS: [&str; 10] = [
    "wire", "verbs", "ucr", "core", "mc", "client", "bench", "latency", "trace", "profile",
];

/// Final segments reserved for series the sampler / reporter derives
/// (`<name>.rate`, watermarks, histogram summaries): a registered name
/// ending in one would collide with the derived series.
const RESERVED_SUFFIXES: [&str; 10] = [
    "rate", "high", "low", "count", "sum", "mean_us", "p50_us", "p95_us", "p99_us", "max_us",
];

/// True when `path` lives in a test tree (integration tests are test
/// code wholesale; every rule is a non-test rule).
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

struct View<'a> {
    path: &'a str,
    toks: &'a [Token],
    test_regions: Vec<(usize, usize)>,
}

impl<'a> View<'a> {
    fn in_test(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    fn ident(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    fn any_ident(&self, i: usize) -> Option<&'a str> {
        self.toks
            .get(i)
            .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map(|t| t.line).unwrap_or(0)
    }
}

/// Scans one lexed file with every rule whose scope covers `path`.
/// `lexed` must come from [`crate::lexer::lex`] on that file's text.
pub fn scan_file(path: &str, lexed: &Lexed) -> FileScan {
    let mut out = FileScan::default();
    if is_test_path(path) {
        return out;
    }
    let view = View {
        path,
        toks: &lexed.tokens,
        test_regions: crate::lexer::test_regions(&lexed.tokens),
    };
    if R1_SCOPE.iter().any(|p| path.starts_with(p)) {
        rule_r1(&view, &mut out);
    }
    rule_r2(&view, &mut out);
    rule_r3(&view, &mut out);
    if R4_SCOPE.iter().any(|p| path.starts_with(p)) {
        rule_r4(&view, &mut out);
    }
    if path.starts_with("crates/ucr/src/") && !path.ends_with("/counter.rs") {
        rule_r5(&view, &mut out);
    }
    out
}

// ---------------------------------------------------------------------
// R1 — virtual-time purity
// ---------------------------------------------------------------------

enum Pat {
    I(&'static str),
    ColonColon,
}

fn match_pat_toks(toks: &[Token], start: usize, pat: &[Pat]) -> Option<usize> {
    let ident = |i: usize, s: &str| {
        toks.get(i)
            .is_some_and(|t: &Token| t.kind == TokKind::Ident && t.text == s)
    };
    let punct = |i: usize, c: char| {
        toks.get(i)
            .is_some_and(|t: &Token| t.kind == TokKind::Punct && t.text.starts_with(c))
    };
    let mut i = start;
    for p in pat {
        match p {
            Pat::I(s) => {
                if !ident(i, s) {
                    return None;
                }
                i += 1;
            }
            Pat::ColonColon => {
                if !(punct(i, ':') && punct(i + 1, ':')) {
                    return None;
                }
                i += 2;
            }
        }
    }
    Some(i)
}

/// One wall-clock / OS-entropy construct found in a token range.
pub(crate) struct ImpurityHit {
    /// Token index of the match start.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// What was called (`std::time::Instant`, `thread_rng`, …).
    pub what: &'static str,
    /// True for the single-identifier randomness constructs (their
    /// message differs from the path-pattern one).
    pub is_entropy_single: bool,
}

/// Scans `toks[from..to)` for the R1 impurity constructs — shared by the
/// file-local R1 rule and the interprocedural R1v2 taint analysis.
pub(crate) fn impurity_scan(toks: &[Token], from: usize, to: usize) -> Vec<ImpurityHit> {
    use Pat::{ColonColon as CC, I};
    let paths: [(&[Pat], &'static str); 7] = [
        (&[I("time"), CC, I("Instant")], "std::time::Instant"),
        (&[I("time"), CC, I("SystemTime")], "std::time::SystemTime"),
        (&[I("Instant"), CC, I("now")], "Instant::now"),
        (&[I("SystemTime"), CC, I("now")], "SystemTime::now"),
        (&[I("thread"), CC, I("sleep")], "std::thread::sleep"),
        (&[I("process"), CC, I("id")], "std::process::id"),
        (&[I("rand"), CC, I("random")], "rand::random (OS-seeded)"),
    ];
    let singles: [&'static str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];
    let mut out = Vec::new();
    let mut i = from;
    let to = to.min(toks.len());
    while i < to {
        let mut advanced = false;
        for (pat, what) in &paths {
            if let Some(end) = match_pat_toks(toks, i, pat) {
                out.push(ImpurityHit {
                    tok: i,
                    line: toks[i].line,
                    what,
                    is_entropy_single: false,
                });
                i = end;
                advanced = true;
                break;
            }
        }
        if advanced {
            continue;
        }
        if let Some(t) = toks.get(i) {
            if t.kind == TokKind::Ident {
                if let Some(what) = singles.iter().find(|s| **s == t.text) {
                    out.push(ImpurityHit {
                        tok: i,
                        line: t.line,
                        what,
                        is_entropy_single: true,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// The R1 violation message for an impurity hit.
pub(crate) fn impurity_message(hit: &ImpurityHit) -> String {
    if hit.is_entropy_single {
        format!(
            "{} in a simulated layer: all randomness must flow from the \
             cluster seed (simnet::rng)",
            hit.what
        )
    } else {
        format!(
            "{} in a simulated layer: virtual-time code must not read \
             the wall clock, host scheduler, or OS entropy",
            hit.what
        )
    }
}

fn rule_r1(v: &View, out: &mut FileScan) {
    for hit in impurity_scan(v.toks, 0, v.toks.len()) {
        if v.in_test(hit.tok) {
            continue;
        }
        out.violations.push(Violation {
            rule: "R1",
            file: v.path.to_string(),
            line: hit.line,
            message: impurity_message(&hit),
        });
    }
}

// ---------------------------------------------------------------------
// R2 — metric-name discipline
// ---------------------------------------------------------------------

/// Splits `format!`-style text into literal chunks and placeholders,
/// producing the text with each placeholder replaced by `sub`.
/// `{{`/`}}` escapes become literal braces (which then fail the
/// grammar — intentionally: a brace has no place in a metric name).
fn substitute_placeholders(s: &str, sub: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' {
            if chars.peek() == Some(&'{') {
                chars.next();
                out.push('{');
                continue;
            }
            for inner in chars.by_ref() {
                if inner == '}' {
                    break;
                }
            }
            out.push_str(sub);
        } else if c == '}' {
            if chars.peek() == Some(&'}') {
                chars.next();
            }
            out.push('}');
        } else {
            out.push(c);
        }
    }
    out
}

/// Checks a (placeholder-substituted) name against the dotted grammar:
/// non-empty `[a-z0-9_]` segments joined by single dots, starting with
/// a letter. Returns a description of the first problem.
fn name_grammar_error(name: &str) -> Option<String> {
    if name.is_empty() {
        return Some("empty name".to_string());
    }
    if !name.starts_with(|c: char| c.is_ascii_lowercase()) {
        return Some("must start with a lowercase letter".to_string());
    }
    for seg in name.split('.') {
        if seg.is_empty() {
            return Some("empty segment (leading/trailing/double dot)".to_string());
        }
        if let Some(bad) = seg
            .chars()
            .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_'))
        {
            return Some(format!("illegal character {bad:?} in segment {seg:?}"));
        }
    }
    None
}

/// The first string-ish argument of a call: either a plain string
/// literal or `[&]format!("…", …)`. Returns (raw format text, had
/// placeholders allowed).
fn first_string_arg<'a>(v: &View<'a>, mut j: usize) -> Option<(&'a str, bool)> {
    while v.punct(j, '&') {
        j += 1;
    }
    if let Some(t) = v.toks.get(j) {
        if t.kind == TokKind::Str {
            return Some((t.text.as_str(), false));
        }
    }
    if v.ident(j, "format") && v.punct(j + 1, '!') && v.punct(j + 2, '(') {
        if let Some(t) = v.toks.get(j + 3) {
            if t.kind == TokKind::Str {
                return Some((t.text.as_str(), true));
            }
        }
    }
    None
}

fn rule_r2(v: &View, out: &mut FileScan) {
    for i in 0..v.toks.len() {
        if v.in_test(i) {
            continue;
        }
        let Some(name) = v.any_ident(i) else { continue };
        let (kind, is_read) = match name {
            "counter" => ("counter", false),
            "gauge" => ("gauge", false),
            "histogram" => ("histogram", false),
            "counter_value" => ("counter", true),
            "gauge_value" => ("gauge", true),
            _ => continue,
        };
        if !v.punct(i + 1, '(') {
            continue;
        }
        // Only method calls on a registry (`metrics.gauge(…)`) register:
        // this skips `fn counter(…)` definitions and local helper
        // closures whose inner registration is matched at its own site.
        if i == 0 || !v.punct(i - 1, '.') {
            continue;
        }
        let Some((text, is_format)) = first_string_arg(v, i + 2) else {
            continue; // dynamic name: not statically checkable
        };
        let line = v.line(i);
        let checked = if is_format {
            substitute_placeholders(text, "x")
        } else {
            text.to_string()
        };
        if let Some(err) = name_grammar_error(&checked) {
            out.violations.push(Violation {
                rule: "R2",
                file: v.path.to_string(),
                line,
                message: format!(
                    "metric name {text:?} violates the dotted-name grammar ({err}); \
                     prometheus_text() cannot map it to a clean rmc_* family"
                ),
            });
            continue;
        }
        if is_read {
            out.reads.push(MetricRead {
                name: checked,
                kind,
                file: v.path.to_string(),
                line,
            });
            continue;
        }
        let pattern = if is_format {
            substitute_placeholders(text, "*")
        } else {
            text.to_string()
        };
        if let Some(last) = pattern.rsplit('.').next() {
            if RESERVED_SUFFIXES.contains(&last) {
                out.violations.push(Violation {
                    rule: "R2",
                    file: v.path.to_string(),
                    line,
                    message: format!(
                        "metric name {text:?} ends in reserved segment {last:?}, which \
                         collides with a sampler/report-derived series of the base name"
                    ),
                });
                continue;
            }
        }
        let first = pattern.split('.').next().unwrap_or("");
        let layer = if first == "*" || first.contains('*') {
            "dynamic".to_string()
        } else if KNOWN_LAYERS.contains(&first) {
            first.to_string()
        } else {
            "other".to_string()
        };
        out.sites.push(MetricSite {
            pattern,
            kind,
            layer,
            file: v.path.to_string(),
            line,
        });
    }
}

/// Glob match for manifest patterns: `*` matches any (possibly empty)
/// run of `[a-z0-9_.]` — a placeholder may expand across segments
/// (`{prefix}` routinely carries dots).
pub fn pattern_matches(pattern: &str, name: &str) -> bool {
    fn rec(p: &[u8], s: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'*') => {
                for k in 0..=s.len() {
                    if rec(&p[1..], &s[k..]) {
                        return true;
                    }
                    if k < s.len() {
                        let c = s[k];
                        let ok =
                            c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_' || c == b'.';
                        if !ok {
                            return false;
                        }
                    }
                }
                false
            }
            Some(&c) => !s.is_empty() && s[0] == c && rec(&p[1..], &s[1..]),
        }
    }
    rec(pattern.as_bytes(), name.as_bytes())
}

/// Validates every literal metric *read* against the registration
/// patterns collected across the whole workspace: a read of a name no
/// site registers silently returns zero forever — the typo'd-series
/// failure mode R2 exists to catch.
pub fn check_reads(sites: &[MetricSite], reads: &[MetricRead]) -> Vec<Violation> {
    let mut out = Vec::new();
    for r in reads {
        let known = sites
            .iter()
            .any(|s| s.kind == r.kind && pattern_matches(&s.pattern, &r.name));
        if !known {
            out.push(Violation {
                rule: "R2",
                file: r.file.clone(),
                line: r.line,
                message: format!(
                    "read of {} {:?} matches no registered metric: a typo here reads \
                     zero forever instead of failing",
                    r.kind, r.name
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// R3 — trace-span balance
// ---------------------------------------------------------------------

/// Splits the arguments of a call whose `(` sits at `open`; returns
/// token ranges for each top-level argument.
pub(crate) fn split_args_toks(toks: &[Token], open: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 1usize;
    let mut start = open + 1;
    let mut j = open + 1;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        if j > start {
                            args.push((start, j));
                        }
                        break;
                    }
                }
                "," if depth == 1 => {
                    args.push((start, j));
                    start = j + 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    args
}

/// A tracer-span emission site (`.begin(Layer::…)` / `.end(Layer::…)`,
/// `_detail` variants included) — shared with the cross-file R3v2 pass.
pub(crate) struct SpanSite {
    /// Token index of the method-name token.
    pub tok: usize,
    /// 1-based line of the method name.
    pub line: u32,
    /// True for `begin`/`begin_detail`.
    pub is_begin: bool,
    /// Literal span name; `None` when the name argument is dynamic.
    pub name: Option<String>,
    /// True when the span-key argument is the literal `0`.
    pub zero_key: bool,
}

/// Finds every tracer-span emission in a token stream. Recognition is
/// by shape: a `begin`/`end`(`_detail`) method call whose first argument
/// is a `Layer::…` placement (`LatencySpans::begin(op, now)` and other
/// `begin`s never start with `Layer`).
pub(crate) fn span_sites(toks: &[Token]) -> Vec<SpanSite> {
    let punct = |i: usize, c: char| {
        toks.get(i)
            .is_some_and(|t: &Token| t.kind == TokKind::Punct && t.text.starts_with(c))
    };
    let ident = |i: usize, s: &str| {
        toks.get(i)
            .is_some_and(|t: &Token| t.kind == TokKind::Ident && t.text == s)
    };
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !punct(i, '.') {
            continue;
        }
        let Some(t) = toks.get(i + 1) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let method = t.text.strip_suffix("_detail").unwrap_or(&t.text);
        if method != "begin" && method != "end" {
            continue;
        }
        if !(punct(i + 2, '(') && ident(i + 3, "Layer") && punct(i + 4, ':')) {
            continue;
        }
        let args = split_args_toks(toks, i + 2);
        // args: layer, name, node, track, op, bytes, at
        let name = args.get(1).and_then(|&(a, b)| {
            (b == a + 1 && toks[a].kind == TokKind::Str).then(|| toks[a].text.clone())
        });
        let zero_key = args.get(4).is_some_and(|&(a, b)| {
            b == a + 1 && toks[a].kind == TokKind::Num && toks[a].text == "0"
        });
        out.push(SpanSite {
            tok: i + 1,
            line: toks[i + 1].line,
            is_begin: method == "begin",
            name,
            zero_key,
        });
    }
    out
}

fn rule_r3(v: &View, out: &mut FileScan) {
    // Literal-name begin/end pairing is interprocedural since the v2
    // analyzer (rule R3v2 in `crate::rules2`, matched through the call
    // graph). The file-local rule keeps what a workspace pass cannot
    // improve on: span-key hygiene, and pairing for *dynamic* names —
    // a dynamic name cannot be matched across files by value, so the
    // emitting file must balance it.
    let mut dyn_begins: Vec<u32> = Vec::new();
    let mut dyn_ends: Vec<u32> = Vec::new();
    for s in span_sites(v.toks) {
        if v.in_test(s.tok) {
            continue;
        }
        if s.zero_key {
            out.violations.push(Violation {
                rule: "R3",
                file: v.path.to_string(),
                line: s.line,
                message: format!(
                    "span {} {} uses the literal span key 0: begin/end cannot \
                     be correlated without a real wr_id/req_id",
                    if s.is_begin { "begin" } else { "end" },
                    s.name.as_deref().unwrap_or("<dynamic>")
                ),
            });
        }
        if s.name.is_none() {
            if s.is_begin {
                dyn_begins.push(s.line);
            } else {
                dyn_ends.push(s.line);
            }
        }
    }
    if !dyn_begins.is_empty() && dyn_ends.is_empty() {
        for line in dyn_begins {
            out.violations.push(Violation {
                rule: "R3",
                file: v.path.to_string(),
                line,
                message: "dynamic-name span begin has no end emission in this file: \
                          the span never closes on any timeline"
                    .to_string(),
            });
        }
    } else if dyn_begins.is_empty() && !dyn_ends.is_empty() {
        for line in dyn_ends {
            out.violations.push(Violation {
                rule: "R3",
                file: v.path.to_string(),
                line,
                message: "dynamic-name span end has no begin emission in this file: \
                          the span can never open"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R4 — panic-path audit
// ---------------------------------------------------------------------

fn rule_r4(v: &View, out: &mut FileScan) {
    for i in 0..v.toks.len() {
        if v.in_test(i) {
            continue;
        }
        let hit = if v.punct(i, '.') && v.ident(i + 1, "unwrap") && v.punct(i + 2, '(') {
            Some((v.line(i + 1), ".unwrap()"))
        } else if v.punct(i, '.') && v.ident(i + 1, "expect") && v.punct(i + 2, '(') {
            Some((v.line(i + 1), ".expect()"))
        } else if v.ident(i, "panic") && v.punct(i + 1, '!') {
            Some((v.line(i), "panic!"))
        } else {
            None
        };
        if let Some((line, what)) = hit {
            out.violations.push(Violation {
                rule: "R4",
                file: v.path.to_string(),
                line,
                message: format!(
                    "{what} in protocol-crate non-test code: convert to a fault()-\
                     reporting error path (endpoint-failure model) or waive with a reason"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R5 — counter monotonicity
// ---------------------------------------------------------------------

fn rule_r5(v: &View, out: &mut FileScan) {
    for i in 0..v.toks.len() {
        if v.in_test(i) {
            continue;
        }
        let seq_value_set = v.punct(i, '.')
            && v.ident(i + 1, "value")
            && v.punct(i + 2, '.')
            && v.ident(i + 3, "set")
            && v.punct(i + 4, '(');
        let seq_notify = v.punct(i, '.')
            && v.ident(i + 1, "notify")
            && v.punct(i + 2, '.')
            && v.ident(i + 3, "notify_all")
            && v.punct(i + 4, '(');
        if seq_value_set || seq_notify {
            out.violations.push(Violation {
                rule: "R5",
                file: v.path.to_string(),
                line: v.line(i + 1),
                message: format!(
                    "direct counter-cell {} outside counter.rs: the §4.1 bump ordering \
                     (value, trace, notify) is only guaranteed by CtrInner::bump",
                    if seq_value_set {
                        "write (.value.set)"
                    } else {
                        "wakeup (.notify.notify_all)"
                    }
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Waiver application
// ---------------------------------------------------------------------

/// Drops violations covered by a waiver on the same line (or a
/// standalone waiver on the line directly above). Returns the surviving
/// violations and the number waived.
pub fn apply_waivers(violations: Vec<Violation>, lexed: &Lexed) -> (Vec<Violation>, usize) {
    let mut same_line: BTreeSet<(u32, &str)> = BTreeSet::new();
    let mut next_line: BTreeSet<(u32, &str)> = BTreeSet::new();
    for w in &lexed.waivers {
        for r in &w.rules {
            same_line.insert((w.line, r.as_str()));
            if w.standalone {
                next_line.insert((w.line + 1, r.as_str()));
            }
        }
    }
    let before = violations.len();
    let kept: Vec<Violation> = violations
        .into_iter()
        .filter(|v| {
            !(same_line.contains(&(v.line, v.rule)) || next_line.contains(&(v.line, v.rule)))
        })
        .collect();
    let waived = before - kept.len();
    (kept, waived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(path: &str, src: &str) -> FileScan {
        scan_file(path, &lex(src))
    }

    #[test]
    fn grammar_accepts_and_rejects() {
        assert!(name_grammar_error("mc.node0.worker1.queue_depth").is_none());
        assert!(name_grammar_error("bench.tps").is_none());
        assert!(name_grammar_error("x").is_none());
        assert!(name_grammar_error("Bad.name").is_some());
        assert!(name_grammar_error("a..b").is_some());
        assert!(name_grammar_error(".lead").is_some());
        assert!(name_grammar_error("tail.").is_some());
        assert!(name_grammar_error("has-dash").is_some());
        assert!(name_grammar_error("has space").is_some());
        assert!(name_grammar_error("0digit.first").is_some());
    }

    #[test]
    fn placeholder_substitution() {
        assert_eq!(
            substitute_placeholders("client.node{}.inflight", "*"),
            "client.node*.inflight"
        );
        assert_eq!(
            substitute_placeholders("ucr.{net}.{node}.{name}", "x"),
            "ucr.x.x.x"
        );
        assert_eq!(substitute_placeholders("{prefix}.wakes", "*"), "*.wakes");
        assert_eq!(substitute_placeholders("{v:>8}.q", "x"), "x.q");
        // Escaped braces survive substitution — and then fail the grammar.
        assert_eq!(substitute_placeholders("a{{b}}", "x"), "a{b}");
    }

    #[test]
    fn pattern_glob_semantics() {
        assert!(pattern_matches(
            "client.node*.inflight",
            "client.node1.inflight"
        ));
        assert!(pattern_matches("*.wakes", "mc.node0.worker3.wakes"));
        assert!(pattern_matches(
            "ucr.*.*.*",
            "ucr.ib.node0.mr_cache_hit_rate"
        ));
        assert!(!pattern_matches("*.wakes", "mc.node0.worker3.batch_items"));
        assert!(!pattern_matches("client.node*.inflight", "client.inflight"));
        assert!(pattern_matches("bench.tps", "bench.tps"));
    }

    #[test]
    fn r2_flags_bad_literal_and_reserved_suffix() {
        let src = r#"
fn f(m: &Metrics) {
    m.counter("Bad Name").inc();
    m.gauge("queue.depth.high").set(1.0);
    m.histogram("mc.node0.op_get").record(d);
}
"#;
        let s = scan("crates/core/src/x.rs", src);
        let rules: Vec<(u32, &str)> = s.violations.iter().map(|v| (v.line, v.rule)).collect();
        assert_eq!(rules, vec![(3, "R2"), (4, "R2")]);
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].pattern, "mc.node0.op_get");
        assert_eq!(s.sites[0].layer, "mc");
    }

    #[test]
    fn r2_skips_dynamic_and_zero_arg_calls() {
        let src = r#"
fn f(m: &Metrics, n: &str) {
    m.counter(n).inc();
    let c = client.counter();
    m.gauge(&format!("mc.node{}.depth", i)).set(0.0);
}
"#;
        let s = scan("crates/core/src/x.rs", src);
        assert!(s.violations.is_empty());
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].pattern, "mc.node*.depth");
    }

    #[test]
    fn r2_read_check_catches_typos() {
        let src = r#"
fn f(m: &Metrics) {
    m.counter("mc.node0.wakes").inc();
    let a = m.counter_value("mc.node0.wakes");
    let b = m.counter_value("mc.node0.wkaes");
    let c = m.gauge_value("mc.node0.wakes");
}
"#;
        let s = scan("crates/core/src/x.rs", src);
        let extra = check_reads(&s.sites, &s.reads);
        let lines: Vec<u32> = extra.iter().map(|v| v.line).collect();
        // The typo'd read AND the kind-mismatched read (gauge read of a
        // counter name) both fail.
        assert_eq!(lines, vec![5, 6]);
    }

    #[test]
    fn r4_only_fires_in_scope_and_outside_tests() {
        let src = r#"
fn live() { x.unwrap(); y.expect("msg"); panic!("boom"); z.unwrap_or(0); }
#[cfg(test)]
mod tests {
    fn t() { a.unwrap(); }
}
"#;
        let s = scan("crates/verbs/src/x.rs", src);
        let lines: Vec<u32> = s.violations.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 2, 2]);
        assert!(scan("crates/simnet/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn r5_scopes_to_ucr_outside_counter_rs() {
        let src = "fn f(c: &CtrInner) { c.value.set(c.value.get() + 1); c.notify.notify_all(); }";
        assert_eq!(scan("crates/ucr/src/runtime.rs", src).violations.len(), 2);
        assert!(scan("crates/ucr/src/counter.rs", src).violations.is_empty());
        assert!(scan("crates/core/src/server.rs", src).violations.is_empty());
    }

    #[test]
    fn waivers_suppress_same_line_and_next_line() {
        let src = "fn f() { let t = Instant::now(); // lint:allow(R1) host-side harness\n\
                   // lint:allow(R1) wrapped below\n\
                   let u = Instant::now();\n\
                   let v = Instant::now();\n}";
        let lexed = lex(src);
        let s = scan_file("crates/bench/src/lib.rs", &lexed);
        assert_eq!(s.violations.len(), 3);
        let (kept, waived) = apply_waivers(s.violations, &lexed);
        assert_eq!(waived, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 4);
    }
}
