//! Hand-rolled Rust tokenizer for the invariant analyzer.
//!
//! The rules only need a *lexical* view of a source file: identifiers,
//! punctuation, string/char/number literals, and line numbers — with
//! comments stripped (so a forbidden call in a doc example never fires)
//! and `// lint:allow(...)` waiver comments captured on the side. The
//! lexer therefore handles exactly the token boundaries that matter for
//! not mis-lexing real Rust:
//!
//! * line comments (`//`, `///`, `//!`) and **nesting** block comments;
//! * cooked strings with escapes, raw strings with any number of hashes
//!   (`r#"..."#`), byte/raw-byte strings;
//! * char literals vs lifetimes (`'a'` vs `'a`);
//! * numbers (enough to recognize a literal `0` argument).
//!
//! No external dependencies: the offline container has no crates.io
//! access (the `shims/` precedent), and a lexer this size does not need
//! one.

/// Kinds of significant tokens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (cooked, raw, byte); `text` is the content.
    Str,
    /// Numeric literal; `text` is the raw spelling.
    Num,
    /// Single punctuation character; `text` is that character.
    Punct,
    /// Char literal (content irrelevant to the rules).
    Char,
    /// Lifetime (`'a`); kept so `'a` is never half-lexed as a char.
    Life,
}

/// One significant token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (content for strings, spelling otherwise).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `// lint:allow(R1, R2) reason` waiver comment.
#[derive(Clone, Debug, PartialEq)]
pub struct Waiver {
    /// Line the comment sits on.
    pub line: u32,
    /// Waived rule ids, upper-cased (`"R1"`).
    pub rules: Vec<String>,
    /// True when the comment is the only thing on its line (the waiver
    /// then also covers the *next* line, for rustfmt-wrapped calls).
    pub standalone: bool,
    /// Free-text justification after the closing paren.
    pub reason: String,
}

/// Lexer output: the significant tokens plus the waiver side table.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Waiver comments in source order.
    pub waivers: Vec<Waiver>,
}

/// Lexes one file. Never fails: unterminated constructs simply end at
/// EOF (the analyzer lints real, compiling sources; garbage in garbage
/// out is acceptable for a linter's lexer).
pub fn lex(text: &str) -> Lexed {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_had_token = false;

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {{
            out.tokens.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
            });
            line_had_token = true;
        }};
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            line_had_token = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments) — may carry a waiver.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            if let Some(w) = parse_waiver(&body, line, !line_had_token) {
                out.waivers.push(w);
            }
            continue;
        }
        // Block comment, nesting.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 1;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        // Cooked string.
        if c == '"' {
            let start_line = line;
            i += 1;
            let mut s = String::new();
            while i < n && chars[i] != '"' {
                if chars[i] == '\\' && i + 1 < n {
                    if chars[i + 1] == '\n' {
                        line += 1;
                    }
                    s.push(chars[i]);
                    s.push(chars[i + 1]);
                    i += 2;
                    continue;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                s.push(chars[i]);
                i += 1;
            }
            i += 1; // closing quote
            push!(TokKind::Str, cook(&s), start_line);
            continue;
        }
        // Identifier — possibly a raw/byte string prefix.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
            if is_str_prefix && i < n && (chars[i] == '"' || chars[i] == '#') {
                // Raw (or byte) string: r"..." / r#"..."# / br##"..."##.
                let raw = ident.contains('r');
                let start_line = line;
                let mut hashes = 0usize;
                while i < n && chars[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < n && chars[i] == '"' {
                    i += 1;
                    let content_start = i;
                    'scan: while i < n {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                let content: String = chars[content_start..i].iter().collect();
                                i += 1 + hashes;
                                let text = if raw { content } else { cook(&content) };
                                push!(TokKind::Str, text, start_line);
                                break 'scan;
                            }
                        }
                        if !raw && chars[i] == '\\' {
                            i += 1; // cooked byte string: skip escape
                        }
                        i += 1;
                    }
                    continue;
                }
                // `r#ident` raw identifier: the hashes were not a string.
                // Re-lex the ident after the hash.
                push!(TokKind::Ident, ident, line);
                continue;
            }
            // Byte char literal prefix: b'x'.
            if ident == "b" && i < n && chars[i] == '\'' {
                i = skip_char_literal(&chars, i);
                push!(TokKind::Char, String::new(), line);
                continue;
            }
            let kind = TokKind::Ident;
            push!(kind, ident, line);
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                i = skip_char_literal(&chars, i);
                push!(TokKind::Char, String::new(), line);
            } else if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                push!(TokKind::Char, chars[i + 1].to_string(), line);
                i += 3;
            } else {
                // Lifetime: 'ident (or the bare loop-label quote).
                i += 1;
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                push!(TokKind::Life, chars[start..i].iter().collect(), line);
            }
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            // Fractional part — but not `0..10` ranges or `1.max(..)`.
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            push!(TokKind::Num, chars[start..i].iter().collect(), line);
            continue;
        }
        // Single punctuation char.
        push!(TokKind::Punct, c.to_string(), line);
        i += 1;
    }
    out
}

/// Skips a `'...'` char literal starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_char_literal(chars: &[char], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < chars.len() && chars[i] != '\'' {
        if chars[i] == '\\' {
            i += 1;
        }
        i += 1;
    }
    i + 1
}

/// Resolves the escapes that matter for name literals (`\"`, `\\`);
/// other escapes are kept verbatim — metric names and span names never
/// contain them.
fn cook(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses a `lint:allow(R1, R2) reason` waiver out of a line comment.
/// Doc comments (`///`, `//!`) never carry waivers: documentation that
/// *describes* the waiver syntax (this crate's own docs, for one) must
/// not create live — and, under the stale-waiver check, stale — waivers.
fn parse_waiver(comment: &str, line: u32, standalone: bool) -> Option<Waiver> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_ascii_uppercase())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    Some(Waiver {
        line,
        rules,
        standalone,
        reason: rest[close + 1..].trim().to_string(),
    })
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

/// Spans of token indices (inclusive) that are test code: items under a
/// `#[cfg(test)]`/`#[test]` attribute, and `mod tests { ... }` bodies.
pub fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let is_punct = |i: usize, c: char| {
        tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
    };
    let is_ident = |i: usize, s: &str| {
        tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    };
    // Scans an attribute body starting just past `#[`; returns the index
    // past the closing `]` and whether the attr mentions `test`.
    let scan_attr = |mut j: usize| -> (usize, bool) {
        let mut depth = 1usize;
        let mut has_test = false;
        while j < tokens.len() && depth > 0 {
            if is_punct(j, '[') {
                depth += 1;
            } else if is_punct(j, ']') {
                depth -= 1;
            } else if is_ident(j, "test") {
                has_test = true;
            }
            j += 1;
        }
        (j, has_test)
    };
    let match_brace = |open: usize| -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < tokens.len() {
            if is_punct(j, '{') {
                depth += 1;
            } else if is_punct(j, '}') {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        tokens.len().saturating_sub(1)
    };

    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_punct(i, '#') && is_punct(i + 1, '[') {
            let (mut j, mut has_test) = scan_attr(i + 2);
            // Fold in any directly following attributes.
            while is_punct(j, '#') && is_punct(j + 1, '[') {
                let (next, t) = scan_attr(j + 2);
                has_test = has_test || t;
                j = next;
            }
            if has_test {
                // The attributed item: everything up to its body's close
                // (or its `;` for a body-less item).
                let mut k = j;
                while k < tokens.len() && !is_punct(k, '{') && !is_punct(k, ';') {
                    k += 1;
                }
                if is_punct(k, '{') {
                    let close = match_brace(k);
                    regions.push((i, close));
                    i = close + 1;
                    continue;
                }
                regions.push((i, k.min(tokens.len().saturating_sub(1))));
                i = k + 1;
                continue;
            }
            i = j;
            continue;
        }
        if is_ident(i, "mod") && is_ident(i + 1, "tests") && is_punct(i + 2, '{') {
            let close = match_brace(i + 2);
            regions.push((i, close));
            i = close + 1;
            continue;
        }
        i += 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn line_and_block_comments_are_stripped() {
        let src = "let a = 1; // unwrap() in a comment\nlet b /* panic! */ = 2;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "before /* outer /* inner unwrap() */ still comment */ after";
        assert_eq!(idents(src), vec!["before", "after"]);
    }

    #[test]
    fn block_comment_counts_lines() {
        let src = "/* line1\nline2\nline3 */ token";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].text, "token");
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"contains "quotes" and // not a comment"#; done"####;
        let lexed = lex(src);
        let strs: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r#"contains "quotes" and // not a comment"#);
        assert_eq!(*idents(src).last().expect("tokens"), "done");
    }

    #[test]
    fn raw_string_two_hashes_embedding_one_hash_terminator() {
        let src = r#####"r##"inner "# still inside"## after"#####;
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].kind, TokKind::Str);
        assert_eq!(lexed.tokens[0].text, r##"inner "# still inside"##);
        assert_eq!(lexed.tokens[1].text, "after");
    }

    #[test]
    fn string_escapes_do_not_end_the_literal() {
        let src = r#"let s = "a \" b \\"; next"#;
        let lexed = lex(src);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("str");
        assert_eq!(s.text, "a \" b \\");
        assert_eq!(*idents(src).last().expect("tokens"), "next");
    }

    #[test]
    fn multiline_string_counts_lines() {
        let src = "let s = \"line1\nline2\";\nafter";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.text == "after")
            .expect("after");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "let c = 'x'; fn f<'a>(v: &'a str) { let q = '\\''; }";
        let lexed = lex(src);
        let chars: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        let lifes: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Life)
            .collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(lifes.len(), 2);
        assert_eq!(lifes[0].text, "a");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"bytes\"; let b2 = b'x'; let c = br#\"raw\"#;";
        let lexed = lex(src);
        let strs: Vec<&Token> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, "bytes");
        assert_eq!(strs[1].text, "raw");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn waiver_parsing_same_line_and_standalone() {
        let src = "foo(); // lint:allow(R1) criterion measures host time\n\
                   // lint:allow(R2, r4) wrapped call below\n\
                   bar();";
        let lexed = lex(src);
        assert_eq!(lexed.waivers.len(), 2);
        let w0 = &lexed.waivers[0];
        assert_eq!(w0.line, 1);
        assert!(!w0.standalone);
        assert_eq!(w0.rules, vec!["R1"]);
        assert_eq!(w0.reason, "criterion measures host time");
        let w1 = &lexed.waivers[1];
        assert_eq!(w1.line, 2);
        assert!(w1.standalone);
        assert_eq!(w1.rules, vec!["R2", "R4"]);
    }

    #[test]
    fn doc_comments_never_carry_waivers() {
        assert!(lex("/// the `// lint:allow(R1, R2) reason` syntax")
            .waivers
            .is_empty());
        assert!(lex("//! and `// lint:allow(...)` comments")
            .waivers
            .is_empty());
        assert_eq!(lex("// lint:allow(R4) real waiver").waivers.len(), 1);
    }

    #[test]
    fn waiver_without_rules_is_ignored() {
        assert!(lex("// lint:allow() nothing").waivers.is_empty());
        assert!(lex("// lint:allow unclosed").waivers.is_empty());
    }

    #[test]
    fn cfg_test_region_covers_the_item_body() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn live2() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let (a, b) = regions[0];
        let in_test = |name: &str| {
            let idx = lexed
                .tokens
                .iter()
                .position(|t| t.text == name)
                .expect("token present");
            idx >= a && idx <= b
        };
        assert!(!in_test("live"));
        assert!(in_test("y"));
        assert!(!in_test("live2"));
    }

    #[test]
    fn test_attr_on_fn_and_mod_tests_without_cfg() {
        let src = "#[test]\nfn check() { a.unwrap(); }\n\
                   mod tests { fn u() { b.unwrap(); } }\n\
                   fn live() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 2);
        let live = lexed
            .tokens
            .iter()
            .position(|t| t.text == "live")
            .expect("live");
        assert!(regions.iter().all(|&(a, b)| live < a || live > b));
    }

    #[test]
    fn cfg_test_with_nested_brackets_and_stacked_attrs() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\n\
                   fn helper() { c.unwrap(); }\nfn live() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let c = lexed.tokens.iter().position(|t| t.text == "c").expect("c");
        assert!(regions.iter().any(|&(a, b)| c >= a && c <= b));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let src = "for i in 0..10 { let x = 1.5; let y = 2.max(3); }";
        let nums: Vec<String> = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "2", "3"]);
    }
}
