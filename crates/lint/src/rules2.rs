//! Phase-2 interprocedural rules over the workspace call graph
//! ([`crate::graph`]): R1v2 transitive purity taint, R3v2 cross-file
//! span pairing, R6 VLock acquisition-order discipline, and R7 MR
//! retention lifecycle. Every rule errs toward *missing* a violation
//! rather than inventing one: unresolved calls contribute no edges,
//! untypable receivers contribute no acquisitions, and unretained
//! registrations contribute no obligations.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{components, CallGraph, CallKind, FileView};
use crate::lexer::Lexed;
use crate::rules::{self, Violation};

/// Statistics gathered alongside the phase-2 violations. The self-check
/// pins these so "zero findings" stays distinguishable from "the pass
/// silently stopped seeing the tree" — an analyzer that types no lock
/// receivers reports no R6 violations for the wrong reason.
#[derive(Debug, Default)]
pub struct InterStats {
    /// Non-test functions indexed by the call graph.
    pub fns: usize,
    /// Call sites with at least one resolved callee.
    pub resolved_calls: usize,
    /// Call sites left without edges (conservative: never guessed).
    pub unresolved_calls: usize,
    /// Out-of-scope functions directly touching wall clock / OS entropy
    /// (the R1v2 taint sources).
    pub taint_sources: usize,
    /// Every VLock acquisition R6 typed: (file, line, provably ordered).
    pub r6_acquisitions: Vec<(String, u32, bool)>,
    /// Every MR-retention obligation R7 tracked:
    /// (file, container, release path found).
    pub r7_obligations: Vec<(String, String, bool)>,
    /// Waiver coverage keys consumed by phase-2 analyses without a
    /// suppressed violation (e.g. a waived impurity is not an R1v2
    /// taint source) — the stale-waiver check must not flag these.
    pub used_waivers: Vec<(String, u32, String)>,
}

/// Runs all phase-2 rules. `waiver_at` holds `(file, line, RULE)`
/// coverage with rule names uppercased (the lexer's storage form);
/// R1v2 consults it so a *waived* impurity is not a taint source.
pub fn run(
    files: &[(String, Lexed)],
    g: &CallGraph,
    waiver_at: &BTreeSet<(String, u32, String)>,
) -> (Vec<Violation>, InterStats) {
    let mut out = Vec::new();
    let mut stats = InterStats {
        fns: g.fns.iter().filter(|f| !f.is_test).count(),
        resolved_calls: g.calls.iter().filter(|c| !c.resolved.is_empty()).count(),
        unresolved_calls: g.calls.iter().filter(|c| c.resolved.is_empty()).count(),
        ..InterStats::default()
    };
    r1v2(files, g, waiver_at, &mut out, &mut stats);
    r3v2(files, g, &mut out);
    r6(files, g, &mut out, &mut stats);
    r7(files, g, &mut out, &mut stats);
    (out, stats)
}

fn in_scope(file: &str) -> bool {
    rules::R1_SCOPE.iter().any(|p| file.starts_with(p))
}

fn view(files: &[(String, Lexed)], idx: usize) -> FileView<'_> {
    FileView {
        toks: &files[idx].1.tokens,
    }
}

// ---------------------------------------------------------------------
// R1v2 — transitive purity taint
// ---------------------------------------------------------------------

/// A function *outside* the R1 scope that touches the wall clock or OS
/// entropy taints every scoped caller that can reach it. The file-local
/// R1 already covers direct use inside the scope; this closes the
/// "helper crate launders the clock" hole. Violations are reported at
/// the scope-boundary call site with the full taint chain, so the fix
/// target (the helper, or the call) is visible without re-running.
fn r1v2(
    files: &[(String, Lexed)],
    g: &CallGraph,
    waiver_at: &BTreeSet<(String, u32, String)>,
    out: &mut Vec<Violation>,
    stats: &mut InterStats,
) {
    // Sources: out-of-scope, non-test fns with an unwaived impurity.
    let mut source: BTreeMap<usize, (u32, &'static str)> = BTreeMap::new();
    for (id, f) in g.fns.iter().enumerate() {
        if f.is_test || in_scope(&f.file) || rules::is_test_path(&f.file) {
            continue;
        }
        let Some((a, b)) = f.body else { continue };
        for h in rules::impurity_scan(&files[f.file_idx].1.tokens, a, b + 1) {
            let mut waived = false;
            for r in ["R1", "R1V2"] {
                let key = (f.file.clone(), h.line, r.to_string());
                if waiver_at.contains(&key) {
                    stats.used_waivers.push(key);
                    waived = true;
                }
            }
            if waived {
                continue;
            }
            source.insert(id, (h.line, h.what));
            break;
        }
    }
    stats.taint_sources = source.len();
    if source.is_empty() {
        return;
    }
    // Reverse reachability restricted to out-of-scope callers: a scoped
    // fn is reported at its boundary call site, never tainted through
    // (the finding belongs to the first scoped frame).
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); g.fns.len()];
    for c in &g.calls {
        for &callee in &c.resolved {
            callers[callee].push(c.caller);
        }
    }
    let mut tainted = vec![false; g.fns.len()];
    // Next hop toward the source, for chain printing.
    let mut next: Vec<Option<usize>> = vec![None; g.fns.len()];
    let mut queue: Vec<usize> = source.keys().copied().collect();
    for &s in &queue {
        tainted[s] = true;
    }
    while let Some(f) = queue.pop() {
        for &caller in &callers[f] {
            if tainted[caller] || in_scope(&g.fns[caller].file) {
                continue;
            }
            tainted[caller] = true;
            next[caller] = Some(f);
            queue.push(caller);
        }
    }
    for c in &g.calls {
        let caller = &g.fns[c.caller];
        if caller.is_test || !in_scope(&caller.file) || rules::is_test_path(&caller.file) {
            continue;
        }
        let Some(&callee) = c
            .resolved
            .iter()
            .find(|&&k| tainted[k] && !in_scope(&g.fns[k].file))
        else {
            continue;
        };
        let mut chain = vec![callee];
        while let Some(n) = next[*chain.last().expect("chain is non-empty")] {
            chain.push(n);
        }
        let last = *chain.last().expect("chain is non-empty");
        let Some(&(src_line, what)) = source.get(&last) else {
            continue;
        };
        let names: Vec<String> = chain
            .iter()
            .map(|&k| format!("`{}`", g.fns[k].qualified()))
            .collect();
        out.push(Violation {
            rule: "R1v2",
            file: caller.file.clone(),
            line: c.line,
            message: format!(
                "call into {} taints this simulated layer: `{}` -> {} where {} \
                 calls {} ({}:{}); route the value through simnet instead",
                names[0],
                caller.qualified(),
                names.join(" -> "),
                names[names.len() - 1],
                what,
                g.fns[last].file,
                src_line,
            ),
        });
    }
}

// ---------------------------------------------------------------------
// R3v2 — cross-file literal-name span pairing
// ---------------------------------------------------------------------

/// A literal-name `begin(Layer::…)` must have a matching `end` either
/// in the same file or in a file whose functions share an (undirected)
/// call-graph component with the emitting function — the shape PR 9's
/// detail markers introduced (e.g. a window opened in the request path
/// and closed in the completion handler). A name with no counterpart
/// anywhere, or whose only counterparts live in unconnected code, is a
/// renamed or dead span and will record as an unmatched interval.
fn r3v2(files: &[(String, Lexed)], g: &CallGraph, out: &mut Vec<Violation>) {
    struct SpanAt {
        file: String,
        file_idx: usize,
        line: u32,
        /// Component of the enclosing fn; `None` (outside any indexed
        /// fn) is treated as connected-to-everything.
        comp: Option<usize>,
        is_begin: bool,
    }
    let comp = components(g);
    let mut by_name: BTreeMap<String, Vec<SpanAt>> = BTreeMap::new();
    for (fi, (path, lx)) in files.iter().enumerate() {
        if rules::is_test_path(path) {
            continue;
        }
        for s in rules::span_sites(&lx.tokens) {
            let fn_id = g.fn_at(fi, s.tok);
            if fn_id.is_some_and(|id| g.fns[id].is_test) {
                continue;
            }
            let Some(name) = s.name else { continue };
            by_name.entry(name).or_default().push(SpanAt {
                file: path.clone(),
                file_idx: fi,
                line: s.line,
                comp: fn_id.map(|id| comp[id]),
                is_begin: s.is_begin,
            });
        }
    }
    for (name, sites) in &by_name {
        let (begins, ends): (Vec<&SpanAt>, Vec<&SpanAt>) = sites.iter().partition(|s| s.is_begin);
        for (have, other, kind_have, kind_other) in [
            (&begins, &ends, "begin", "end"),
            (&ends, &begins, "end", "begin"),
        ] {
            for s in have {
                let bad = if other.is_empty() {
                    Some(format!(
                        "span {kind_have} {name:?} has no {kind_other} anywhere \
                         in the workspace: the interval never closes"
                    ))
                } else if other.iter().any(|o| o.file_idx == s.file_idx) {
                    None
                } else {
                    let connected = match s.comp {
                        None => true,
                        Some(c) => other.iter().any(|o| o.comp.is_none() || o.comp == Some(c)),
                    };
                    (!connected).then(|| {
                        format!(
                            "span {kind_have} {name:?}: every matching {kind_other} \
                             lives in a file with no call-graph connection to this \
                             one — likely a renamed or dead span"
                        )
                    })
                };
                if let Some(message) = bad {
                    out.push(Violation {
                        rule: "R3v2",
                        file: s.file.clone(),
                        line: s.line,
                        message,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R6 — VLock acquisition-order discipline
// ---------------------------------------------------------------------

/// The deadlock-freedom argument for `Sharded(n)` (PR 8) rests on two
/// properties R6 checks statically: within a function, a lock class
/// acquired more than once or in a loop must be taken in provably
/// ascending index order (literals in order, a `..` range, or iteration
/// of a sorted container); across the system, the class-order relation
/// "holds A while acquiring B" — propagated over the call graph — must
/// be acyclic.
const VLOCK_IMPL_FILE: &str = "crates/simnet/src/vlock.rs";

#[derive(Clone)]
enum Idx {
    /// Unindexed receiver (a single named lock).
    Whole,
    /// Literal index.
    Literal(i64),
    /// A `for` binding variable; provable when the iterated expression
    /// is a range or a sorted container.
    Loop { provable: bool, desc: String },
    /// The receiver *is* the element of a whole-container iteration —
    /// acquisition order is the container order, consistent by
    /// construction.
    Elem,
    /// Anything else — unprovable under an ordering obligation.
    Opaque(String),
}

struct Acq {
    file: String,
    line: u32,
    tok: usize,
    fn_id: usize,
    class: String,
    idx: Idx,
    in_loop: bool,
}

/// Resolves the type text of the container a `for` loop iterates.
fn iter_type(g: &CallGraph, caller: usize, iter: &str) -> Option<String> {
    let it = iter.trim_start_matches(['&', '*', '(', ' ']);
    if let Some(rest) = it.strip_prefix("self.") {
        let field: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let t = g.fns[caller].impl_type.clone()?;
        return g.fields.get(&(t, field)).cloned();
    }
    let head: String = it
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    g.locals[caller].get(&head).cloned()
}

fn iter_provably_ascending(g: &CallGraph, caller: usize, iter: &str) -> bool {
    if iter.contains("..") || iter.contains("BTreeSet") || iter.contains("BTreeMap") {
        return true;
    }
    iter_type(g, caller, iter).is_some_and(|t| t.contains("BTreeSet") || t.contains("BTreeMap"))
}

/// Types the receiver of a `.lock(…)` call; `Some` only when the
/// receiver provably is a VLock (by field / local / return type text).
fn vlock_acq(v: &FileView, g: &CallGraph, c: &crate::graph::CallSite) -> Option<(String, Idx)> {
    if c.tok < 2 || !v.punct(c.tok - 1, '.') {
        return None;
    }
    let recv_end = c.tok - 2;
    let (idx_text, base_end) = if v.punct(recv_end, ']') {
        let open = v.match_back(recv_end, '[', ']')?;
        (Some(v.text(open + 1, recv_end)), open.checked_sub(1)?)
    } else {
        (None, recv_end)
    };
    let caller = c.caller;
    let (ty, class) = if v.punct(base_end, ')') {
        // Call-result receiver: type from the (uniquely) resolved callee.
        let open = v.match_back(base_end, '(', ')')?;
        let name_tok = open.checked_sub(1)?;
        let cs = g.calls_by_fn[caller]
            .iter()
            .map(|&k| &g.calls[k])
            .find(|cs| cs.tok == name_tok)?;
        if cs.resolved.len() != 1 {
            return None;
        }
        let callee = &g.fns[cs.resolved[0]];
        (callee.ret.clone(), format!("{}()", callee.qualified()))
    } else {
        let id = v.any_ident(base_end)?;
        if id == "self" {
            return None;
        }
        if base_end >= 2 && v.punct(base_end - 1, '.') && v.ident(base_end - 2, "self") {
            let t = g.fns[caller].impl_type.clone()?;
            let ty = g.fields.get(&(t.clone(), id.to_string()))?.clone();
            (ty, format!("{t}::{id}"))
        } else if base_end == 0 || !v.punct(base_end - 1, '.') {
            if let Some(ty) = g.locals[caller].get(id) {
                (ty.clone(), format!("{}::{id}", g.fns[caller].qualified()))
            } else if idx_text.is_none() {
                // Possibly the element of a whole-container loop.
                let fb = g.fors[caller]
                    .iter()
                    .find(|fb| fb.var == id && fb.body_open < c.tok && c.tok < fb.body_close)?;
                let ty = iter_type(g, caller, &fb.iter)?;
                if !ty.contains("VLock") {
                    return None;
                }
                let class = format!("{}::elems({})", g.fns[caller].qualified(), fb.iter);
                return Some((class, Idx::Elem));
            } else {
                return None;
            }
        } else {
            // Deeper chains (`a.b.c.lock()`) are not typed — conservative.
            return None;
        }
    };
    if !ty.contains("VLock") {
        return None;
    }
    let idx = match idx_text {
        None => Idx::Whole,
        Some(t) => {
            let tt = t.trim().trim_start_matches(['*', '&', ' ']).to_string();
            if let Ok(n) = tt.parse::<i64>() {
                Idx::Literal(n)
            } else if let Some(fb) = g.fors[caller]
                .iter()
                .find(|fb| fb.var == tt && fb.body_open < c.tok && c.tok < fb.body_close)
            {
                Idx::Loop {
                    provable: iter_provably_ascending(g, caller, &fb.iter),
                    desc: tt,
                }
            } else {
                Idx::Opaque(tt)
            }
        }
    };
    Some((class, idx))
}

fn r6(files: &[(String, Lexed)], g: &CallGraph, out: &mut Vec<Violation>, stats: &mut InterStats) {
    let mut acqs: Vec<Acq> = Vec::new();
    for c in &g.calls {
        if c.name != "lock" || !matches!(c.kind, CallKind::Method { .. }) {
            continue;
        }
        let f = &g.fns[c.caller];
        if f.is_test || f.file == VLOCK_IMPL_FILE || rules::is_test_path(&f.file) {
            continue;
        }
        let v = view(files, f.file_idx);
        let Some((class, idx)) = vlock_acq(&v, g, c) else {
            continue;
        };
        let in_loop = matches!(idx, Idx::Elem)
            || g.fors[c.caller]
                .iter()
                .any(|fb| fb.body_open < c.tok && c.tok < fb.body_close);
        acqs.push(Acq {
            file: f.file.clone(),
            line: c.line,
            tok: c.tok,
            fn_id: c.caller,
            class,
            idx,
            in_loop,
        });
    }

    // Intra-function ordering obligations: same class acquired twice,
    // or acquired inside a loop.
    let mut by_fn_class: BTreeMap<(usize, String), Vec<usize>> = BTreeMap::new();
    for (i, a) in acqs.iter().enumerate() {
        by_fn_class
            .entry((a.fn_id, a.class.clone()))
            .or_default()
            .push(i);
    }
    let mut provable = vec![true; acqs.len()];
    for ((_fn_id, class), group) in &by_fn_class {
        let mut group = group.clone();
        group.sort_by_key(|&i| acqs[i].tok);
        let obligated = group.len() >= 2 || group.iter().any(|&i| acqs[i].in_loop);
        if !obligated {
            continue;
        }
        let mut max_lit: Option<i64> = None;
        for &i in &group {
            let a = &acqs[i];
            match &a.idx {
                Idx::Literal(n) => {
                    if let Some(m) = max_lit {
                        if *n < m {
                            provable[i] = false;
                            out.push(Violation {
                                rule: "R6",
                                file: a.file.clone(),
                                line: a.line,
                                message: format!(
                                    "VLock {class} acquired at literal index {n} after \
                                     index {m}: multi-acquisition must be ascending"
                                ),
                            });
                        }
                    }
                    max_lit = Some(max_lit.map_or(*n, |m| m.max(*n)));
                }
                Idx::Whole | Idx::Elem => {}
                Idx::Loop { provable: p, desc } => {
                    if !*p {
                        provable[i] = false;
                        out.push(Violation {
                            rule: "R6",
                            file: a.file.clone(),
                            line: a.line,
                            message: format!(
                                "VLock {class} acquired at loop index `{desc}` over a \
                                 container with no provable ascending order: iterate a \
                                 range or a BTreeSet/BTreeMap instead"
                            ),
                        });
                    }
                }
                Idx::Opaque(t) => {
                    provable[i] = false;
                    out.push(Violation {
                        rule: "R6",
                        file: a.file.clone(),
                        line: a.line,
                        message: format!(
                            "VLock {class} acquired at index `{t}` which is not \
                             provably ascending while this function acquires the \
                             class more than once or in a loop"
                        ),
                    });
                }
            }
        }
    }
    stats.r6_acquisitions = acqs
        .iter()
        .enumerate()
        .map(|(i, a)| (a.file.clone(), a.line, provable[i]))
        .collect();

    // Cross-function class-order cycles: class A is "held into" class B
    // when a function acquires A and later (in token order) acquires B
    // directly or calls into a function that transitively acquires B.
    let mut trans: Vec<BTreeSet<String>> = vec![BTreeSet::new(); g.fns.len()];
    for a in &acqs {
        trans[a.fn_id].insert(a.class.clone());
    }
    loop {
        let mut changed = false;
        for c in &g.calls {
            for &k in &c.resolved {
                if k == c.caller {
                    continue;
                }
                let add: Vec<String> = trans[k]
                    .iter()
                    .filter(|x| !trans[c.caller].contains(*x))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    trans[c.caller].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for a in &acqs {
        for b in &acqs {
            if a.fn_id == b.fn_id && b.tok > a.tok && b.class != a.class {
                edges
                    .entry((a.class.clone(), b.class.clone()))
                    .or_insert((b.file.clone(), b.line));
            }
        }
        for &ci in &g.calls_by_fn[a.fn_id] {
            let c = &g.calls[ci];
            if c.tok <= a.tok {
                continue;
            }
            for &k in &c.resolved {
                for bclass in &trans[k] {
                    if *bclass != a.class {
                        edges
                            .entry((a.class.clone(), bclass.clone()))
                            .or_insert((a.file.clone(), c.line));
                    }
                }
            }
        }
    }
    // A cycle exists iff some edge (u, v) has a path v ->* u back.
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (u, v) in edges.keys() {
        adj.entry(u).or_default().push(v);
    }
    let path_between = |from: &String, to: &String| -> Option<Vec<String>> {
        let mut prev: BTreeMap<&String, &String> = BTreeMap::new();
        let mut queue = vec![from];
        let mut seen: BTreeSet<&String> = [from].into();
        while let Some(n) = queue.pop() {
            if n == to {
                let mut path = vec![to.clone()];
                let mut cur = to;
                while let Some(&p) = prev.get(cur) {
                    path.push(p.clone());
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &m in adj.get(n).into_iter().flatten() {
                if seen.insert(m) {
                    prev.insert(m, n);
                    queue.push(m);
                }
            }
        }
        None
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((u, v), (pf, pl)) in &edges {
        let Some(path) = path_between(v, u) else {
            continue;
        };
        let mut cycle = vec![u.clone()];
        cycle.extend(path);
        let mut key = cycle.clone();
        key.sort();
        key.dedup();
        if reported.insert(key) {
            out.push(Violation {
                rule: "R6",
                file: pf.clone(),
                line: *pl,
                message: format!(
                    "VLock acquisition-order cycle: {} — lock classes must form a \
                     global DAG or two requests can deadlock",
                    cycle.join(" -> ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R7 — MR retention lifecycle
// ---------------------------------------------------------------------

/// The static half of the PR 6 pin-down fix: a `register` /
/// `register_with` / `register_memory` result that is *retained*
/// (stored into a container) must have a release path — a
/// `remove`/`retain`/`clear`/… on the same container, or a
/// `dereg*`/`invalidate*` call — in the same file or a
/// call-graph-connected one. Registrations that stay local (struct
/// fields, scratch buffers, RAII wrappers) carry no obligation: their
/// MR drops with the owner. That is a deliberate false-negative
/// direction; the rule exists to catch *unbounded growth* of MR tables.
const RETAIN_METHODS: [&str; 5] = ["insert", "entry", "or_insert_with", "or_insert", "push"];
const RELEASE_METHODS: [&str; 7] = [
    "remove", "retain", "clear", "pop", "drain", "take", "truncate",
];
const REGISTER_PRIMS: [&str; 3] = ["register", "register_with", "register_memory"];

/// Base container identifier of a method chain: for
/// `self.recv_bufs.borrow_mut().insert(...)` with `name_tok` at
/// `insert`, returns `recv_bufs` (the leftmost non-`self` identifier).
fn chain_base(v: &FileView, name_tok: usize) -> Option<String> {
    if name_tok == 0 || !v.punct(name_tok - 1, '.') {
        return None;
    }
    let mut base: Option<String> = None;
    let mut j = name_tok as isize - 2;
    while j >= 0 {
        let ju = j as usize;
        if v.punct(ju, ')') {
            j = v.match_back(ju, '(', ')')? as isize - 1;
            continue;
        }
        if v.punct(ju, ']') {
            j = v.match_back(ju, '[', ']')? as isize - 1;
            continue;
        }
        if let Some(id) = v.any_ident(ju) {
            if id != "self" && id != "await" {
                base = Some(id.to_string());
            }
            if ju >= 1 && v.punct(ju - 1, '.') {
                j = ju as isize - 2;
                continue;
            }
        }
        break;
    }
    base
}

/// Walks outward from `tok` through enclosing unbalanced delimiters
/// (bounded by the fn body) looking for a retention-method call whose
/// argument list contains `tok`; returns the method-name token.
fn enclosing_retention(v: &FileView, body_open: usize, tok: usize) -> Option<usize> {
    let mut j = tok as isize - 1;
    let lo = body_open as isize;
    while j > lo {
        let ju = j as usize;
        if v.punct(ju, ')') {
            j = v.match_back(ju, '(', ')')? as isize - 1;
            continue;
        }
        if v.punct(ju, ']') {
            j = v.match_back(ju, '[', ']')? as isize - 1;
            continue;
        }
        if v.punct(ju, '}') {
            j = v.match_back(ju, '{', '}')? as isize - 1;
            continue;
        }
        if v.punct(ju, '(') && ju >= 1 {
            if let Some(name) = v.any_ident(ju - 1) {
                if RETAIN_METHODS.contains(&name) {
                    return Some(ju - 1);
                }
            }
        }
        j -= 1;
    }
    None
}

/// If the expression containing `tok` is the initializer of a
/// `let <name> = …` binding (statement-local, balanced-delimiter
/// aware), returns the bound name.
fn let_bound_name(v: &FileView, body_open: usize, tok: usize) -> Option<String> {
    let opchars = ['=', '<', '>', '+', '-', '*', '/', '%', '^', '&', '|', '!'];
    let mut j = tok as isize - 1;
    let lo = body_open as isize;
    while j > lo {
        let ju = j as usize;
        if v.punct(ju, ')') {
            j = v.match_back(ju, '(', ')')? as isize - 1;
            continue;
        }
        if v.punct(ju, ']') {
            j = v.match_back(ju, '[', ']')? as isize - 1;
            continue;
        }
        if v.punct(ju, '}') {
            j = v.match_back(ju, '{', '}')? as isize - 1;
            continue;
        }
        if v.punct(ju, ';') {
            return None;
        }
        if v.punct(ju, '=')
            && !opchars.iter().any(|&c| v.punct(ju + 1, c))
            && !(ju >= 1 && opchars.iter().any(|&c| v.punct(ju - 1, c)))
        {
            // Found the binding's `=`; scan left for `let <name>`.
            let mut k = j - 1;
            while k >= lo {
                let ku = k as usize;
                if v.punct(ku, ';') {
                    return None;
                }
                if v.punct(ku, ')') {
                    k = v.match_back(ku, '(', ')')? as isize - 1;
                    continue;
                }
                if v.ident(ku, "let") {
                    let mut nt = ku + 1;
                    if v.ident(nt, "mut") {
                        nt += 1;
                    }
                    return v.any_ident(nt).map(|s| s.to_string());
                }
                k -= 1;
            }
            return None;
        }
        j -= 1;
    }
    None
}

fn r7(files: &[(String, Lexed)], g: &CallGraph, out: &mut Vec<Violation>, stats: &mut InterStats) {
    let comp = components(g);
    // Release sites: (file_idx, component, container); wildcard dereg /
    // invalidate calls: (file_idx, component).
    let mut releases: Vec<(usize, usize, String)> = Vec::new();
    let mut wildcards: Vec<(usize, usize)> = Vec::new();
    for c in &g.calls {
        let f = &g.fns[c.caller];
        if f.is_test || rules::is_test_path(&f.file) {
            continue;
        }
        if RELEASE_METHODS.contains(&c.name.as_str()) {
            let v = view(files, f.file_idx);
            if let Some(base) = chain_base(&v, c.tok) {
                releases.push((f.file_idx, comp[c.caller], base));
            }
        } else if c.name.starts_with("invalidate") || c.name.starts_with("dereg") {
            wildcards.push((f.file_idx, comp[c.caller]));
        }
    }
    for c in &g.calls {
        if !REGISTER_PRIMS.contains(&c.name.as_str()) {
            continue;
        }
        let f = &g.fns[c.caller];
        if f.is_test || rules::is_test_path(&f.file) || f.file.starts_with("crates/verbs/") {
            continue;
        }
        let Some((body_open, body_close)) = f.body else {
            continue;
        };
        let v = view(files, f.file_idx);
        // Retention: directly as a retention-call argument, or
        // let-bound and later fed to one.
        let container = if let Some(mt) = enclosing_retention(&v, body_open, c.tok) {
            chain_base(&v, mt)
        } else if let Some(name) = let_bound_name(&v, body_open, c.tok) {
            let mut found = None;
            for k in (c.tok + 1)..body_close.min(v.toks.len()) {
                if v.ident(k, &name) {
                    if let Some(mt) = enclosing_retention(&v, body_open, k) {
                        if let Some(base) = chain_base(&v, mt) {
                            found = Some(base);
                            break;
                        }
                    }
                }
            }
            found
        } else {
            None
        };
        let Some(container) = container else { continue };
        let oc = comp[c.caller];
        let released = releases
            .iter()
            .any(|(fi, rc, base)| *base == container && (*fi == f.file_idx || *rc == oc))
            || wildcards
                .iter()
                .any(|&(fi, rc)| fi == f.file_idx || rc == oc);
        stats
            .r7_obligations
            .push((f.file.clone(), container.clone(), released));
        if !released {
            out.push(Violation {
                rule: "R7",
                file: f.file.clone(),
                line: c.line,
                message: format!(
                    "MR registered and retained in `{container}` with no release \
                     path (remove/retain/clear/… on `{container}`, or a \
                     dereg*/invalidate* call) in this file or any call-graph-\
                     connected file: pinned memory grows without bound"
                ),
            });
        }
    }
}
