//! Report, baseline, and manifest serialization.
//!
//! Everything here is hand-rolled (the container is offline; the lint
//! crate follows the `shims/` precedent of zero external deps): a JSON
//! string escaper, deterministic writers for the violation report /
//! baseline / metric manifest, and a restricted JSON parser that reads
//! exactly the shape the baseline writer emits
//! (`{ "R4": { "path": 6, … }, … }`).

use std::collections::BTreeMap;

use crate::rules::{MetricSite, Violation};

/// Baseline: rule id → file → grandfathered violation count.
pub type Baseline = BTreeMap<String, BTreeMap<String, u64>>;

/// JSON string escape (control chars, quote, backslash).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Groups violations into baseline shape: rule → file → count.
pub fn count_by_rule_file(violations: &[Violation]) -> Baseline {
    let mut out: Baseline = BTreeMap::new();
    for v in violations {
        *out.entry(v.rule.to_string())
            .or_default()
            .entry(v.file.clone())
            .or_insert(0) += 1;
    }
    out
}

/// Serializes a baseline, sorted, one file per line — diff-friendly so
/// the CI "baseline only shrinks" assertion reads cleanly.
pub fn write_baseline(b: &Baseline) -> String {
    let mut out = String::from("{\n");
    let rules: Vec<_> = b.iter().filter(|(_, files)| !files.is_empty()).collect();
    for (ri, (rule, files)) in rules.iter().enumerate() {
        out.push_str(&format!("  \"{}\": {{\n", esc(rule)));
        for (fi, (file, n)) in files.iter().enumerate() {
            let comma = if fi + 1 < files.len() { "," } else { "" };
            out.push_str(&format!("    \"{}\": {}{}\n", esc(file), n, comma));
        }
        let comma = if ri + 1 < rules.len() { "," } else { "" };
        out.push_str(&format!("  }}{}\n", comma));
    }
    out.push_str("}\n");
    out
}

/// Parses the baseline shape (object of objects of non-negative
/// integers). Restricted on purpose: anything else in the file is a
/// hand-edit error worth failing loudly on.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    let out = p.outer()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.pos,
                self.bytes.get(self.pos).map(|&b| b as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?}",
                                other.map(|&b| b as char)
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a count at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad count at byte {start}"))
    }

    fn inner(&mut self) -> Result<BTreeMap<String, u64>, String> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            out.insert(key, self.number()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn outer(&mut self) -> Result<Baseline, String> {
        self.eat(b'{')?;
        let mut out = Baseline::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            out.insert(key, self.inner()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// Serializes the metric manifest: every registration pattern with its
/// kind and owning layer, deduplicated on (name, kind), sorted. The
/// committed copy at `results/metric_manifest.json` must byte-match
/// this output (`rmc-lint --check` enforces it).
pub fn write_manifest(sites: &[MetricSite]) -> String {
    // (pattern, kind) → (layer, first file declaring it).
    let mut dedup: BTreeMap<(String, &'static str), (String, String)> = BTreeMap::new();
    let mut sorted: Vec<&MetricSite> = sites.iter().collect();
    sorted.sort();
    for s in sorted {
        dedup
            .entry((s.pattern.clone(), s.kind))
            .or_insert_with(|| (s.layer.clone(), s.file.clone()));
    }
    let mut out = String::from("{\n  \"version\": 1,\n  \"metrics\": [\n");
    let n = dedup.len();
    for (i, ((name, kind), (layer, file))) in dedup.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"kind\": \"{}\", \"layer\": \"{}\", \"file\": \"{}\" }}{}\n",
            esc(name),
            kind,
            esc(layer),
            esc(file),
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes the machine-readable violation report (`--json`).
pub fn write_report(
    files_scanned: usize,
    violations: &[Violation],
    waived: usize,
    baseline: &Baseline,
    elapsed_ms: u64,
) -> String {
    let counts = count_by_rule_file(violations);
    let mut unbaselined = 0u64;
    for (rule, files) in &counts {
        for (file, n) in files {
            let grandfathered = baseline
                .get(rule)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0);
            unbaselined += n.saturating_sub(grandfathered);
        }
    }
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"summary\": {{ \"files\": {}, \"violations\": {}, \"waived\": {}, \"unbaselined\": {}, \"elapsed_ms\": {} }},\n",
        files_scanned,
        violations.len(),
        waived,
        unbaselined,
        elapsed_ms
    ));
    out.push_str("  \"violations\": [\n");
    for (i, v) in violations.iter().enumerate() {
        let grandfathered = baseline
            .get(v.rule)
            .and_then(|f| f.get(&v.file))
            .copied()
            .unwrap_or(0);
        let found = counts
            .get(v.rule)
            .and_then(|f| f.get(&v.file))
            .copied()
            .unwrap_or(0);
        let baselined = found <= grandfathered;
        let comma = if i + 1 < violations.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"baselined\": {}, \"message\": \"{}\" }}{}\n",
            v.rule,
            esc(&v.file),
            v.line,
            baselined,
            esc(&v.message),
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let mut b = Baseline::new();
        b.entry("R4".to_string())
            .or_default()
            .insert("crates/core/src/client.rs".to_string(), 6);
        b.entry("R4".to_string())
            .or_default()
            .insert("crates/verbs/src/qp.rs".to_string(), 2);
        b.entry("R1".to_string())
            .or_default()
            .insert("src/x.rs".to_string(), 1);
        let text = write_baseline(&b);
        assert_eq!(parse_baseline(&text).unwrap(), b);
    }

    #[test]
    fn baseline_parser_rejects_junk() {
        assert!(parse_baseline("[]").is_err());
        assert!(parse_baseline("{\"R4\": {\"f\": -1}}").is_err());
        assert!(parse_baseline("{\"R4\": {\"f\": 1}} extra").is_err());
        assert!(parse_baseline("{\"R4\": 3}").is_err());
        assert!(parse_baseline("{}").unwrap().is_empty());
        assert!(parse_baseline("{\"R1\": {}}").unwrap()["R1"].is_empty());
    }

    #[test]
    fn empty_rule_groups_are_not_written() {
        let mut b = Baseline::new();
        b.entry("R5".to_string()).or_default();
        assert_eq!(write_baseline(&b), "{\n}\n");
    }

    #[test]
    fn manifest_dedups_and_sorts() {
        let site = |pattern: &str, kind: &'static str, layer: &str, file: &str| MetricSite {
            pattern: pattern.to_string(),
            kind,
            layer: layer.to_string(),
            file: file.to_string(),
            line: 1,
        };
        let sites = vec![
            site(
                "mc.node*.wakes",
                "counter",
                "mc",
                "crates/core/src/server.rs",
            ),
            site("bench.tps", "counter", "bench", "crates/bench/src/lib.rs"),
            site(
                "mc.node*.wakes",
                "counter",
                "mc",
                "crates/core/src/server.rs",
            ),
        ];
        let text = write_manifest(&sites);
        assert_eq!(text.matches("mc.node*.wakes").count(), 1);
        assert!(text.find("bench.tps").unwrap() < text.find("mc.node*.wakes").unwrap());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
