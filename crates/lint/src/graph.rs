//! Phase 1 of the workspace analyzer: a symbol table and a conservative
//! name-resolution call graph over the lexed sources.
//!
//! Built on the same hand-rolled token stream as the per-file rules (no
//! external dependencies, no rustc): pass A recognizes items — `fn`
//! definitions with their impl/trait owner and body extent, `struct`
//! fields with their type text — pass B collects `let` type annotations
//! and `for` bindings, and pass C walks every non-test function body
//! extracting call sites.
//!
//! **Resolution is conservative by construction.** A call edge is added
//! only when the callee is unambiguous:
//!
//! * method calls resolve through a receiver-type hint when one is
//!   cheaply available (`self.…` → the enclosing impl, `self.field.…` →
//!   the field's declared type, `x.…` → `x`'s `let` annotation, a call
//!   result → the callee's written return type), otherwise by name when
//!   exactly one non-test method in the workspace bears the name;
//! * free and path calls prefer same-file candidates, then module-
//!   qualified matches;
//! * anything still ambiguous (or external: `std`, shims) is recorded in
//!   [`CallGraph::unresolved`] **rather than guessed** — downstream
//!   analyses treat an unresolved edge as "no information", which for
//!   taint-style rules means a possible false negative, never a false
//!   positive.
//!
//! The soundness caveats of lexical name resolution are documented in
//! DESIGN.md §16; every interprocedural rule (R1v2/R3v2/R6/R7) states
//! which direction it errs in.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, TokKind, Token};

/// One function (or method) definition.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Index of the defining file in the analyzed file list.
    pub file_idx: usize,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Module path derived from the file layout (`core::server`).
    pub module: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[open_brace, close_brace]` of the body, if present
    /// (trait method declarations have none).
    pub body: Option<(usize, usize)>,
    /// Written return type, token texts concatenated (`""` when none).
    pub ret: String,
    /// True for functions inside `#[cfg(test)]`/`mod tests` regions.
    pub is_test: bool,
}

impl FnInfo {
    /// `module::Type::name` (or `module::name`) — the display identity.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}::{}", self.module, t, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// How a call site was written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(…)`; the hint is the receiver type when derivable.
    Method { recv_hint: Option<String> },
    /// `Qual::name(…)`; the qualifier is the segment before the name.
    Path { qualifier: String },
    /// `name(…)`.
    Free,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Calling function (index into [`CallGraph::fns`]).
    pub caller: usize,
    /// Callee name (last path segment).
    pub name: String,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
    /// Resolved callee fn ids — empty when unresolved.
    pub resolved: Vec<usize>,
    /// Spelling of the call.
    pub kind: CallKind,
}

/// A `for <var> in <iter> {` binding inside a function body, kept for
/// the R6 ascending-order analysis.
#[derive(Clone, Debug)]
pub struct ForBinding {
    /// Loop variable name.
    pub var: String,
    /// Iterated expression, token texts concatenated.
    pub iter: String,
    /// Token index of the `for` keyword.
    pub tok: usize,
    /// Token index of the loop body's `{`.
    pub body_open: usize,
    /// Token index of the loop body's `}`.
    pub body_close: usize,
}

/// The workspace call graph plus the symbol tables phase 2 reads.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function found in non-test files (test-region fns flagged).
    pub fns: Vec<FnInfo>,
    /// Call sites in source order.
    pub calls: Vec<CallSite>,
    /// Per-fn indices into [`Self::calls`].
    pub calls_by_fn: Vec<Vec<usize>>,
    /// Struct field types: `(type name, field name)` → type text.
    pub fields: BTreeMap<(String, String), String>,
    /// Per-fn `let`-annotated local types: name → type text.
    pub locals: Vec<BTreeMap<String, String>>,
    /// Per-fn `for` bindings in source order.
    pub fors: Vec<Vec<ForBinding>>,
    /// Callee names that could not be resolved (external or ambiguous)
    /// → occurrence count. Recorded, never guessed at.
    pub unresolved: BTreeMap<String, u32>,
    /// Count of call sites with ≥ 2 in-workspace candidates (a subset
    /// of the unresolved total).
    pub ambiguous: usize,
}

impl CallGraph {
    /// The innermost fn whose body covers token `tok` of file
    /// `file_idx`, if any.
    pub fn fn_at(&self, file_idx: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.file_idx == file_idx && f.body.is_some_and(|(a, b)| tok >= a && tok <= b)
            })
            .min_by_key(|(_, f)| {
                let (a, b) = f.body.unwrap_or((0, usize::MAX));
                b - a
            })
            .map(|(id, _)| id)
    }
}

/// Derives a module path from a workspace-relative file path:
/// `crates/core/src/server.rs` → `core::server`, `src/lib.rs` → `rmc`.
pub fn module_path(rel: &str) -> String {
    let stripped = rel.strip_suffix(".rs").unwrap_or(rel);
    let mut parts: Vec<&str> = stripped.split('/').collect();
    if parts.first() == Some(&"crates") {
        parts.remove(0);
    } else {
        parts.insert(0, "rmc");
    }
    parts.retain(|p| *p != "src");
    while matches!(parts.last(), Some(&"lib") | Some(&"main")) {
        parts.pop();
    }
    parts.join("::").replace('-', "_")
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 24] = [
    "if", "while", "for", "match", "loop", "return", "fn", "in", "as", "impl", "use", "mod", "let",
    "else", "move", "ref", "mut", "pub", "unsafe", "where", "async", "await", "break", "continue",
];

/// Methods that forward to their receiver for typing purposes: the
/// receiver hint looks *through* them (`self.cache.borrow_mut().insert`
/// is an operation on `cache`).
pub const TRANSPARENT_METHODS: [&str; 10] = [
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "get_mut",
    "clone",
    "unwrap",
];

pub(crate) struct FileView<'a> {
    pub toks: &'a [Token],
}

impl<'a> FileView<'a> {
    pub fn punct(&self, i: usize, c: char) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
    }

    pub fn ident(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    pub fn any_ident(&self, i: usize) -> Option<&'a str> {
        self.toks
            .get(i)
            .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    }

    pub fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Index of the brace matching the `{` at `open`.
    pub fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.toks.len() {
            if self.punct(j, '{') {
                depth += 1;
            } else if self.punct(j, '}') {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// Index of the opener matching the closer at `close`, walking
    /// backwards.
    pub fn match_back(&self, close: usize, open_c: char, close_c: char) -> Option<usize> {
        let mut depth = 0usize;
        let mut j = close;
        loop {
            if self.punct(j, close_c) {
                depth += 1;
            } else if self.punct(j, open_c) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
    }

    /// Concatenated token texts over `[a, b)` — type-text rendering.
    pub fn text(&self, a: usize, b: usize) -> String {
        let mut out = String::new();
        for t in &self.toks[a.min(self.toks.len())..b.min(self.toks.len())] {
            out.push_str(&t.text);
        }
        out
    }
}

/// Last path-segment identifier of a type expression starting at `a`
/// (bounded by `b`): skips `&`/`dyn`/`mut`/lifetimes, follows `::`
/// segments, stops at `<`.
fn leading_type_name(v: &FileView, mut a: usize, b: usize) -> Option<String> {
    let mut last: Option<String> = None;
    while a < b {
        if v.punct(a, '&') {
            a += 1;
            continue;
        }
        if let Some(t) = v.toks.get(a) {
            if t.kind == TokKind::Life {
                a += 1;
                continue;
            }
        }
        if v.ident(a, "dyn") || v.ident(a, "mut") || v.ident(a, "impl") {
            a += 1;
            continue;
        }
        match v.any_ident(a) {
            Some(id) => {
                last = Some(id.to_string());
                a += 1;
                if v.punct(a, ':') && v.punct(a + 1, ':') {
                    a += 2;
                    continue;
                }
                break;
            }
            None => break,
        }
    }
    last
}

/// Skips a balanced `<…>` generic group whose `<` sits at `i`; returns
/// the index just past the matching `>`. `->` arrows never unbalance
/// (the lexer splits them into `-` `>`).
fn skip_angles(v: &FileView, mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < v.toks.len() {
        if v.punct(i, '<') {
            depth += 1;
        } else if v.punct(i, '>') && !(i > 0 && v.punct(i - 1, '-')) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Builds the call graph over `(path, lexed)` pairs. Files whose path is
/// a test path are skipped entirely; `#[cfg(test)]` regions inside
/// source files yield fns flagged `is_test` that neither call out nor
/// serve as resolution candidates.
pub fn build(files: &[(String, Lexed)]) -> CallGraph {
    let mut g = CallGraph::default();

    // ---- pass A: items ------------------------------------------------
    for (file_idx, (path, lexed)) in files.iter().enumerate() {
        if crate::rules::is_test_path(path) {
            continue;
        }
        let regions = crate::lexer::test_regions(&lexed.tokens);
        let v = FileView {
            toks: &lexed.tokens,
        };
        let module = module_path(path);
        let in_test = |i: usize| regions.iter().any(|&(a, b)| i >= a && i <= b);

        // Scope stack of (close_brace_idx, impl/trait type entered).
        let mut scopes: Vec<(usize, Option<String>)> = Vec::new();
        let mut i = 0usize;
        while i < v.toks.len() {
            while let Some(&(close, _)) = scopes.last() {
                if i > close {
                    scopes.pop();
                } else {
                    break;
                }
            }
            // impl / trait blocks establish a type context.
            if v.ident(i, "impl") || v.ident(i, "trait") {
                let is_trait = v.ident(i, "trait");
                let mut j = i + 1;
                if v.punct(j, '<') {
                    j = skip_angles(&v, j);
                }
                // Header tokens up to the body `{` (or `;`).
                let mut hdr_end = j;
                let mut angle = 0i32;
                while hdr_end < v.toks.len() {
                    if v.punct(hdr_end, '<') {
                        angle += 1;
                    } else if v.punct(hdr_end, '>') && !v.punct(hdr_end.wrapping_sub(1), '-') {
                        angle -= 1;
                    } else if angle <= 0 && (v.punct(hdr_end, '{') || v.punct(hdr_end, ';')) {
                        break;
                    }
                    hdr_end += 1;
                }
                let ty = if is_trait {
                    v.any_ident(j).map(str::to_string)
                } else {
                    // `impl Trait for Type` → Type; `impl Type` → Type.
                    // (`for<'a>` higher-ranked bounds are not that `for`.)
                    let mut for_at = None;
                    let mut angle2 = 0i32;
                    for k in j..hdr_end {
                        if v.punct(k, '<') {
                            angle2 += 1;
                        } else if v.punct(k, '>') && !v.punct(k.wrapping_sub(1), '-') {
                            angle2 -= 1;
                        } else if angle2 <= 0 && v.ident(k, "for") && !v.punct(k + 1, '<') {
                            for_at = Some(k);
                        }
                    }
                    let ty_start = for_at.map(|k| k + 1).unwrap_or(j);
                    leading_type_name(&v, ty_start, hdr_end)
                };
                if v.punct(hdr_end, '{') {
                    scopes.push((v.match_brace(hdr_end), ty));
                }
                i = hdr_end + 1;
                continue;
            }
            // struct fields → the field-type table.
            if v.ident(i, "struct") {
                if let Some(name) = v.any_ident(i + 1) {
                    let mut j = i + 2;
                    if v.punct(j, '<') {
                        j = skip_angles(&v, j);
                    }
                    while j < v.toks.len()
                        && !v.punct(j, '{')
                        && !v.punct(j, ';')
                        && !v.punct(j, '(')
                    {
                        j += 1;
                    }
                    if v.punct(j, '{') {
                        let close = v.match_brace(j);
                        scan_struct_fields(&v, name, j + 1, close, &mut g.fields);
                        i = close + 1;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            // fn definitions.
            if v.ident(i, "fn") {
                if let Some(name) = v.any_ident(i + 1) {
                    let (sig_end, ret) = scan_fn_signature(&v, i + 2);
                    let body = v
                        .punct(sig_end, '{')
                        .then(|| (sig_end, v.match_brace(sig_end)));
                    g.fns.push(FnInfo {
                        file_idx,
                        file: path.clone(),
                        module: module.clone(),
                        impl_type: scopes.last().and_then(|(_, t)| t.clone()),
                        name: name.to_string(),
                        line: v.line(i),
                        body,
                        ret,
                        is_test: in_test(i),
                    });
                    // Continue *inside* the body so nested fns are found.
                    i = sig_end + 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    g.locals = vec![BTreeMap::new(); g.fns.len()];
    g.fors = vec![Vec::new(); g.fns.len()];
    g.calls_by_fn = vec![Vec::new(); g.fns.len()];

    // Per-file token → innermost-owning-fn table (outer fns filled
    // first, nested fns overwrite): O(1) ownership lookups in the body
    // passes instead of an O(fns) scan per token.
    let mut owners: Vec<Vec<Option<usize>>> = files
        .iter()
        .map(|(_, lx)| vec![None; lx.tokens.len()])
        .collect();
    let mut by_span: Vec<usize> = (0..g.fns.len()).collect();
    by_span.sort_by_key(|&id| std::cmp::Reverse(g.fns[id].body.map(|(a, b)| b - a).unwrap_or(0)));
    for id in by_span {
        if let Some((a, b)) = g.fns[id].body {
            let slots = &mut owners[g.fns[id].file_idx];
            let hi = b.min(slots.len().saturating_sub(1)) + 1;
            for s in slots.iter_mut().take(hi).skip(a) {
                *s = Some(id);
            }
        }
    }

    // ---- pass B: locals and for-bindings ------------------------------
    for (file_idx, (path, lexed)) in files.iter().enumerate() {
        if crate::rules::is_test_path(path) {
            continue;
        }
        let v = FileView {
            toks: &lexed.tokens,
        };
        let n = v.toks.len();
        for (i, slot) in owners[file_idx].iter().enumerate() {
            let Some(owner) = *slot else {
                continue;
            };
            if g.fns[owner].is_test {
                continue;
            }
            if v.ident(i, "let") {
                let mut j = i + 1;
                if v.ident(j, "mut") {
                    j += 1;
                }
                if let Some(name) = v.any_ident(j) {
                    if v.punct(j + 1, ':') && !v.punct(j + 2, ':') {
                        let end = scan_type_until(&v, j + 2, &['=', ';']);
                        g.locals[owner].insert(name.to_string(), v.text(j + 2, end));
                    }
                }
            }
            if v.ident(i, "for") && !v.punct(i + 1, '<') {
                let mut j = i + 1;
                while j < n && !v.punct(j, '{') && !v.ident(j, "in") {
                    j += 1;
                }
                if v.ident(j, "in") {
                    let var = (i + 1..j)
                        .filter_map(|k| v.any_ident(k))
                        .find(|s| *s != "mut")
                        .unwrap_or("")
                        .to_string();
                    let mut t = j + 1;
                    let mut depth = 0i32;
                    while t < n {
                        if v.punct(t, '(') || v.punct(t, '[') {
                            depth += 1;
                        } else if v.punct(t, ')') || v.punct(t, ']') {
                            depth -= 1;
                        } else if depth == 0 && v.punct(t, '{') {
                            break;
                        }
                        t += 1;
                    }
                    if !var.is_empty() && v.punct(t, '{') {
                        g.fors[owner].push(ForBinding {
                            var,
                            iter: v.text(j + 1, t),
                            tok: i,
                            body_open: t,
                            body_close: v.match_brace(t),
                        });
                    }
                }
            }
        }
    }

    // ---- resolution indexes -------------------------------------------
    let mut method_index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut typed_method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut free_index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (id, f) in g.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        match &f.impl_type {
            Some(t) => {
                method_index.entry(f.name.clone()).or_default().push(id);
                typed_method
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
            None => free_index.entry(f.name.clone()).or_default().push(id),
        }
    }
    let impl_types: BTreeSet<String> = g.fns.iter().filter_map(|f| f.impl_type.clone()).collect();

    // ---- pass C: call sites -------------------------------------------
    struct PendingCall {
        caller: usize,
        name: String,
        line: u32,
        tok: usize,
        kind: CallKind,
    }
    let mut pending: Vec<PendingCall> = Vec::new();

    for (file_idx, (path, lexed)) in files.iter().enumerate() {
        if crate::rules::is_test_path(path) {
            continue;
        }
        let v = FileView {
            toks: &lexed.tokens,
        };
        for (i, slot) in owners[file_idx].iter().enumerate() {
            let Some(name) = v.any_ident(i) else { continue };
            let Some(caller) = *slot else {
                continue;
            };
            if g.fns[caller].is_test {
                continue;
            }
            // `name(` or `name::<…>(` — not a macro, not a definition.
            let callish = if v.punct(i + 1, '(') {
                true
            } else if v.punct(i + 1, ':') && v.punct(i + 2, ':') && v.punct(i + 3, '<') {
                v.punct(skip_angles(&v, i + 3), '(')
            } else {
                false
            };
            if !callish
                || (i > 0 && v.ident(i - 1, "fn"))
                || v.punct(i + 1, '!')
                || NON_CALL_KEYWORDS.contains(&name)
            {
                continue;
            }
            let kind = if i > 0 && v.punct(i - 1, '.') {
                let hint = i
                    .checked_sub(2)
                    .and_then(|r| receiver_type_text(&v, r, &g, caller, &method_index, &free_index))
                    .and_then(|text| single_impl_type_in(&text, &impl_types));
                Some(CallKind::Method { recv_hint: hint })
            } else if i >= 2 && v.punct(i - 1, ':') && v.punct(i - 2, ':') {
                v.any_ident(i - 3).map(|q| CallKind::Path {
                    qualifier: q.to_string(),
                })
            } else {
                Some(CallKind::Free)
            };
            if let Some(kind) = kind {
                pending.push(PendingCall {
                    caller,
                    name: name.to_string(),
                    line: v.line(i),
                    tok: i,
                    kind,
                });
            }
        }
    }

    // ---- resolution ----------------------------------------------------
    for pc in pending {
        let mut resolved: Vec<usize> = Vec::new();
        let mut ambiguous = false;
        match &pc.kind {
            CallKind::Method { recv_hint } => {
                if let Some(t) = recv_hint {
                    if let Some(c) = typed_method.get(&(t.clone(), pc.name.clone())) {
                        resolved = c.clone();
                    }
                }
                if resolved.is_empty() {
                    match method_index.get(&pc.name) {
                        Some(c) if c.len() == 1 => resolved = c.clone(),
                        Some(c) if c.len() > 1 => ambiguous = true,
                        _ => {}
                    }
                }
            }
            CallKind::Path { qualifier } => {
                let q: String = if qualifier == "Self" {
                    g.fns[pc.caller]
                        .impl_type
                        .clone()
                        .unwrap_or_else(|| "Self".to_string())
                } else {
                    qualifier.clone()
                };
                if let Some(c) = typed_method.get(&(q.clone(), pc.name.clone())) {
                    resolved = c.clone();
                } else if let Some(c) = free_index.get(&pc.name) {
                    let by_mod: Vec<usize> = c
                        .iter()
                        .copied()
                        .filter(|&id| g.fns[id].module.rsplit("::").next() == Some(q.as_str()))
                        .collect();
                    match by_mod.len() {
                        1 => resolved = by_mod,
                        0 => {}
                        _ => ambiguous = true,
                    }
                }
            }
            CallKind::Free => {
                if let Some(c) = free_index.get(&pc.name) {
                    let same_file: Vec<usize> = c
                        .iter()
                        .copied()
                        .filter(|&id| g.fns[id].file_idx == g.fns[pc.caller].file_idx)
                        .collect();
                    if same_file.len() == 1 {
                        resolved = same_file;
                    } else if same_file.len() > 1 || c.len() > 1 {
                        ambiguous = true;
                    } else {
                        resolved = c.clone();
                    }
                }
            }
        }
        if resolved.is_empty() {
            *g.unresolved.entry(pc.name.clone()).or_insert(0) += 1;
            if ambiguous {
                g.ambiguous += 1;
            }
        }
        let caller = pc.caller;
        g.calls.push(CallSite {
            caller,
            name: pc.name,
            line: pc.line,
            tok: pc.tok,
            resolved,
            kind: pc.kind,
        });
        g.calls_by_fn[caller].push(g.calls.len() - 1);
    }

    g
}

/// Scans struct fields in `[from, close)`: `name: Type,` rows, with
/// attributes and visibility skipped.
fn scan_struct_fields(
    v: &FileView,
    struct_name: &str,
    from: usize,
    close: usize,
    fields: &mut BTreeMap<(String, String), String>,
) {
    let mut k = from;
    while k < close {
        if v.punct(k, '#') && v.punct(k + 1, '[') {
            let mut depth = 0usize;
            k += 1;
            while k < close {
                if v.punct(k, '[') {
                    depth += 1;
                } else if v.punct(k, ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
            continue;
        }
        if v.ident(k, "pub") {
            k += 1;
            if v.punct(k, '(') {
                while k < close && !v.punct(k, ')') {
                    k += 1;
                }
                k += 1;
            }
            continue;
        }
        let (Some(field), true) = (v.any_ident(k), v.punct(k + 1, ':')) else {
            k += 1;
            continue;
        };
        let t = scan_type_until(v, k + 2, &[',']).min(close);
        fields.insert(
            (struct_name.to_string(), field.to_string()),
            v.text(k + 2, t),
        );
        k = t + 1;
    }
}

/// Scans a type expression starting at `from`; returns the index of the
/// first stop character at nesting depth 0.
fn scan_type_until(v: &FileView, from: usize, stops: &[char]) -> usize {
    let mut t = from;
    let mut depth = 0i32;
    while t < v.toks.len() {
        if v.punct(t, '<') || v.punct(t, '(') || v.punct(t, '[') {
            depth += 1;
        } else if v.punct(t, ')')
            || v.punct(t, ']')
            || (v.punct(t, '>') && !v.punct(t.wrapping_sub(1), '-'))
        {
            depth -= 1;
        } else if depth <= 0
            && (stops.iter().any(|&c| v.punct(t, c)) || v.punct(t, '{') || v.punct(t, '}'))
        {
            break;
        }
        t += 1;
    }
    t
}

/// Scans an fn signature starting just past the name; returns the index
/// of the body `{` (or terminating `;`) and the written return type.
fn scan_fn_signature(v: &FileView, from: usize) -> (usize, String) {
    let mut j = from;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut ret_start = None;
    while j < v.toks.len() {
        if v.punct(j, '(') {
            paren += 1;
        } else if v.punct(j, ')') {
            paren -= 1;
        } else if v.punct(j, '<') {
            angle += 1;
        } else if v.punct(j, '>') && v.punct(j.wrapping_sub(1), '-') {
            if paren == 0 && angle <= 0 && ret_start.is_none() {
                ret_start = Some(j + 1);
            }
        } else if v.punct(j, '>') {
            angle -= 1;
        } else if paren == 0 && angle <= 0 && (v.punct(j, '{') || v.punct(j, ';')) {
            break;
        }
        j += 1;
    }
    let ret = match ret_start {
        Some(r) => {
            let mut end = j;
            for k in r..j {
                if v.ident(k, "where") {
                    end = k;
                    break;
                }
            }
            v.text(r, end)
        }
        None => String::new(),
    };
    (j, ret)
}

/// Type text of the receiver expression ending at token `end`
/// (inclusive), for method-call hints: handles `self`, `self.field`,
/// annotated locals, indexed containers (`x[i]` → `x`'s type text), and
/// call results through one level of return-type lookup (with
/// [`TRANSPARENT_METHODS`] looked through).
fn receiver_type_text(
    v: &FileView,
    end: usize,
    g: &CallGraph,
    caller: usize,
    method_index: &BTreeMap<String, Vec<usize>>,
    free_index: &BTreeMap<String, Vec<usize>>,
) -> Option<String> {
    let mut j = end;
    if v.punct(j, ']') {
        j = v.match_back(j, '[', ']')?.checked_sub(1)?;
    }
    if v.punct(j, ')') {
        let open = v.match_back(j, '(', ')')?;
        let m_at = open.checked_sub(1)?;
        let m = v.any_ident(m_at)?;
        if TRANSPARENT_METHODS.contains(&m) {
            let dot = m_at.checked_sub(1)?;
            if v.punct(dot, '.') {
                return receiver_type_text(v, dot - 1, g, caller, method_index, free_index);
            }
            return None;
        }
        let mut cands: Vec<usize> = Vec::new();
        if let Some(c) = method_index.get(m) {
            cands.extend(c);
        }
        if let Some(c) = free_index.get(m) {
            cands.extend(c);
        }
        if cands.len() == 1 {
            return Some(g.fns[cands[0]].ret.clone());
        }
        return None;
    }
    type_of_simple(v, j, g, caller)
}

/// Types a *simple* expression ending at token `end` (inclusive):
/// `self` → the impl type, `self.field`/`recv.field` → the field's
/// declared type, a bare ident → its `let` annotation.
fn type_of_simple(v: &FileView, end: usize, g: &CallGraph, caller: usize) -> Option<String> {
    let f = &g.fns[caller];
    let id = v.any_ident(end)?;
    if id == "self" {
        return f.impl_type.clone();
    }
    if end >= 2 && v.punct(end - 1, '.') && v.ident(end - 2, "self") {
        if let Some(t) = f.impl_type.as_ref() {
            return g.fields.get(&(t.clone(), id.to_string())).cloned();
        }
        return None;
    }
    if end == 0 || !v.punct(end - 1, '.') {
        return g.locals[caller].get(id).cloned();
    }
    None
}

/// The single impl-type name appearing in a type text, if exactly one
/// does (word-bounded match).
fn single_impl_type_in(text: &str, impl_types: &BTreeSet<String>) -> Option<String> {
    let word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut found: Option<&str> = None;
    for t in impl_types {
        let mut start = 0usize;
        while let Some(at) = text[start..].find(t.as_str()) {
            let a = start + at;
            let b = a + t.len();
            let pre_ok = a == 0 || !word(text.as_bytes()[a - 1]);
            let post_ok = b == text.len() || !word(text.as_bytes()[b]);
            if pre_ok && post_ok {
                if found.is_some() && found != Some(t.as_str()) {
                    return None; // two distinct impl types named: ambiguous
                }
                found = Some(t.as_str());
                break;
            }
            start = b;
        }
    }
    found.map(str::to_string)
}

/// Undirected connected components over resolved call edges: returns a
/// representative id per fn (two fns share a component iff a chain of
/// caller/callee relationships connects them, in either direction).
pub fn components(g: &CallGraph) -> Vec<usize> {
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut parent: Vec<usize> = (0..g.fns.len()).collect();
    for c in &g.calls {
        for &callee in &c.resolved {
            let a = find(&mut parent, c.caller);
            let b = find(&mut parent, callee);
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    (0..g.fns.len()).map(|i| find(&mut parent, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let lexed: Vec<(String, Lexed)> =
            files.iter().map(|(p, t)| (p.to_string(), lex(t))).collect();
        build(&lexed)
    }

    #[test]
    fn module_paths_from_layout() {
        assert_eq!(module_path("crates/core/src/server.rs"), "core::server");
        assert_eq!(module_path("crates/simnet/src/lib.rs"), "simnet");
        assert_eq!(
            module_path("crates/bench/src/bin/ext_roce.rs"),
            "bench::bin::ext_roce"
        );
        assert_eq!(module_path("src/lib.rs"), "rmc");
    }

    #[test]
    fn fns_impls_and_fields_are_indexed() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            r#"
struct S { locks: Vec<Rc<VLock>>, n: usize }
impl S {
    fn a(&self) -> usize { self.b() }
    fn b(&self) -> usize { 1 }
}
impl Display for S {
    fn fmt(&self) {}
}
fn free() {}
"#,
        )]);
        let names: Vec<String> = g.fns.iter().map(|f| f.qualified()).collect();
        assert!(names.contains(&"core::x::S::a".to_string()));
        assert!(names.contains(&"core::x::S::fmt".to_string()));
        assert!(names.contains(&"core::x::free".to_string()));
        assert_eq!(
            g.fields
                .get(&("S".to_string(), "locks".to_string()))
                .unwrap(),
            "Vec<Rc<VLock>>"
        );
        // a → b resolves through the self receiver hint.
        let a = g.fns.iter().position(|f| f.name == "a").unwrap();
        let call = g.calls_by_fn[a]
            .iter()
            .map(|&c| &g.calls[c])
            .find(|c| c.name == "b")
            .unwrap();
        assert_eq!(call.resolved.len(), 1);
        assert_eq!(g.fns[call.resolved[0]].name, "b");
    }

    #[test]
    fn ambiguous_methods_are_recorded_not_guessed() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            r#"
struct A; struct B;
impl A { fn go(&self) {} }
impl B { fn go(&self) {} }
fn driver(x: &Unknown) { x.go(); }
"#,
        )]);
        let driver = g.fns.iter().position(|f| f.name == "driver").unwrap();
        let call = g.calls_by_fn[driver]
            .iter()
            .map(|&c| &g.calls[c])
            .find(|c| c.name == "go")
            .unwrap();
        assert!(call.resolved.is_empty(), "two candidates must not resolve");
        assert_eq!(g.ambiguous, 1);
        assert_eq!(g.unresolved.get("go"), Some(&1));
    }

    #[test]
    fn hinted_receiver_disambiguates() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            r#"
struct A; struct B;
struct Holder { a: Rc<A> }
impl A { fn go(&self) {} }
impl B { fn go(&self) {} }
impl Holder { fn driver(&self) { self.a.go(); } }
"#,
        )]);
        let driver = g.fns.iter().position(|f| f.name == "driver").unwrap();
        let call = g.calls_by_fn[driver]
            .iter()
            .map(|&c| &g.calls[c])
            .find(|c| c.name == "go")
            .unwrap();
        assert_eq!(call.resolved.len(), 1);
        assert_eq!(g.fns[call.resolved[0]].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn cross_file_free_calls_resolve_when_unique() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "fn helper() {}"),
            ("crates/b/src/lib.rs", "fn user() { helper(); }"),
        ]);
        let user = g.fns.iter().position(|f| f.name == "user").unwrap();
        let call = &g.calls[g.calls_by_fn[user][0]];
        assert_eq!(call.resolved.len(), 1);
        assert_eq!(g.fns[call.resolved[0]].module, "a");
    }

    #[test]
    fn same_file_free_candidates_win() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "fn run() {}"),
            ("crates/b/src/lib.rs", "fn run() {}\nfn main2() { run(); }"),
        ]);
        let m = g.fns.iter().position(|f| f.name == "main2").unwrap();
        let call = &g.calls[g.calls_by_fn[m][0]];
        assert_eq!(call.resolved.len(), 1);
        assert_eq!(g.fns[call.resolved[0]].file, "crates/b/src/lib.rs");
    }

    #[test]
    fn test_regions_do_not_pollute_resolution() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
fn live() { target(); }
fn target() {}
#[cfg(test)]
mod tests {
    fn target() {}
}
"#,
        )]);
        let live = g.fns.iter().position(|f| f.name == "live").unwrap();
        let call = &g.calls[g.calls_by_fn[live][0]];
        assert_eq!(call.resolved.len(), 1);
        assert!(!g.fns[call.resolved[0]].is_test);
    }

    #[test]
    fn for_bindings_and_locals_are_captured() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
fn f(shards: &[u32]) {
    let set: std::collections::BTreeSet<usize> = make();
    for s in set { use_it(s); }
}
fn make() -> std::collections::BTreeSet<usize> { loop {} }
fn use_it(_: usize) {}
"#,
        )]);
        let f = g.fns.iter().position(|x| x.name == "f").unwrap();
        assert!(g.locals[f].get("set").unwrap().contains("BTreeSet"));
        assert_eq!(g.fors[f].len(), 1);
        assert_eq!(g.fors[f][0].var, "s");
        assert_eq!(g.fors[f][0].iter, "set");
    }

    #[test]
    fn components_connect_through_common_callees() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "fn x() { shared(); }\nfn shared() {}",
            ),
            (
                "crates/b/src/lib.rs",
                "fn y() { shared(); }\nfn isolated() {}",
            ),
        ]);
        let comp = components(&g);
        let id = |n: &str| g.fns.iter().position(|f| f.name == n).unwrap();
        assert_eq!(comp[id("x")], comp[id("y")]);
        assert_ne!(comp[id("x")], comp[id("isolated")]);
    }

    #[test]
    fn return_type_text_is_recorded() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S { fn shard(&self) -> &Mutex<Store> { loop {} } }",
        )]);
        let f = g.fns.iter().position(|x| x.name == "shard").unwrap();
        assert_eq!(g.fns[f].ret, "&Mutex<Store>");
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn outer() { fn inner() { leaf(); } inner(); }\nfn leaf() {}",
        )]);
        let inner = g.fns.iter().position(|f| f.name == "inner").unwrap();
        let outer = g.fns.iter().position(|f| f.name == "outer").unwrap();
        let calls_of = |id: usize| -> Vec<&str> {
            g.calls_by_fn[id]
                .iter()
                .map(|&c| g.calls[c].name.as_str())
                .collect()
        };
        assert_eq!(calls_of(inner), vec!["leaf"]);
        assert_eq!(calls_of(outer), vec!["inner"]);
    }
}
