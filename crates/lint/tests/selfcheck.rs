//! The analyzer must pass on the workspace itself: running the real
//! walk in-process makes `cargo test` a lint gate too, not just the
//! dedicated CI step.

#[test]
fn workspace_is_clean_with_committed_baseline() {
    let root = rmc_lint::default_root();
    let analysis = rmc_lint::analyze_workspace(&root).expect("workspace walk");
    let text = std::fs::read_to_string(root.join("crates/lint/baseline.json"))
        .expect("crates/lint/baseline.json must be committed");
    let baseline = rmc_lint::report::parse_baseline(&text).expect("baseline parses");
    let failing = rmc_lint::failing_groups(&analysis.violations, &baseline);
    assert!(
        failing.is_empty(),
        "non-baselined lint violations (rule, file, found, baselined): {failing:?}\n\
         run `cargo run -p rmc-lint -- --list` for details"
    );
}

#[test]
fn committed_metric_manifest_is_current() {
    let root = rmc_lint::default_root();
    let analysis = rmc_lint::analyze_workspace(&root).expect("workspace walk");
    let on_disk = std::fs::read_to_string(root.join("results/metric_manifest.json"))
        .expect("results/metric_manifest.json must be committed");
    assert_eq!(
        on_disk, analysis.manifest,
        "results/metric_manifest.json is stale; \
         run `cargo run -p rmc-lint -- --write-manifest` and commit"
    );
}

#[test]
fn interprocedural_pass_sees_the_real_tree() {
    // Ground truth for the phase-2 analyses on the actual workspace.
    // If a refactor silently stops the call graph from resolving these
    // shapes, the rules would pass vacuously — this pins them.
    let root = rmc_lint::default_root();
    let analysis = rmc_lint::analyze_workspace(&root).expect("workspace walk");
    let s = &analysis.stats;

    // The call graph is substantial and mostly resolved.
    assert!(s.fns > 400, "only {} non-test fns found", s.fns);
    assert!(
        s.resolved_calls > 500,
        "only {} resolved call edges",
        s.resolved_calls
    );

    // R6: the PR 8 sharded store is the one multi-acquisition site —
    // lock_shards takes locks[0] then ascending shard indices, and both
    // acquisitions must be *provably* ascending (not merely skipped).
    let srv: Vec<_> = s
        .r6_acquisitions
        .iter()
        .filter(|(f, _, _)| f == "crates/core/src/server.rs")
        .collect();
    assert!(
        srv.len() >= 2,
        "expected the lock_shards acquisitions to be typed, got {:?}",
        s.r6_acquisitions
    );
    assert!(
        srv.iter().all(|(_, _, provable)| *provable),
        "lock_shards acquisitions no longer provably ascending: {srv:?}"
    );

    // R7: the three retained-registration sites, each with a live
    // release path (PR 6's mirror-page retire among them).
    for want in [
        ("crates/ucr/src/runtime.rs", "cache"),
        ("crates/ucr/src/runtime.rs", "recv_bufs"),
        ("crates/core/src/server.rs", "pages"),
    ] {
        assert!(
            s.r7_obligations
                .iter()
                .any(|(f, c, released)| f == want.0 && c == want.1 && *released),
            "missing released MR obligation {want:?} in {:?}",
            s.r7_obligations
        );
    }

    // The committed baseline stays empty: v2 rules hold on the real
    // tree outright, with only reasoned inline waivers.
    let text =
        std::fs::read_to_string(root.join("crates/lint/baseline.json")).expect("baseline readable");
    let baseline = rmc_lint::report::parse_baseline(&text).expect("baseline parses");
    assert!(
        baseline.is_empty(),
        "the baseline must stay empty — fix or waive with a reason instead: {baseline:?}"
    );
}

#[test]
fn committed_baseline_is_not_stale() {
    // The ratchet: every baselined count must still be *reached* —
    // fixing violations without shrinking the baseline leaves slack a
    // future regression could hide in.
    let root = rmc_lint::default_root();
    let analysis = rmc_lint::analyze_workspace(&root).expect("workspace walk");
    let text =
        std::fs::read_to_string(root.join("crates/lint/baseline.json")).expect("baseline readable");
    let baseline = rmc_lint::report::parse_baseline(&text).expect("baseline parses");
    let counts = rmc_lint::report::count_by_rule_file(&analysis.violations);
    let mut slack = Vec::new();
    for (rule, files) in &baseline {
        for (file, &allowed) in files {
            let found = counts
                .get(rule)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0);
            if found < allowed {
                slack.push((rule.clone(), file.clone(), found, allowed));
            }
        }
    }
    assert!(
        slack.is_empty(),
        "stale baseline entries (rule, file, found, baselined) — shrink them: {slack:?}"
    );
}
