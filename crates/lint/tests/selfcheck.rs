//! The analyzer must pass on the workspace itself: running the real
//! walk in-process makes `cargo test` a lint gate too, not just the
//! dedicated CI step.

#[test]
fn workspace_is_clean_with_committed_baseline() {
    let root = rmc_lint::default_root();
    let analysis = rmc_lint::analyze_workspace(&root).expect("workspace walk");
    let text = std::fs::read_to_string(root.join("crates/lint/baseline.json"))
        .expect("crates/lint/baseline.json must be committed");
    let baseline = rmc_lint::report::parse_baseline(&text).expect("baseline parses");
    let failing = rmc_lint::failing_groups(&analysis.violations, &baseline);
    assert!(
        failing.is_empty(),
        "non-baselined lint violations (rule, file, found, baselined): {failing:?}\n\
         run `cargo run -p rmc-lint -- --list` for details"
    );
}

#[test]
fn committed_metric_manifest_is_current() {
    let root = rmc_lint::default_root();
    let analysis = rmc_lint::analyze_workspace(&root).expect("workspace walk");
    let on_disk = std::fs::read_to_string(root.join("results/metric_manifest.json"))
        .expect("results/metric_manifest.json must be committed");
    assert_eq!(
        on_disk, analysis.manifest,
        "results/metric_manifest.json is stale; \
         run `cargo run -p rmc-lint -- --write-manifest` and commit"
    );
}

#[test]
fn committed_baseline_is_not_stale() {
    // The ratchet: every baselined count must still be *reached* —
    // fixing violations without shrinking the baseline leaves slack a
    // future regression could hide in.
    let root = rmc_lint::default_root();
    let analysis = rmc_lint::analyze_workspace(&root).expect("workspace walk");
    let text =
        std::fs::read_to_string(root.join("crates/lint/baseline.json")).expect("baseline readable");
    let baseline = rmc_lint::report::parse_baseline(&text).expect("baseline parses");
    let counts = rmc_lint::report::count_by_rule_file(&analysis.violations);
    let mut slack = Vec::new();
    for (rule, files) in &baseline {
        for (file, &allowed) in files {
            let found = counts
                .get(rule)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0);
            if found < allowed {
                slack.push((rule.clone(), file.clone(), found, allowed));
            }
        }
    }
    assert!(
        slack.is_empty(),
        "stale baseline entries (rule, file, found, baselined) — shrink them: {slack:?}"
    );
}
