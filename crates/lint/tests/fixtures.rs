//! Fixture-based end-to-end tests: each rule gets a deliberately
//! violating source file under `tests/fixtures/` (excluded from the
//! real workspace walk), fed through the full pipeline under a virtual
//! path inside the rule's scope, and every hit is asserted by exact
//! `file:line`.

use rmc_lint::analyze_sources;

fn hits(files: &[(&str, &str)]) -> (Vec<(String, u32, &'static str)>, usize, String) {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();
    let analysis = analyze_sources(&owned);
    (
        analysis
            .violations
            .iter()
            .map(|v| (v.file.clone(), v.line, v.rule))
            .collect(),
        analysis.waived,
        analysis.manifest,
    )
}

#[test]
fn r1_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/simnet/src/fixture_r1.rs",
        include_str!("fixtures/r1.rs"),
    )]);
    let expect: Vec<(String, u32, &str)> = [4, 7, 8, 9, 10, 11]
        .iter()
        .map(|&l| ("crates/simnet/src/fixture_r1.rs".to_string(), l, "R1"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn r2_fixture_exact_lines() {
    let (v, _, manifest) = hits(&[(
        "crates/core/src/fixture_r2.rs",
        include_str!("fixtures/r2.rs"),
    )]);
    // 5–8: grammar violations; 9: reserved `.high` suffix; 12: read of
    // an unregistered name. 10 registers cleanly, 11 reads it back.
    let expect: Vec<(String, u32, &str)> = [5, 6, 7, 8, 9, 12]
        .iter()
        .map(|&l| ("crates/core/src/fixture_r2.rs".to_string(), l, "R2"))
        .collect();
    assert_eq!(v, expect);
    assert!(manifest.contains("\"name\": \"mc.node*.ops\""));
    assert!(manifest.contains("\"kind\": \"counter\""));
    assert!(manifest.contains("\"layer\": \"mc\""));
}

#[test]
fn r3_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/ucr/src/fixture_r3.rs",
        include_str!("fixtures/r3.rs"),
    )]);
    // 5: begin without end; 8: end without begin; 9: literal-0 span key.
    let expect: Vec<(String, u32, &str)> = [5, 8, 9]
        .iter()
        .map(|&l| ("crates/ucr/src/fixture_r3.rs".to_string(), l, "R3"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn r4_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/verbs/src/fixture_r4.rs",
        include_str!("fixtures/r4.rs"),
    )]);
    let expect: Vec<(String, u32, &str)> = [5, 6, 8]
        .iter()
        .map(|&l| ("crates/verbs/src/fixture_r4.rs".to_string(), l, "R4"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn r5_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/ucr/src/fixture_r5.rs",
        include_str!("fixtures/r5.rs"),
    )]);
    let expect: Vec<(String, u32, &str)> = [5, 6]
        .iter()
        .map(|&l| ("crates/ucr/src/fixture_r5.rs".to_string(), l, "R5"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn waiver_fixture_suppresses_covered_lines_only() {
    let (v, waived, _) = hits(&[(
        "crates/verbs/src/fixture_waiver.rs",
        include_str!("fixtures/waiver.rs"),
    )]);
    // Line 5 is waived inline, line 7 by the standalone comment on 6;
    // line 8 has no waiver and must survive.
    assert_eq!(waived, 2);
    assert_eq!(
        v,
        vec![("crates/verbs/src/fixture_waiver.rs".to_string(), 8, "R4")]
    );
}

#[test]
fn all_fixtures_together_stay_disjoint() {
    let (v, waived, _) = hits(&[
        (
            "crates/simnet/src/fixture_r1.rs",
            include_str!("fixtures/r1.rs"),
        ),
        (
            "crates/core/src/fixture_r2.rs",
            include_str!("fixtures/r2.rs"),
        ),
        (
            "crates/ucr/src/fixture_r3.rs",
            include_str!("fixtures/r3.rs"),
        ),
        (
            "crates/verbs/src/fixture_r4.rs",
            include_str!("fixtures/r4.rs"),
        ),
        (
            "crates/ucr/src/fixture_r5.rs",
            include_str!("fixtures/r5.rs"),
        ),
        (
            "crates/verbs/src/fixture_waiver.rs",
            include_str!("fixtures/waiver.rs"),
        ),
    ]);
    assert_eq!(v.len(), 6 + 6 + 3 + 3 + 2 + 1);
    assert_eq!(waived, 2);
    for rule in ["R1", "R2", "R3", "R4", "R5"] {
        assert!(v.iter().any(|(_, _, r)| *r == rule), "missing {rule} hits");
    }
}

#[test]
fn out_of_scope_placement_is_ignored() {
    // The same violating sources outside their rules' scopes: R4/R5
    // don't apply to simnet, R1 doesn't apply to the lint crate itself,
    // and files under tests/ are test code wholesale.
    let (v, _, _) = hits(&[
        (
            "crates/simnet/src/fixture_r4.rs",
            include_str!("fixtures/r4.rs"),
        ),
        (
            "crates/simnet/src/fixture_r5.rs",
            include_str!("fixtures/r5.rs"),
        ),
        (
            "crates/lint/src/fixture_r1.rs",
            include_str!("fixtures/r1.rs"),
        ),
        (
            "crates/ucr/tests/fixture_r4.rs",
            include_str!("fixtures/r4.rs"),
        ),
    ]);
    assert_eq!(v, vec![]);
}
