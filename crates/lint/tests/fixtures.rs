//! Fixture-based end-to-end tests: each rule gets a deliberately
//! violating source file under `tests/fixtures/` (excluded from the
//! real workspace walk), fed through the full pipeline under a virtual
//! path inside the rule's scope, and every hit is asserted by exact
//! `file:line`.

use rmc_lint::analyze_sources;

fn hits(files: &[(&str, &str)]) -> (Vec<(String, u32, &'static str)>, usize, String) {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();
    let analysis = analyze_sources(&owned);
    (
        analysis
            .violations
            .iter()
            .map(|v| (v.file.clone(), v.line, v.rule))
            .collect(),
        analysis.waived,
        analysis.manifest,
    )
}

#[test]
fn r1_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/simnet/src/fixture_r1.rs",
        include_str!("fixtures/r1.rs"),
    )]);
    let expect: Vec<(String, u32, &str)> = [4, 7, 8, 9, 10, 11]
        .iter()
        .map(|&l| ("crates/simnet/src/fixture_r1.rs".to_string(), l, "R1"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn r2_fixture_exact_lines() {
    let (v, _, manifest) = hits(&[(
        "crates/core/src/fixture_r2.rs",
        include_str!("fixtures/r2.rs"),
    )]);
    // 5–8: grammar violations; 9: reserved `.high` suffix; 12: read of
    // an unregistered name. 10 registers cleanly, 11 reads it back.
    let expect: Vec<(String, u32, &str)> = [5, 6, 7, 8, 9, 12]
        .iter()
        .map(|&l| ("crates/core/src/fixture_r2.rs".to_string(), l, "R2"))
        .collect();
    assert_eq!(v, expect);
    assert!(manifest.contains("\"name\": \"mc.node*.ops\""));
    assert!(manifest.contains("\"kind\": \"counter\""));
    assert!(manifest.contains("\"layer\": \"mc\""));
}

#[test]
fn r3_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/ucr/src/fixture_r3.rs",
        include_str!("fixtures/r3.rs"),
    )]);
    // 5: begin whose end exists nowhere in the workspace (R3v2 since
    // literal-name pairing went interprocedural); 8: the symmetric end;
    // 9: literal-0 span key (still the file-local R3).
    let expect: Vec<(String, u32, &str)> = vec![
        ("crates/ucr/src/fixture_r3.rs".to_string(), 5, "R3v2"),
        ("crates/ucr/src/fixture_r3.rs".to_string(), 8, "R3v2"),
        ("crates/ucr/src/fixture_r3.rs".to_string(), 9, "R3"),
    ];
    assert_eq!(v, expect);
}

#[test]
fn r6_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/core/src/fixture_r6.rs",
        include_str!("fixtures/r6.rs"),
    )]);
    // 13: literal index 1 after 2; 18: loop over an unordered Vec;
    // 24: the a->b / b->a class-order cycle, reported once at the
    // first call that closes it.
    let expect: Vec<(String, u32, &str)> = [13, 18, 24]
        .iter()
        .map(|&l| ("crates/core/src/fixture_r6.rs".to_string(), l, "R6"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn r7_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/ucr/src/fixture_r7.rs",
        include_str!("fixtures/r7.rs"),
    )]);
    // 12: let-bound registration inserted into `bufs` with no release;
    // 17: registration pushed into `pool` with no release. The
    // `live` insert on 21 is balanced by the remove on 25.
    let expect: Vec<(String, u32, &str)> = [12, 17]
        .iter()
        .map(|&l| ("crates/ucr/src/fixture_r7.rs".to_string(), l, "R7"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn r1v2_fixture_two_hop_taint() {
    let (v, waived, _) = hits(&[
        (
            "crates/core/src/fixture_taint.rs",
            include_str!("fixtures/r1v2_core.rs"),
        ),
        (
            "crates/lint/src/fixture_util.rs",
            include_str!("fixtures/r1v2_util.rs"),
        ),
    ]);
    // The scoped caller is flagged at its boundary call site (line 5),
    // two hops from the Instant::now in the helper crate. The waived
    // helper is not a source — and its waiver is *used* (no W0).
    assert_eq!(
        v,
        vec![("crates/core/src/fixture_taint.rs".to_string(), 5, "R1v2")]
    );
    assert_eq!(waived, 0);
}

#[test]
fn r3v2_fixture_cross_file_pairing() {
    let (v, _, _) = hits(&[
        (
            "crates/ucr/src/fixture_sa.rs",
            include_str!("fixtures/r3v2_a.rs"),
        ),
        (
            "crates/core/src/fixture_sb.rs",
            include_str!("fixtures/r3v2_b.rs"),
        ),
    ]);
    // "xfile_ok" pairs across files through the shared `helper`
    // component; "xfile_orphan"'s begin and end live in unconnected
    // code, so both sides are flagged.
    assert_eq!(
        v,
        vec![
            ("crates/core/src/fixture_sb.rs".to_string(), 12, "R3v2"),
            ("crates/ucr/src/fixture_sa.rs".to_string(), 10, "R3v2"),
        ]
    );
}

#[test]
fn w0_fixture_stale_waiver_flagged() {
    // A waiver over a line where its rule no longer fires is itself a
    // violation: silently dead suppressions hide future regressions.
    let (v, waived, _) = hits(&[(
        "crates/verbs/src/fixture_stale.rs",
        "pub fn fine(x: Option<u8>) -> u8 {\n    x.unwrap_or(0) // lint:allow(R4) nothing to suppress: unwrap_or never panics\n}\n",
    )]);
    assert_eq!(waived, 0);
    assert_eq!(
        v,
        vec![("crates/verbs/src/fixture_stale.rs".to_string(), 2, "W0")]
    );
}

#[test]
fn r4_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/verbs/src/fixture_r4.rs",
        include_str!("fixtures/r4.rs"),
    )]);
    let expect: Vec<(String, u32, &str)> = [5, 6, 8]
        .iter()
        .map(|&l| ("crates/verbs/src/fixture_r4.rs".to_string(), l, "R4"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn r5_fixture_exact_lines() {
    let (v, _, _) = hits(&[(
        "crates/ucr/src/fixture_r5.rs",
        include_str!("fixtures/r5.rs"),
    )]);
    let expect: Vec<(String, u32, &str)> = [5, 6]
        .iter()
        .map(|&l| ("crates/ucr/src/fixture_r5.rs".to_string(), l, "R5"))
        .collect();
    assert_eq!(v, expect);
}

#[test]
fn waiver_fixture_suppresses_covered_lines_only() {
    let (v, waived, _) = hits(&[(
        "crates/verbs/src/fixture_waiver.rs",
        include_str!("fixtures/waiver.rs"),
    )]);
    // Line 5 is waived inline, line 7 by the standalone comment on 6;
    // line 8 has no waiver and must survive.
    assert_eq!(waived, 2);
    assert_eq!(
        v,
        vec![("crates/verbs/src/fixture_waiver.rs".to_string(), 8, "R4")]
    );
}

#[test]
fn all_fixtures_together_stay_disjoint() {
    let (v, waived, _) = hits(&[
        (
            "crates/simnet/src/fixture_r1.rs",
            include_str!("fixtures/r1.rs"),
        ),
        (
            "crates/core/src/fixture_r2.rs",
            include_str!("fixtures/r2.rs"),
        ),
        (
            "crates/ucr/src/fixture_r3.rs",
            include_str!("fixtures/r3.rs"),
        ),
        (
            "crates/verbs/src/fixture_r4.rs",
            include_str!("fixtures/r4.rs"),
        ),
        (
            "crates/ucr/src/fixture_r5.rs",
            include_str!("fixtures/r5.rs"),
        ),
        (
            "crates/verbs/src/fixture_waiver.rs",
            include_str!("fixtures/waiver.rs"),
        ),
        (
            "crates/core/src/fixture_r6.rs",
            include_str!("fixtures/r6.rs"),
        ),
        (
            "crates/ucr/src/fixture_r7.rs",
            include_str!("fixtures/r7.rs"),
        ),
        (
            "crates/core/src/fixture_taint.rs",
            include_str!("fixtures/r1v2_core.rs"),
        ),
        (
            "crates/lint/src/fixture_util.rs",
            include_str!("fixtures/r1v2_util.rs"),
        ),
        (
            "crates/ucr/src/fixture_sa.rs",
            include_str!("fixtures/r3v2_a.rs"),
        ),
        (
            "crates/core/src/fixture_sb.rs",
            include_str!("fixtures/r3v2_b.rs"),
        ),
    ]);
    // Per-file counts: r1=6, r2=6, r3=3, r4=3, r5=2, waiver=1, r6=3,
    // r7=2, r1v2 pair=1, r3v2 pair=2.
    assert_eq!(v.len(), 6 + 6 + 3 + 3 + 2 + 1 + 3 + 2 + 1 + 2);
    assert_eq!(waived, 2);
    for rule in ["R1", "R2", "R3", "R4", "R5", "R1v2", "R3v2", "R6", "R7"] {
        assert!(v.iter().any(|(_, _, r)| *r == rule), "missing {rule} hits");
    }
}

#[test]
fn out_of_scope_placement_is_ignored() {
    // The same violating sources outside their rules' scopes: R4/R5
    // don't apply to simnet, R1 doesn't apply to the lint crate itself,
    // and files under tests/ are test code wholesale.
    let (v, _, _) = hits(&[
        (
            "crates/simnet/src/fixture_r4.rs",
            include_str!("fixtures/r4.rs"),
        ),
        (
            "crates/simnet/src/fixture_r5.rs",
            include_str!("fixtures/r5.rs"),
        ),
        (
            "crates/lint/src/fixture_r1.rs",
            include_str!("fixtures/r1.rs"),
        ),
        (
            "crates/ucr/tests/fixture_r4.rs",
            include_str!("fixtures/r4.rs"),
        ),
    ]);
    assert_eq!(v, vec![]);
}
