//! Fixture: R5 counter monotonicity. Scanned by the integration test as
//! `crates/ucr/src/fixture_r5.rs` (inside R5 scope, not counter.rs).

pub fn tamper(c: &CtrInner) {
    c.value.set(c.value.get() + 1);
    c.notify.notify_all();
}

pub fn sanctioned(c: &CtrInner) {
    c.bump();
}
