//! Fixture: R3v2 cross-file span pairing, `begin` side. Mounted as
//! `crates/ucr/src/fixture_sa.rs`.

pub fn open_window(t: &Tracer, at: SimTime) {
    t.begin(Layer::Ucr, "xfile_ok", NodeId(0), Track::Main, 7, 0, at);
    helper();
}

pub fn open_orphan(t: &Tracer, at: SimTime) {
    t.begin(Layer::Ucr, "xfile_orphan", NodeId(0), Track::Main, 7, 0, at);
}

pub fn helper() {}
