//! Fixture: R1v2 scoped caller reaching an impure helper two hops away.
//! Mounted as `crates/core/src/fixture_taint.rs`.

pub fn now_ticks() -> u64 {
    stamp()
}

pub fn seeded_ok() -> u64 {
    seeded()
}
