//! Fixture: R2 metric-name discipline. Scanned by the integration test
//! as `crates/core/src/fixture_r2.rs`.

pub fn register(m: &Metrics, shard: usize) {
    m.counter("Uppercase.Bad").inc();
    m.gauge("double..dot").set(1.0);
    m.histogram("trailing.").observe(1);
    m.counter("has-dash").inc();
    m.gauge("queue.depth.high").set(0.0);
    m.counter(&format!("mc.node{shard}.ops")).inc();
    let _known = m.counter_value("mc.node3.ops");
    let _typo = m.counter_value("mc.node3.opps");
}
