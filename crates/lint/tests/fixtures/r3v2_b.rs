//! Fixture: R3v2 cross-file span pairing, `end` side. Mounted as
//! `crates/core/src/fixture_sb.rs`. `close_window` shares a call-graph
//! component with the `begin` side through `helper`; `lonely_end` does
//! not.

pub fn close_window(t: &Tracer, at: SimTime) {
    helper();
    t.end(Layer::Ucr, "xfile_ok", NodeId(0), Track::Main, 7, 0, at);
}

pub fn lonely_end(t: &Tracer, at: SimTime) {
    t.end(Layer::Ucr, "xfile_orphan", NodeId(0), Track::Main, 7, 0, at);
}
