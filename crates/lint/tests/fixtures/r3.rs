//! Fixture: R3 trace-span balance. Scanned by the integration test as
//! `crates/ucr/src/fixture_r3.rs`.

pub fn spans(tr: &Tracer, node: NodeId, wr: u64, at: SimTime) {
    tr.begin(Layer::Ucr, "orphan_begin", node, Track::Main, wr, 0, at);
    tr.begin(Layer::Ucr, "paired", node, Track::Main, wr, 0, at);
    tr.end(Layer::Ucr, "paired", node, Track::Main, wr, 0, at);
    tr.end(Layer::Ucr, "orphan_end", node, Track::Main, wr, 0, at);
    tr.begin(Layer::Ucr, "zero_key", node, Track::Main, 0, 0, at);
    tr.end(Layer::Ucr, "zero_key", node, Track::Main, wr, 0, at);
    // Not a tracer span: LatencySpans::begin takes no Layer argument.
    sp.begin(req_id, at);
}
