//! Fixture: R6 VLock acquisition-order discipline. Scanned by the
//! integration test as `crates/core/src/fixture_r6.rs`.

struct Locks {
    segs: Vec<Rc<VLock>>,
    a: Rc<VLock>,
    b: Rc<VLock>,
}

impl Locks {
    fn descending(&self, op: u64, t: Track) {
        self.segs[2].lock(op, t);
        self.segs[1].lock(op, t);
    }

    fn unprovable(&self, picks: Vec<usize>, op: u64, t: Track) {
        for p in picks {
            self.segs[p].lock(op, t);
        }
    }

    fn ab(&self, op: u64, t: Track) {
        self.a.lock(op, t);
        self.grab_b(op, t);
    }

    fn ba(&self, op: u64, t: Track) {
        self.b.lock(op, t);
        self.grab_a(op, t);
    }

    fn grab_a(&self, op: u64, t: Track) {
        self.a.lock(op, t);
    }

    fn grab_b(&self, op: u64, t: Track) {
        self.b.lock(op, t);
    }

    fn clean_ascending(&self, shards: Vec<usize>, op: u64, t: Track) {
        let set: std::collections::BTreeSet<usize> = shards.into_iter().collect();
        for s in set {
            self.segs[s].lock(op, t);
        }
    }
}
