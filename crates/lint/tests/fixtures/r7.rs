//! Fixture: R7 MR retention lifecycle. Scanned by the integration test
//! as `crates/ucr/src/fixture_r7.rs`.

struct Cache {
    pd: Pd,
    bufs: HashMap<u64, Mr>,
    live: HashMap<u64, Mr>,
}

impl Cache {
    fn leak_let(&mut self, id: u64) {
        let mr = self.pd.register(64);
        self.bufs.insert(id, mr);
    }

    fn leak_push(&mut self, pool: &mut Vec<Mr>) {
        pool.push(self.pd.register(64));
    }

    fn balanced_insert(&mut self, id: u64) {
        self.live.insert(id, self.pd.register(64));
    }

    fn balanced_release(&mut self, id: u64) {
        self.live.remove(&id);
    }
}
