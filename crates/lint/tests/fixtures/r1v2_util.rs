//! Fixture: R1v2 out-of-scope helper, mounted as
//! `crates/lint/src/fixture_util.rs` (outside the purity scope).

pub fn stamp() -> u64 {
    ticks()
}

fn ticks() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

pub fn seeded() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64 // lint:allow(R1v2) host tool: wall clock is the measurand
}
