//! Fixture: R1 virtual-time purity. Scanned by the integration test as
//! `crates/simnet/src/fixture_r1.rs` (inside R1 scope).

use std::time::Instant;

pub fn naughty() -> u64 {
    let t = Instant::now();
    std::thread::sleep(core::time::Duration::from_millis(1));
    let pid = std::process::id();
    let lucky: u8 = rand::random();
    let mut rng = rand::thread_rng();
    let _ = (t, lucky, &mut rng);
    pid as u64
}

pub fn fine(sim: &Sim) -> SimTime {
    // Virtual time and seeded randomness are the sanctioned sources.
    sim.now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _t = std::time::Instant::now();
    }
}
