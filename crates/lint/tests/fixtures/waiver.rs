//! Fixture: waiver semantics. Scanned by the integration test as
//! `crates/verbs/src/fixture_waiver.rs`.

pub fn waived(x: Option<u8>) -> u8 {
    let a = x.unwrap(); // lint:allow(R4) fixture: invariant documented here
    // lint:allow(R4) standalone waiver covers the next line
    let b = x.unwrap();
    let c = x.unwrap();
    a + b + c
}
