//! Fixture: R4 panic-path audit. Scanned by the integration test as
//! `crates/verbs/src/fixture_r4.rs` (inside R4 scope).

pub fn panics(x: Option<u8>, r: Result<u8, ()>) -> u8 {
    let a = x.unwrap();
    let b = r.expect("fixture");
    if a == 0 {
        panic!("fixture boom");
    }
    // Non-panicking variants are fine:
    a + b + x.unwrap_or(0) + x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        Some(1u8).unwrap();
    }
}
