//! Integration and property tests for the simulation substrate:
//! executor determinism under random task graphs, resource conservation,
//! and fabric timing laws.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use simnet::{Cluster, NodeId, Sim, SimDuration, SimTime};

/// Runs a random task graph and returns its full event trace.
fn run_task_graph(seed: u64, delays: &[u64]) -> Vec<(u64, usize)> {
    let sim = Sim::new(seed);
    let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    for (idx, &base) in delays.iter().enumerate() {
        let s = sim.clone();
        let log = log.clone();
        sim.spawn(async move {
            for step in 0..3u64 {
                let jitter = s.with_rng(|r| r.gen_range_u64(1, 50));
                s.sleep(SimDuration::from_nanos(base % 1000 + 1 + jitter * step))
                    .await;
                log.borrow_mut().push((s.now().as_nanos(), idx));
            }
        });
    }
    sim.run();
    let result = log.borrow().clone();
    result
}

proptest! {
    /// The executor is deterministic: identical seeds and task graphs
    /// produce identical traces, event for event.
    #[test]
    fn executor_is_deterministic(seed in 0u64..1000, delays in proptest::collection::vec(0u64..10_000, 1..12)) {
        let a = run_task_graph(seed, &delays);
        let b = run_task_graph(seed, &delays);
        prop_assert_eq!(a, b);
    }

    /// Transfer time over a link is monotone in the byte count and never
    /// less than propagation.
    #[test]
    fn transfer_time_is_monotone(bytes in proptest::collection::vec(1u64..1_000_000, 2..8)) {
        let cluster = Cluster::cluster_a(1, 2);
        let ib = cluster.ib().clone();
        let prop_delay = cluster.profile().ib.propagation;
        let mut sorted = bytes.clone();
        sorted.sort_unstable();
        let mut last = SimDuration::ZERO;
        for (i, &b) in sorted.iter().enumerate() {
            // Fresh cluster per transfer so queueing never interferes.
            let c = Cluster::cluster_a(1, 2);
            let net = c.ib().clone();
            let t = net.transmit(c.sim(), NodeId(0), NodeId(1), b, SimTime::ZERO, || {});
            let d = t - SimTime::ZERO;
            prop_assert!(d >= prop_delay);
            if i > 0 && sorted[i] > sorted[i - 1] {
                prop_assert!(d >= last, "{b} bytes faster than smaller transfer");
            }
            last = d;
        }
        let _ = ib;
    }

    /// Back-to-back transfers through one egress port serialize: total
    /// elapsed time is at least the sum of serialization times.
    #[test]
    fn egress_serialization_conserves_time(n in 1usize..20, bytes in 1_000u64..100_000) {
        let cluster = Cluster::cluster_a(1, 3);
        let net = cluster.ib().clone();
        let ser = net.ser_time(bytes);
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = net.transmit(cluster.sim(), NodeId(0), NodeId(1), bytes, SimTime::ZERO, || {});
        }
        let total = last - SimTime::ZERO;
        prop_assert!(total >= ser * n as u64, "{n} transfers finished too fast");
    }
}

#[test]
fn sleep_zero_still_yields_in_order() {
    let sim = Sim::new(1);
    let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    for i in 0..4u32 {
        let s = sim.clone();
        let log = log.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::ZERO).await;
            log.borrow_mut().push(i);
        });
    }
    sim.run();
    assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
}

#[test]
fn join_handle_can_be_detached() {
    let sim = Sim::new(1);
    let hit = Rc::new(std::cell::Cell::new(false));
    let hit2 = hit.clone();
    let s = sim.clone();
    let handle = sim.spawn(async move {
        s.sleep(SimDuration::from_micros(1)).await;
        hit2.set(true);
    });
    drop(handle); // detach
    sim.run();
    assert!(hit.get(), "detached task still runs to completion");
}

#[test]
fn nested_timeouts_resolve_innermost_first() {
    use simnet::sync::{oneshot, timeout};
    let sim = Sim::new(1);
    let s = sim.clone();
    let out = sim.block_on(async move {
        let (_tx, rx) = oneshot::<u8>();
        // Inner timeout (2 us) fires before outer (10 us).
        let inner = timeout(&s, SimDuration::from_micros(2), rx);
        timeout(&s, SimDuration::from_micros(10), Box::pin(inner)).await
    });
    // Outer Ok, inner Err(Elapsed).
    assert!(matches!(out, Ok(Err(_))));
    assert_eq!(sim.now().as_nanos(), 2_000);
}

#[test]
fn run_until_can_be_resumed() {
    let sim = Sim::new(1);
    let hits = Rc::new(std::cell::Cell::new(0u32));
    for i in 1..=5u64 {
        let hits = hits.clone();
        sim.schedule(SimDuration::from_micros(i * 10), move || {
            hits.set(hits.get() + 1)
        });
    }
    sim.run_until(SimTime::from_nanos(25_000));
    assert_eq!(hits.get(), 2);
    sim.run_until(SimTime::from_nanos(45_000));
    assert_eq!(hits.get(), 4);
    sim.run();
    assert_eq!(hits.get(), 5);
}

#[test]
fn cluster_kernel_and_hca_resources_are_per_node() {
    let cluster = Cluster::cluster_a(1, 3);
    let n0 = cluster.node(NodeId(0));
    let n1 = cluster.node(NodeId(1));
    let t0 = n0
        .kernel
        .occupy_from(SimTime::ZERO, SimDuration::from_micros(100));
    // Node 1 is unaffected by node 0's busy kernel.
    let t1 = n1
        .kernel
        .occupy_from(SimTime::ZERO, SimDuration::from_micros(1));
    assert!(t1 < t0);
    assert_eq!(n0.hca.free_at(), SimTime::ZERO, "hca independent of kernel");
}
