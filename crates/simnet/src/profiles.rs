//! Calibrated hardware and protocol-stack cost profiles.
//!
//! The paper evaluates on two clusters (§VI-A):
//!
//! * **Cluster A** — Intel Clovertown (2× quad-core Xeon 2.33 GHz, 6 GB),
//!   PCIe 1.1, ConnectX **DDR** HCAs (16 Gb/s signal rate) on a SilverStorm
//!   DDR switch, plus Chelsio T320 **10GigE** NICs with TCP offload on a
//!   Fulcrum FocalPoint switch, plus onboard 1GigE.
//! * **Cluster B** — Intel Westmere (2× quad-core Xeon 2.67 GHz, 12 GB),
//!   PCIe Gen2, MT26428 ConnectX **QDR** HCAs (32 Gb/s) on a Mellanox QDR
//!   switch. No 10GigE cards.
//!
//! Constants below are calibrated so the simulation lands on the paper's
//! *stated absolute numbers* where it states them, and on period-typical
//! microbenchmarks elsewhere:
//!
//! * verbs one-way small-message latency 1–2 µs (MVAPICH, §I);
//! * Memcached `get` of 4 KB ≈ **12 µs** on QDR and ≈ **20 µs** on DDR (§VI);
//! * UCR ≥ 4× faster than 10GigE-TOE at all sizes (§VI-B);
//! * UCR 5–10× faster than IPoIB/SDP across sizes (§VI, §VII);
//! * small-`get` throughput: UCR ≈ 6× 10GigE-TOE on A, ≈ 6× SDP on B,
//!   ≈ 1.8 M transactions/s at 4 B with 16 clients on QDR (§VI-D);
//! * on Cluster B, SDP shows jitter and slightly *worse* results than IPoIB
//!   (the paper attributes this to an SDP implementation artifact on QDR).
//!
//! Per-stack costs decompose into: application-side per-message CPU
//! (syscall, wakeup), kernel per-message occupancy (protocol processing on a
//! shared FIFO resource → this is what saturates in Figure 6), a per-KB
//! data-path cost charged on the receiving node's kernel resource (byte
//! stream re-framing, socket buffer copies), link serialization, and
//! propagation. Verbs traffic bypasses the kernel entirely: it pays only
//! HCA pipeline occupancy and link time — the OS-bypass the paper leverages.

use crate::time::SimDuration;

/// Microseconds → `SimDuration`, for readable constant tables.
fn us(x: f64) -> SimDuration {
    SimDuration::from_micros_f64(x)
}

/// Which physical network a message travels on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NetKind {
    /// InfiniBand fabric (DDR on Cluster A, QDR on Cluster B).
    Ib,
    /// 10 Gigabit Ethernet (Cluster A only).
    TenGigE,
    /// Onboard 1 Gigabit Ethernet (Cluster A only).
    OneGigE,
}

/// The five transports of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stack {
    /// UCR over InfiniBand verbs (the paper's design).
    Ucr,
    /// Sockets Direct Protocol over IB, buffered-copy mode (zero-copy off,
    /// as in the paper — the OFED zcopy mode did not work in non-blocking
    /// mode and crashed Memcached, §VI).
    Sdp,
    /// IP-over-InfiniBand, connected mode.
    Ipoib,
    /// 10GigE with TCP offload engine (Chelsio T320).
    TenGigEToe,
    /// Plain kernel TCP over 1GigE.
    OneGigE,
}

impl Stack {
    /// All transports, in the paper's plotting order.
    pub const ALL: [Stack; 5] = [
        Stack::Ucr,
        Stack::Sdp,
        Stack::Ipoib,
        Stack::TenGigEToe,
        Stack::OneGigE,
    ];

    /// The physical network this transport runs on.
    pub fn net(self) -> NetKind {
        match self {
            Stack::Ucr | Stack::Sdp | Stack::Ipoib => NetKind::Ib,
            Stack::TenGigEToe => NetKind::TenGigE,
            Stack::OneGigE => NetKind::OneGigE,
        }
    }

    /// Label used in figure output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Stack::Ucr => "UCR",
            Stack::Sdp => "SDP",
            Stack::Ipoib => "IPoIB",
            Stack::TenGigEToe => "10GigE-TOE",
            Stack::OneGigE => "1GigE",
        }
    }

    /// True for the byte-stream (sockets) transports.
    pub fn is_sockets(self) -> bool {
        !matches!(self, Stack::Ucr)
    }
}

/// A physical link (host ↔ switch ↔ host path).
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// Effective data bandwidth in bits per second (signal rate minus
    /// encoding and PCIe ceiling — e.g. DDR 16 Gb/s signal ≈ 10.4 Gb/s
    /// effective through PCIe 1.1).
    pub bits_per_sec: u64,
    /// One-way propagation: cable + switch forwarding.
    pub propagation: SimDuration,
    /// Maximum transmission unit (drives per-segment costs in socket
    /// stacks; verbs messages are not segmented at this layer).
    pub mtu: u32,
}

impl LinkProfile {
    /// Serialization time for `bytes` at this link's effective bandwidth.
    pub fn ser_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes_at(bytes, self.bits_per_sec)
    }
}

/// Verbs/HCA cost model (latency-path CPU costs are charged on the calling
/// task; `hca_msg` is shared-pipeline occupancy per work request).
#[derive(Clone, Copy, Debug)]
pub struct VerbsProfile {
    /// CPU cost to build a WQE and ring the doorbell.
    pub post_overhead: SimDuration,
    /// CPU cost to reap one completion from a CQ (polling).
    pub poll_overhead: SimDuration,
    /// HCA pipeline occupancy per work request (send, recv, or RDMA op).
    /// The reciprocal is the adapter's message rate — the Figure 6
    /// bottleneck for UCR.
    pub hca_msg: SimDuration,
    /// Extra HCA latency for servicing an inbound RDMA read (target side,
    /// no CPU involvement — that is the point of RDMA).
    pub rdma_target: SimDuration,
}

/// Host-side costs of the Memcached server & UCR data path.
#[derive(Clone, Copy, Debug)]
pub struct HostProfile {
    /// memcpy bandwidth for staging copies (eager path), bytes/s.
    pub copy_bw_bps: u64,
    /// Hash-table lookup + item bookkeeping in the server.
    pub hash_lookup: SimDuration,
    /// Fixed per-request worker-thread cost (dispatch, request parse).
    pub worker_fixed: SimDuration,
    /// UCR active-message dispatch (header-handler invocation).
    pub am_dispatch: SimDuration,
    /// Calibration: extra per-KB host cost on the UCR *eager* path
    /// (buffer management, protocol framing), µs/KB, split across ends.
    pub ucr_eager_per_kb_us: f64,
    /// Per-KB host cost on the UCR *rendezvous* (zero-copy RDMA) path.
    pub ucr_rdma_per_kb_us: f64,
}

/// Occasional latency spikes (models the SDP-on-QDR artifact of §VI-B).
#[derive(Clone, Copy, Debug)]
pub struct JitterProfile {
    /// Probability a given message picks up a spike.
    pub prob: f64,
    /// Mean of the (exponential) spike magnitude.
    pub mean: SimDuration,
}

/// Cost model for one byte-stream transport.
#[derive(Clone, Copy, Debug)]
pub struct SocketStackProfile {
    /// Which transport this profile describes.
    pub stack: Stack,
    /// Application-side per-message send cost (syscall, copy into socket).
    pub app_send: SimDuration,
    /// Application-side per-message receive cost (wakeup, copy out).
    pub app_recv: SimDuration,
    /// Kernel (or offload-engine) occupancy per sent message on the
    /// sending node's shared network-processing resource.
    pub kernel_send: SimDuration,
    /// Kernel occupancy per received message on the receiving node.
    pub kernel_recv: SimDuration,
    /// Data-path cost for payloads up to `pipeline_threshold`, µs/KB,
    /// charged on the receiving node's kernel resource. Dominated by
    /// per-segment interrupts and buffer copies before pipelining kicks in.
    pub per_kb_small_us: f64,
    /// Data-path cost beyond the pipeline threshold, µs/KB (bulk regime).
    pub per_kb_bulk_us: f64,
    /// Crossover between the two data-path regimes, bytes.
    pub pipeline_threshold: u64,
    /// Latency spikes, if this stack exhibits them on this cluster.
    pub jitter: Option<JitterProfile>,
}

impl SocketStackProfile {
    /// Kernel data-path occupancy for a `bytes`-byte payload: the small-
    /// regime rate up to the pipeline threshold, the bulk rate beyond it.
    pub fn data_path_cost(&self, bytes: u64) -> SimDuration {
        let small = bytes.min(self.pipeline_threshold) as f64;
        let bulk = bytes.saturating_sub(self.pipeline_threshold) as f64;
        us((small * self.per_kb_small_us + bulk * self.per_kb_bulk_us) / 1024.0)
    }
}

/// Everything the simulation needs to know about one testbed.
#[derive(Clone, Debug)]
pub struct ClusterProfile {
    /// "Cluster A" / "Cluster B", as in the paper.
    pub name: &'static str,
    /// Number of compute nodes available.
    pub nodes: u32,
    /// InfiniBand link (always present).
    pub ib: LinkProfile,
    /// 10GigE link, if the cluster has the cards (A only).
    pub tengige: Option<LinkProfile>,
    /// 1GigE link, if modeled (A only).
    pub onegige: Option<LinkProfile>,
    /// Verbs/HCA cost model (InfiniBand).
    pub verbs: VerbsProfile,
    /// Verbs-over-Converged-Ethernet cost model, where the cluster's
    /// Ethernet adapters support it (paper SVII future work; SII-B
    /// "Convergence of Fabrics"). RoCE keeps verbs semantics and
    /// OS-bypass but pays Ethernet propagation and slightly higher
    /// adapter costs than native IB.
    pub roce: Option<VerbsProfile>,
    /// Host-side (CPU, memcpy) cost model.
    pub host: HostProfile,
    /// Socket-transport cost models present on this cluster.
    stacks: [Option<SocketStackProfile>; 4],
}

fn stack_slot(s: Stack) -> usize {
    match s {
        Stack::Sdp => 0,
        Stack::Ipoib => 1,
        Stack::TenGigEToe => 2,
        Stack::OneGigE => 3,
        Stack::Ucr => panic!("UCR is not a socket stack"),
    }
}

impl ClusterProfile {
    /// Cost model for a socket transport; `None` if the cluster lacks the
    /// hardware (e.g. 10GigE on Cluster B) or `Ucr` is asked for.
    pub fn socket_stack(&self, s: Stack) -> Option<&SocketStackProfile> {
        if s == Stack::Ucr {
            return None;
        }
        self.stacks[stack_slot(s)].as_ref()
    }

    /// True if this transport can run on this cluster.
    pub fn supports(&self, s: Stack) -> bool {
        s == Stack::Ucr || self.socket_stack(s).is_some()
    }

    /// The link profile for a physical network, if present.
    pub fn link(&self, net: NetKind) -> Option<&LinkProfile> {
        match net {
            NetKind::Ib => Some(&self.ib),
            NetKind::TenGigE => self.tengige.as_ref(),
            NetKind::OneGigE => self.onegige.as_ref(),
        }
    }

    /// The verbs cost model usable on a physical network: native IB on
    /// the IB fabric, RoCE (if the adapters support it) on 10GigE.
    pub fn verbs_for(&self, net: NetKind) -> Option<VerbsProfile> {
        match net {
            NetKind::Ib => Some(self.verbs),
            NetKind::TenGigE => self.roce,
            NetKind::OneGigE => None,
        }
    }

    /// UCR per-KB host cost for an eager transfer (µs/KB → duration).
    pub fn ucr_eager_cost(&self, bytes: u64) -> SimDuration {
        us(bytes as f64 * self.host.ucr_eager_per_kb_us / 1024.0)
    }

    /// UCR per-KB host cost on the zero-copy rendezvous path.
    pub fn ucr_rdma_cost(&self, bytes: u64) -> SimDuration {
        us(bytes as f64 * self.host.ucr_rdma_per_kb_us / 1024.0)
    }

    /// Cluster A: Clovertown + ConnectX DDR + Chelsio 10GigE-TOE + 1GigE.
    pub fn cluster_a() -> ClusterProfile {
        let ib = LinkProfile {
            // DDR 16 Gb/s signal, 8b/10b encoding and PCIe 1.1 x8 ceiling
            // → ~10.4 Gb/s effective (1.3 GB/s), the MVAPICH-era measured
            // unidirectional bandwidth for ConnectX DDR.
            bits_per_sec: 10_400_000_000,
            propagation: us(0.6),
            mtu: 2048,
        };
        ClusterProfile {
            name: "Cluster A (Clovertown, ConnectX DDR, PCIe 1.1)",
            nodes: 64,
            ib,
            tengige: Some(LinkProfile {
                bits_per_sec: 9_500_000_000,
                propagation: us(2.5),
                mtu: 1500,
            }),
            onegige: Some(LinkProfile {
                bits_per_sec: 940_000_000,
                propagation: us(4.0),
                mtu: 1500,
            }),
            verbs: VerbsProfile {
                post_overhead: us(0.30),
                poll_overhead: us(0.22),
                hca_msg: us(0.40),
                rdma_target: us(0.40),
            },
            // RoCE on the 10GigE adapters: verbs semantics, OS-bypass,
            // but Ethernet switch latency and a slightly slower RDMA
            // engine than the native DDR HCA (per the RDMA-over-Ethernet
            // study the paper cites, ref [13]).
            roce: Some(VerbsProfile {
                post_overhead: us(0.30),
                poll_overhead: us(0.22),
                hca_msg: us(0.55),
                rdma_target: us(0.55),
            }),
            host: HostProfile {
                copy_bw_bps: 16_000_000_000, // ~2 GB/s memcpy on Clovertown
                hash_lookup: us(0.40),
                worker_fixed: us(0.50),
                am_dispatch: us(0.25),
                // Calibrated so a 4 KB eager get lands at ≈ 20 µs (§VI).
                ucr_eager_per_kb_us: 1.90,
                ucr_rdma_per_kb_us: 0.30,
            },
            stacks: [
                // SDP on DDR: OS-bypass but byte-stream semantics; ~8×
                // slower than UCR for small messages, ~5× for large.
                Some(SocketStackProfile {
                    stack: Stack::Sdp,
                    app_send: us(4.8),
                    app_recv: us(6.4),
                    kernel_send: us(3.1),
                    kernel_recv: us(4.2),
                    per_kb_small_us: 27.0,
                    per_kb_bulk_us: 3.8,
                    pipeline_threshold: 16 * 1024,
                    jitter: None,
                }),
                // IPoIB connected mode on DDR: full kernel TCP/IP path.
                Some(SocketStackProfile {
                    stack: Stack::Ipoib,
                    app_send: us(5.5),
                    app_recv: us(7.3),
                    kernel_send: us(3.2),
                    kernel_recv: us(4.3),
                    per_kb_small_us: 28.0,
                    per_kb_bulk_us: 4.2,
                    pipeline_threshold: 16 * 1024,
                    jitter: None,
                }),
                // Chelsio TOE: hardware TCP, lowest sockets latency.
                Some(SocketStackProfile {
                    stack: Stack::TenGigEToe,
                    app_send: us(1.5),
                    app_recv: us(1.9),
                    kernel_send: us(2.0),
                    kernel_recv: us(2.8),
                    per_kb_small_us: 13.2,
                    per_kb_bulk_us: 3.2,
                    pipeline_threshold: 16 * 1024,
                    jitter: None,
                }),
                // Onboard 1GigE, plain kernel TCP.
                Some(SocketStackProfile {
                    stack: Stack::OneGigE,
                    app_send: us(9.0),
                    app_recv: us(12.0),
                    kernel_send: us(5.0),
                    kernel_recv: us(7.0),
                    per_kb_small_us: 20.0,
                    per_kb_bulk_us: 1.5, // wire (8 µs/KB) dominates bulk
                    pipeline_threshold: 16 * 1024,
                    jitter: None,
                }),
            ],
        }
    }

    /// Cluster B: Westmere + ConnectX QDR, PCIe Gen2. No 10GigE/1GigE runs
    /// in the paper.
    pub fn cluster_b() -> ClusterProfile {
        let ib = LinkProfile {
            // QDR 32 Gb/s signal → ~25.6 Gb/s (3.2 GB/s) effective through
            // PCIe Gen2 x8.
            bits_per_sec: 25_600_000_000,
            propagation: us(0.5),
            mtu: 2048,
        };
        ClusterProfile {
            name: "Cluster B (Westmere, ConnectX QDR, PCIe Gen2)",
            nodes: 144,
            ib,
            tengige: None,
            onegige: None,
            verbs: VerbsProfile {
                post_overhead: us(0.25),
                poll_overhead: us(0.15),
                hca_msg: us(0.28),
                rdma_target: us(0.30),
            },
            roce: None, // no Ethernet adapters on Cluster B
            host: HostProfile {
                copy_bw_bps: 22_400_000_000, // ~2.8 GB/s memcpy on Westmere
                hash_lookup: us(0.30),
                worker_fixed: us(0.30),
                am_dispatch: us(0.15),
                // Calibrated so a 4 KB eager get lands at ≈ 12 µs (§VI).
                ucr_eager_per_kb_us: 1.05,
                ucr_rdma_per_kb_us: 0.20,
            },
            stacks: [
                // SDP on QDR: the paper found it noisy and slightly worse
                // than IPoIB — "an implementation artifact of SDP on QDR
                // adapters". Modeled as added exponential spikes.
                Some(SocketStackProfile {
                    stack: Stack::Sdp,
                    app_send: us(6.7),
                    app_recv: us(8.7),
                    kernel_send: us(1.4),
                    kernel_recv: us(1.9),
                    per_kb_small_us: 21.0,
                    per_kb_bulk_us: 0.7,
                    pipeline_threshold: 16 * 1024,
                    jitter: Some(JitterProfile {
                        prob: 0.35,
                        mean: us(10.0),
                    }),
                }),
                Some(SocketStackProfile {
                    stack: Stack::Ipoib,
                    app_send: us(6.2),
                    app_recv: us(8.0),
                    kernel_send: us(1.3),
                    kernel_recv: us(1.7),
                    per_kb_small_us: 20.0,
                    per_kb_bulk_us: 0.6,
                    pipeline_threshold: 16 * 1024,
                    jitter: None,
                }),
                None, // no 10GigE cards on Cluster B (§VI-B)
                None, // 1GigE not evaluated on Cluster B
            ],
        }
    }
}

/// UCR's eager/rendezvous switch point: one 8 KB network buffer (§V,
/// "Note on Small Set/Get operations").
pub const UCR_EAGER_THRESHOLD: usize = 8 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_a_has_all_five_transports() {
        let a = ClusterProfile::cluster_a();
        for s in Stack::ALL {
            assert!(a.supports(s), "cluster A should support {s:?}");
        }
    }

    #[test]
    fn cluster_b_lacks_ethernet() {
        let b = ClusterProfile::cluster_b();
        assert!(b.supports(Stack::Ucr));
        assert!(b.supports(Stack::Sdp));
        assert!(b.supports(Stack::Ipoib));
        assert!(!b.supports(Stack::TenGigEToe));
        assert!(!b.supports(Stack::OneGigE));
        assert!(b.link(NetKind::TenGigE).is_none());
    }

    #[test]
    fn qdr_is_faster_than_ddr() {
        let a = ClusterProfile::cluster_a();
        let b = ClusterProfile::cluster_b();
        assert!(b.ib.bits_per_sec > a.ib.bits_per_sec);
        assert!(b.verbs.hca_msg < a.verbs.hca_msg);
        // 4 KB moves faster on QDR.
        assert!(b.ib.ser_time(4096) < a.ib.ser_time(4096));
    }

    #[test]
    fn stack_net_mapping() {
        assert_eq!(Stack::Ucr.net(), NetKind::Ib);
        assert_eq!(Stack::Sdp.net(), NetKind::Ib);
        assert_eq!(Stack::Ipoib.net(), NetKind::Ib);
        assert_eq!(Stack::TenGigEToe.net(), NetKind::TenGigE);
        assert_eq!(Stack::OneGigE.net(), NetKind::OneGigE);
        assert!(!Stack::Ucr.is_sockets());
        assert!(Stack::Sdp.is_sockets());
    }

    #[test]
    fn data_path_cost_regimes() {
        let a = ClusterProfile::cluster_a();
        let toe = a.socket_stack(Stack::TenGigEToe).unwrap();
        let small = toe.data_path_cost(1024);
        let at_threshold = toe.data_path_cost(16 * 1024);
        let past = toe.data_path_cost(32 * 1024);
        // Linear in the small regime.
        assert_eq!(small.as_nanos() * 16, at_threshold.as_nanos());
        // Bulk regime is cheaper per byte.
        let bulk_extra = past - at_threshold;
        assert!(bulk_extra < at_threshold);
    }

    #[test]
    fn sdp_jitter_only_on_cluster_b() {
        let a = ClusterProfile::cluster_a();
        let b = ClusterProfile::cluster_b();
        assert!(a.socket_stack(Stack::Sdp).unwrap().jitter.is_none());
        assert!(b.socket_stack(Stack::Sdp).unwrap().jitter.is_some());
    }

    #[test]
    fn eager_threshold_is_the_papers_8kb_buffer() {
        assert_eq!(UCR_EAGER_THRESHOLD, 8192);
    }

    #[test]
    #[should_panic(expected = "UCR is not a socket stack")]
    fn ucr_stack_slot_panics() {
        stack_slot(Stack::Ucr);
    }
}
