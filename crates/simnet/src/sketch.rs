//! Space-bounded workload sketches: count-min frequency estimation plus a
//! space-saving top-K heavy-hitter tracker.
//!
//! The paper's evaluation drives zipfian key popularity (§VI), and both of
//! the roadmap's open items — multi-node sharding and SLO-driven
//! self-tuning — need to know *which* keys carry the traffic without
//! storing a counter per key. This module provides that in O(width ×
//! depth + K) memory, independent of key-space size:
//!
//! * [`CountMin`] — the classic Cormode/Muthukrishnan sketch. An estimate
//!   never under-counts, and over-counts by at most `ε·N` (`ε = e/width`,
//!   `N` = total observations) with probability `1 − e^-depth`.
//! * [`TopK`] — Metwally's space-saving algorithm: at most `K` tracked
//!   entries; a tracked key's true count lies in `[count − err, count]`.
//! * [`WorkloadSketch`] — both of the above fed together, plus exact
//!   per-hash-slot load counters (the future-shard imbalance signal) and
//!   a read/write split per entry.
//!
//! Everything is pure host-side arithmetic: feeding a sketch costs zero
//! virtual time, and iteration orders are deterministic (sorted by
//! estimated count, ties by key bytes), so reports are replayable.

use std::collections::HashMap;

/// FNV-1a, the deterministic 64-bit key hash used throughout the sketch
/// layer (same family the store's hash table uses — stable across runs
/// and platforms).
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the per-row hash functions of the
/// count-min sketch from one 64-bit key hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Count-min sketch: `depth` rows of `width` counters.
pub struct CountMin {
    width: usize,
    depth: usize,
    rows: Vec<u64>,
    total: u64,
}

impl CountMin {
    /// A zeroed sketch. `width`/`depth` are clamped to at least 1.
    pub fn new(width: usize, depth: usize) -> CountMin {
        let width = width.max(1);
        let depth = depth.max(1);
        CountMin {
            width,
            depth,
            rows: vec![0; width * depth],
            total: 0,
        }
    }

    fn cell(&self, row: usize, hash: u64) -> usize {
        row * self.width + (mix(hash ^ (row as u64 + 1)) % self.width as u64) as usize
    }

    /// Counts one occurrence of the key with hash `hash`.
    pub fn observe(&mut self, hash: u64) {
        for r in 0..self.depth {
            let c = self.cell(r, hash);
            self.rows[c] += 1;
        }
        self.total += 1;
    }

    /// Estimated count for `hash`: never below the true count, above it
    /// by at most [`error_bound`](CountMin::error_bound) with high
    /// probability.
    pub fn estimate(&self, hash: u64) -> u64 {
        (0..self.depth)
            .map(|r| self.rows[self.cell(r, hash)])
            .min()
            .unwrap_or(0)
    }

    /// Total observations folded in.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `ε·N` over-count bound (`ε = e/width`), rounded up. Holds for
    /// any single estimate with probability `1 − e^-depth`.
    pub fn error_bound(&self) -> u64 {
        (std::f64::consts::E / self.width as f64 * self.total as f64).ceil() as u64
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        self.rows.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

/// One tracked heavy hitter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotKey {
    /// The key bytes.
    pub key: Vec<u8>,
    /// Estimated total count (space-saving guarantee: the true count is
    /// in `[count − err, count]`).
    pub count: u64,
    /// Maximum over-count inherited from the entry this one evicted.
    pub err: u64,
    /// Read observations attributed to this entry.
    pub reads: u64,
    /// Write observations attributed to this entry.
    pub writes: u64,
}

struct TopEntry {
    count: u64,
    err: u64,
    reads: u64,
    writes: u64,
}

/// Space-saving top-K tracker.
pub struct TopK {
    capacity: usize,
    entries: HashMap<Vec<u8>, TopEntry>,
}

impl TopK {
    /// An empty tracker holding at most `capacity` keys (clamped ≥ 1).
    pub fn new(capacity: usize) -> TopK {
        TopK {
            capacity: capacity.max(1),
            entries: HashMap::new(),
        }
    }

    /// Counts one occurrence of `key` (`is_write` splits the mix).
    pub fn observe(&mut self, key: &[u8], is_write: bool) {
        if let Some(e) = self.entries.get_mut(key) {
            e.count += 1;
            if is_write {
                e.writes += 1;
            } else {
                e.reads += 1;
            }
            return;
        }
        let (count, err) = if self.entries.len() < self.capacity {
            (1, 0)
        } else {
            // Evict the minimum-count entry (ties broken by smallest key
            // bytes so the choice is deterministic); the newcomer
            // inherits its count as both estimate and error.
            let victim = self
                .entries
                .iter()
                .min_by(|a, b| a.1.count.cmp(&b.1.count).then_with(|| a.0.cmp(b.0)))
                .map(|(k, e)| (k.clone(), e.count));
            match victim {
                Some((k, min_count)) => {
                    self.entries.remove(&k);
                    (min_count + 1, min_count)
                }
                None => (1, 0),
            }
        };
        self.entries.insert(
            key.to_vec(),
            TopEntry {
                count,
                err,
                reads: if is_write { 0 } else { 1 },
                writes: if is_write { 1 } else { 0 },
            },
        );
    }

    /// The tracked entries, highest estimated count first (ties by key
    /// bytes). At most `capacity` long.
    pub fn entries(&self) -> Vec<HotKey> {
        let mut out: Vec<HotKey> = self
            .entries
            .iter()
            .map(|(k, e)| HotKey {
                key: k.clone(),
                count: e.count,
                err: e.err,
                reads: e.reads,
                writes: e.writes,
            })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        out
    }

    /// Forgets every tracked key.
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

/// Workload-sketch tuning.
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Count-min row width (`ε = e/width`).
    pub width: usize,
    /// Count-min rows (confidence `1 − e^-depth`).
    pub depth: usize,
    /// Heavy hitters tracked by the space-saving pass.
    pub top_k: usize,
    /// Exact hash-slot counters (the future-shard load map).
    pub slots: usize,
}

impl Default for SketchConfig {
    fn default() -> SketchConfig {
        SketchConfig {
            width: 256,
            depth: 4,
            top_k: 16,
            slots: 64,
        }
    }
}

/// The combined per-node workload sketch: count-min + top-K + exact
/// hash-slot load counters + read/write totals.
pub struct WorkloadSketch {
    cms: CountMin,
    top: TopK,
    slots: Vec<u64>,
    reads: u64,
    writes: u64,
}

impl WorkloadSketch {
    /// An empty sketch with the given bounds.
    pub fn new(cfg: SketchConfig) -> WorkloadSketch {
        WorkloadSketch {
            cms: CountMin::new(cfg.width, cfg.depth),
            top: TopK::new(cfg.top_k),
            slots: vec![0; cfg.slots.max(1)],
            reads: 0,
            writes: 0,
        }
    }

    /// Feeds one key access. Returns the key's hash (so callers can
    /// reuse it for exemplar records without re-hashing).
    pub fn observe(&mut self, key: &[u8], is_write: bool) -> u64 {
        let h = hash_key(key);
        self.cms.observe(h);
        self.top.observe(key, is_write);
        let slot = (h % self.slots.len() as u64) as usize;
        self.slots[slot] += 1;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        h
    }

    /// Count-min estimate for `key`.
    pub fn estimate(&self, key: &[u8]) -> u64 {
        self.cms.estimate(hash_key(key))
    }

    /// The count-min over-count bound at the current total.
    pub fn error_bound(&self) -> u64 {
        self.cms.error_bound()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.cms.total()
    }

    /// Read observations.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write observations.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The tracked heavy hitters, hottest first.
    pub fn hot(&self) -> Vec<HotKey> {
        self.top.entries()
    }

    /// Exact per-hash-slot access counts.
    pub fn slot_counts(&self) -> &[u64] {
        &self.slots
    }

    /// Load-imbalance factor across hash slots: the hottest slot's count
    /// over the mean (1.0 = perfectly balanced; 0.0 before any traffic).
    /// This is the skew a future sharded deployment would inherit with
    /// `slots` shards.
    pub fn slot_imbalance(&self) -> f64 {
        let total: u64 = self.slots.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.slots.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / self.slots.len() as f64;
        max as f64 / mean
    }

    /// Hash slots that have seen at least one access.
    pub fn slots_active(&self) -> usize {
        self.slots.iter().filter(|&&c| c > 0).count()
    }

    /// Fraction of all observations landing on the tracked heavy
    /// hitters (how representative the hot table is).
    pub fn hot_coverage(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let hot: u64 = self
            .hot()
            .iter()
            .map(|h| h.count.saturating_sub(h.err))
            .sum();
        (hot as f64 / total as f64).min(1.0)
    }

    /// Zeroes every structure (a `stats reset`).
    pub fn reset(&mut self) {
        self.cms.reset();
        self.top.reset();
        self.slots.iter_mut().for_each(|s| *s = 0);
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_min_never_undercounts_and_respects_bound() {
        let mut cms = CountMin::new(128, 4);
        // 64 keys, key i observed i+1 times.
        for i in 0u64..64 {
            for _ in 0..=i {
                cms.observe(hash_key(format!("k{i}").as_bytes()));
            }
        }
        let bound = cms.error_bound();
        for i in 0u64..64 {
            let exact = i + 1;
            let est = cms.estimate(hash_key(format!("k{i}").as_bytes()));
            assert!(est >= exact, "undercount on k{i}: {est} < {exact}");
            assert!(
                est <= exact + bound,
                "k{i}: estimate {est} above exact {exact} + bound {bound}"
            );
        }
        assert_eq!(cms.total(), (1..=64).sum::<u64>());
    }

    #[test]
    fn top_k_finds_heavy_hitters_on_skew() {
        let mut top = TopK::new(8);
        // Two heavy keys among 50 singletons churning the low slots.
        for i in 0..50 {
            if i % 2 == 0 {
                top.observe(b"hot-a", false);
                top.observe(b"hot-a", true);
            } else {
                top.observe(b"hot-b", false);
            }
            top.observe(format!("cold-{i}").as_bytes(), false);
        }
        let entries = top.entries();
        assert_eq!(entries.len(), 8);
        assert_eq!(entries[0].key, b"hot-a");
        assert_eq!(entries[1].key, b"hot-b");
        // Space-saving guarantee: exact count within [count - err, count].
        let a = &entries[0];
        assert!(a.count - a.err <= 50 && 50 <= a.count, "{a:?}");
        assert_eq!(a.reads + a.writes, a.count);
        assert!(a.writes >= 25 - a.err);
        let b = &entries[1];
        assert!(b.count - b.err <= 25 && 25 <= b.count, "{b:?}");
    }

    #[test]
    fn workload_sketch_tracks_slots_and_mix() {
        let mut w = WorkloadSketch::new(SketchConfig {
            width: 64,
            depth: 3,
            top_k: 4,
            slots: 8,
        });
        for i in 0..100 {
            w.observe(b"hot", i % 10 == 0);
        }
        for i in 0..20 {
            w.observe(format!("k{i}").as_bytes(), false);
        }
        assert_eq!(w.total(), 120);
        assert_eq!(w.writes(), 10);
        assert_eq!(w.reads(), 110);
        assert!(w.estimate(b"hot") >= 100);
        assert_eq!(w.hot()[0].key, b"hot");
        // One key dominating forces slot imbalance well above balanced.
        assert!(w.slot_imbalance() > 2.0, "{}", w.slot_imbalance());
        assert_eq!(w.slot_counts().iter().sum::<u64>(), 120);
        assert!(w.slots_active() >= 2);
        assert!(w.hot_coverage() > 0.5);
        w.reset();
        assert_eq!(w.total(), 0);
        assert_eq!(w.slot_imbalance(), 0.0);
        assert!(w.hot().is_empty());
        assert_eq!(w.slots_active(), 0);
    }

    #[test]
    fn deterministic_reports() {
        let feed = |w: &mut WorkloadSketch| {
            for i in 0..200 {
                w.observe(format!("key-{}", i % 17).as_bytes(), i % 3 == 0);
            }
        };
        let mut a = WorkloadSketch::new(SketchConfig::default());
        let mut b = WorkloadSketch::new(SketchConfig::default());
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.hot(), b.hot());
        assert_eq!(a.slot_counts(), b.slot_counts());
    }
}
