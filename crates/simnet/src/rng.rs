//! Deterministic random numbers for the simulation.
//!
//! A thin wrapper over a seeded [`rand::rngs::StdRng`] (deterministic for a
//! given seed and rand version) plus the handful of distributions the
//! workloads and jitter models need. Keeping it behind one type means every
//! source of randomness in a run flows from the single seed passed to
//! [`crate::Sim::new`], which is what makes runs replayable.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// The simulation RNG. Obtain via [`crate::Sim::with_rng`].
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform u64 in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fills `buf` with random bytes (workload values).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Exponentially distributed duration with the given mean: the classic
    /// model for jitter tails and think times. Uses inverse-transform
    /// sampling; result is clamped to 64 means so a pathological draw cannot
    /// stall the simulation.
    pub fn gen_exp(&mut self, mean: SimDuration) -> SimDuration {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let x = -u.ln();
        let scaled = (mean.as_nanos() as f64 * x).min(mean.as_nanos() as f64 * 64.0);
        SimDuration::from_nanos(scaled as u64)
    }

    /// Zipf-like rank sample over `[0, n)` with skew `s` (s=0 is uniform).
    /// Uses the approximation by inverse CDF of the continuous bounded
    /// Pareto, which is accurate enough for cache-workload key popularity.
    pub fn gen_zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0);
        if s <= f64::EPSILON {
            return self.gen_index(n);
        }
        let u = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        if (s - 1.0).abs() < 1e-9 {
            // s == 1: inverse of log-CDF.
            let hn = (n as f64).ln();
            let x = (u * hn).exp();
            return (x as usize).min(n - 1);
        }
        let n_f = n as f64;
        let one_minus_s = 1.0 - s;
        let x = ((n_f.powf(one_minus_s) - 1.0) * u + 1.0).powf(1.0 / one_minus_s);
        (x as usize - 1).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.gen_index(7);
            assert!(i < 7);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exp_mean_is_plausible() {
        let mut r = SimRng::new(4);
        let mean = SimDuration::from_micros(10);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.gen_exp(mean).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        // Within 5% of the requested 10 us mean.
        assert!((avg - 10_000.0).abs() < 500.0, "avg {avg} ns");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = SimRng::new(5);
        let n = 1000;
        let mut counts = vec![0u32; n];
        for _ in 0..50_000 {
            let i = r.gen_zipf(n, 0.99);
            counts[i] += 1;
        }
        // Rank 0 should dominate the median rank by a wide margin.
        assert!(counts[0] > 20 * counts[n / 2].max(1));
        // Uniform when s == 0.
        let mut uni = [0u32; 10];
        for _ in 0..10_000 {
            uni[r.gen_zipf(10, 0.0)] += 1;
        }
        assert!(uni.iter().all(|&c| c > 700));
    }
}
