//! Perfetto/Chrome-trace export of [`trace`](crate::trace) event streams.
//!
//! [`chrome_trace_json`] serializes a recorded event slice into the Chrome
//! trace-event JSON format, so any simulated run opens directly in
//! `chrome://tracing` or [ui.perfetto.dev](https://ui.perfetto.dev):
//!
//! * each simulated **node becomes a process** (`pid` = node id + 1, named
//!   `nodeN`; fabric-global events land in process 0, `fabric`);
//! * each [`Track`](crate::trace::Track) becomes a **thread** within the
//!   node's process: `main` (tid 0), `workerN` (tid 1+N), `epN`
//!   (tid 100+N), `qpN` (tid 10000+N);
//! * span events ([`Phase::Begin`]/[`Phase::End`]) are emitted as async
//!   pairs (`ph:"b"/"e"`) keyed by the correlation id, with the layer as
//!   the category, so one operation's verbs/UCR/core spans line up;
//! * instants are `ph:"i"` thread-scoped markers.
//!
//! Timestamps are virtual microseconds with nanosecond precision. The
//! serializer is hand-rolled (the workspace has no serde); [`parse_json`]
//! is the matching minimal reader used by tests and the CI validation
//! step to prove the export is well-formed.

use std::fmt::Write as _;

use crate::trace::{Event, Phase, Track};

/// Thread id a [`Track`] maps to inside its node's process.
pub fn track_tid(track: Track) -> u64 {
    match track {
        Track::Main => 0,
        Track::Worker(w) => 1 + w as u64,
        Track::Endpoint(e) => 100 + e,
        Track::Qp(q) => 10_000 + q as u64,
    }
}

fn track_name(track: Track) -> String {
    match track {
        Track::Main => "main".to_string(),
        Track::Worker(w) => format!("worker{w}"),
        Track::Endpoint(e) => format!("ep{e}"),
        Track::Qp(q) => format!("qp{q}"),
    }
}

/// Renders folded collapsed-stack lines (as produced by
/// [`Profiler::folded_lines`](crate::profiler::Profiler::folded_lines))
/// in the standard flamegraph input format: one `path count` line per
/// stack, the path `;`-separated, the count in exclusive virtual
/// nanoseconds. Deterministic: callers pass pre-sorted lines and the
/// renderer preserves their order.
pub fn folded_text(lines: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (path, ns) in lines {
        let _ = writeln!(out, "{path} {ns}");
    }
    out
}

/// Parses collapsed-stack text back into `(path, count)` lines — the
/// inverse of [`folded_text`], used by tests and CI to prove the
/// artifact round-trips. The count is everything after the *last* space
/// (frame names never contain spaces here, but the split direction
/// matches the flamegraph convention).
pub fn parse_folded(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (path, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no count separator: {line:?}", i + 1))?;
        if path.is_empty() {
            return Err(format!("line {}: empty stack path", i + 1));
        }
        let n: u64 = count
            .parse()
            .map_err(|e| format!("line {}: bad count {count:?}: {e}", i + 1))?;
        out.push((path.to_string(), n));
    }
    Ok(out)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes `events` into a Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    // Metadata: name each process (node) and thread (track) once.
    let mut named: Vec<(u64, Option<u64>)> = Vec::new();
    for ev in events {
        let pid = ev.node.map(|n| n.0 as u64 + 1).unwrap_or(0);
        if !named.contains(&(pid, None)) {
            named.push((pid, None));
            let pname = match ev.node {
                Some(n) => format!("{n}"),
                None => "fabric".to_string(),
            };
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
                esc(&pname)
            );
        }
        let tid = track_tid(ev.track);
        if !named.contains(&(pid, Some(tid))) {
            named.push((pid, Some(tid)));
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                esc(&track_name(ev.track))
            );
        }
    }

    for ev in events {
        let pid = ev.node.map(|n| n.0 as u64 + 1).unwrap_or(0);
        let tid = track_tid(ev.track);
        let ts_ns = ev.at.as_nanos();
        let ts = format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000);
        sep(&mut out);
        match ev.phase {
            Phase::Begin | Phase::End => {
                let ph = if ev.phase == Phase::Begin { "b" } else { "e" };
                let _ = write!(
                    out,
                    "{{\"ph\":\"{ph}\",\"cat\":\"{}\",\"id\":\"0x{:x}\",\"name\":\"{}\",\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"op\":{},\"bytes\":{}}}}}",
                    ev.layer.label(),
                    ev.op,
                    esc(ev.name),
                    ev.op,
                    ev.bytes
                );
            }
            Phase::Instant => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"{}\",\"id\":\"0x{:x}\",\"name\":\"{}\",\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"op\":{},\"bytes\":{}}}}}",
                    ev.layer.label(),
                    ev.op,
                    esc(ev.name),
                    ev.op,
                    ev.bytes
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// A parsed JSON value — the minimal reader counterpart of the exporter.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document. Strict enough to validate the exporter's
/// output; errors carry the byte offset of the failure.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            c => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}"))?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                let _ = c;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Layer, Phase, Track};
    use crate::{NodeId, SimTime};

    fn ev(name: &'static str, phase: Phase, node: u32, track: Track, op: u64, ns: u64) -> Event {
        Event {
            layer: Layer::Verbs,
            name,
            phase,
            node: Some(NodeId(node)),
            track,
            op,
            bytes: 64,
            at: SimTime::from_nanos(ns),
        }
    }

    #[test]
    fn export_round_trips_through_parser() {
        let events = [
            ev("rdma_read", Phase::Begin, 0, Track::Qp(3), 7, 1500),
            ev("rdma_read", Phase::End, 0, Track::Qp(3), 7, 9500),
            ev("post_recv", Phase::Instant, 1, Track::Main, 0, 100),
        ];
        let json = chrome_trace_json(&events);
        let doc = parse_json(&json).expect("exporter output must parse");
        let items = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 process_name + 2 thread_name metadata records + 3 events.
        assert_eq!(items.len(), 7);
        let spans: Vec<_> = items
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("b") | Some("e")))
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("cat").and_then(Json::as_str), Some("verbs"));
        assert_eq!(spans[0].get("id").and_then(Json::as_str), Some("0x7"));
        // ts is microseconds with ns precision: 1500 ns -> 1.5 us.
        assert_eq!(spans[0].get("ts").and_then(Json::as_f64), Some(1.5));
        let instants: Vec<_> = items
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(
            instants[0].get("name").and_then(Json::as_str),
            Some("post_recv")
        );
    }

    #[test]
    fn tracks_map_to_stable_tids() {
        assert_eq!(track_tid(Track::Main), 0);
        assert_eq!(track_tid(Track::Worker(2)), 3);
        assert_eq!(track_tid(Track::Endpoint(5)), 105);
        assert_eq!(track_tid(Track::Qp(9)), 10_009);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\"\nA","c":{"d":null,"e":true}}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_arr).unwrap().len(), 3);
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x\"\nA"));
        assert_eq!(doc.get("c").and_then(|c| c.get("d")), Some(&Json::Null));
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("{}extra").is_err());
    }
}
