//! FIFO occupancy resources — the contention model.
//!
//! Links, host-channel-adapter pipelines, and kernel network processing are
//! all modeled as first-come-first-served serial resources: a request
//! occupies the resource for a service duration, starting no earlier than the
//! instant the previous request finished. This is the standard M/G/1-style
//! occupancy bookkeeping used in network simulators: it needs no task
//! scheduling (just a `next_free` watermark) yet produces correct queueing
//! delay and saturation throughput, which is what Figure 6 of the paper
//! (multi-client transactions/s) depends on.

use std::cell::Cell;

use crate::time::{SimDuration, SimTime};

/// A serial FIFO resource (link direction, HCA pipeline, kernel softirq...).
pub struct FifoResource {
    name: &'static str,
    next_free: Cell<SimTime>,
    busy_total: Cell<SimDuration>,
    jobs: Cell<u64>,
}

impl FifoResource {
    /// Creates an idle resource. `name` appears in diagnostics.
    pub fn new(name: &'static str) -> FifoResource {
        FifoResource {
            name,
            next_free: Cell::new(SimTime::ZERO),
            busy_total: Cell::new(SimDuration::ZERO),
            jobs: Cell::new(0),
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Occupies the resource for `service`, with the job arriving at
    /// `arrival`. Returns the completion instant: service begins at
    /// `max(arrival, previous completion)`.
    pub fn occupy_from(&self, arrival: SimTime, service: SimDuration) -> SimTime {
        let start = arrival.max(self.next_free.get());
        let finish = start + service;
        self.next_free.set(finish);
        self.busy_total.set(self.busy_total.get() + service);
        self.jobs.set(self.jobs.get() + 1);
        finish
    }

    /// Earliest instant a newly arriving job could start service.
    pub fn free_at(&self) -> SimTime {
        self.next_free.get()
    }

    /// Total service time accumulated (utilization numerator).
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total.get()
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs.get()
    }

    /// Utilization over `[SimTime::ZERO, now]`, in `[0, 1]` (can exceed 1
    /// transiently if jobs are booked beyond `now`).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total.get().as_nanos() as f64 / now.as_nanos() as f64
    }

    /// Resets accounting (between benchmark phases). The watermark is pulled
    /// back to `now` so stale bookings don't leak across phases.
    pub fn reset(&self, now: SimTime) {
        self.next_free.set(self.next_free.get().max(now));
        self.busy_total.set(SimDuration::ZERO);
        self.jobs.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let r = FifoResource::new("link");
        assert_eq!(r.occupy_from(t(100), d(50)), t(150));
    }

    #[test]
    fn back_to_back_jobs_queue() {
        let r = FifoResource::new("link");
        assert_eq!(r.occupy_from(t(0), d(100)), t(100));
        // Arrives while busy: waits.
        assert_eq!(r.occupy_from(t(10), d(100)), t(200));
        // Arrives after idle gap: starts at arrival.
        assert_eq!(r.occupy_from(t(500), d(100)), t(600));
    }

    #[test]
    fn fifo_order_holds_under_bursts() {
        let r = FifoResource::new("hca");
        let mut last = SimTime::ZERO;
        for _ in 0..32 {
            let fin = r.occupy_from(t(0), d(10));
            assert!(fin > last);
            last = fin;
        }
        assert_eq!(last, t(320));
        assert_eq!(r.jobs(), 32);
        assert_eq!(r.busy_total(), d(320));
    }

    #[test]
    fn utilization_math() {
        let r = FifoResource::new("link");
        r.occupy_from(t(0), d(250));
        r.occupy_from(t(250), d(250));
        assert!((r.utilization(t(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_accounting_but_not_future_bookings() {
        let r = FifoResource::new("link");
        r.occupy_from(t(0), d(1000));
        r.reset(t(100));
        assert_eq!(r.jobs(), 0);
        assert_eq!(r.busy_total(), SimDuration::ZERO);
        // Still busy until 1000 from the pre-reset booking.
        assert_eq!(r.occupy_from(t(100), d(10)), t(1010));
    }

    #[test]
    fn zero_service_is_free() {
        let r = FifoResource::new("link");
        assert_eq!(r.occupy_from(t(5), SimDuration::ZERO), t(5));
        assert_eq!(r.occupy_from(t(5), SimDuration::ZERO), t(5));
    }
}
