//! Virtual-time mutex with contention accounting.
//!
//! Real memcached's worker scaling is bounded by its coarse locks (the
//! global `slabs_lock` / item-lock discipline), not by the network. To let
//! the simulation *exhibit* that ceiling instead of idealizing it away,
//! [`VLock`] models a mutex over simulated time: acquiring an uncontended
//! lock costs **zero virtual nanoseconds**, while a contended acquire parks
//! the task on a FIFO waiter queue until the holder releases — exactly the
//! serialization a kernel futex or pthread mutex imposes, minus the
//! (irrelevant for our model) atomic-instruction cost.
//!
//! Every lock keeps wait/hold [`Histogram`]s and acquire/contention
//! counters, optionally mirrors them into registry [`Counter`]s (the
//! per-shard `mc.nodeN.shardS.*` families), and can emit `lock_wait` /
//! `lock_hold` tracer spans on [`Layer::Core`] so contention shows up on
//! the Perfetto timeline next to worker service spans.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::engine::Sim;
use crate::fabric::NodeId;
use crate::metrics::{Counter, Histogram, HistogramSummary};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Layer, Tracer, Track};

/// Registry counters a [`VLock`] mirrors its accounting into (all optional;
/// see [`VLock::bind_meters`]). Names follow the per-shard metric family
/// `mc.nodeN.shardS.{ops,lock_wait_ns,lock_hold_ns,contended}`.
#[derive(Clone)]
pub struct VLockMeters {
    /// Successful acquisitions (`.ops`).
    pub ops: Rc<Counter>,
    /// Cumulative nanoseconds spent waiting for the lock (`.lock_wait_ns`).
    pub lock_wait_ns: Rc<Counter>,
    /// Cumulative nanoseconds the lock was held (`.lock_hold_ns`).
    pub lock_hold_ns: Rc<Counter>,
    /// Acquisitions that had to park because the lock was busy
    /// (`.contended`).
    pub contended: Rc<Counter>,
}

/// Point-in-time totals for one lock (see [`VLock::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VLockStats {
    /// Successful acquisitions.
    pub acquires: u64,
    /// Acquisitions that found the lock busy and parked.
    pub contended: u64,
    /// Total virtual time spent waiting across all acquires.
    pub wait_total: SimDuration,
    /// Total virtual time the lock was held.
    pub hold_total: SimDuration,
}

/// One parked task: granted by the releaser in FIFO order (direct handoff),
/// so a stream of later arrivals can never starve an early waiter.
struct Waiter {
    ticket: u64,
    granted: bool,
    enqueued_at: SimTime,
    waker: Option<Waker>,
}

struct LockState {
    locked: bool,
    queue: VecDeque<Rc<RefCell<Waiter>>>,
    next_ticket: u64,
}

/// Tracer binding for `lock_wait`/`lock_hold` spans (see
/// [`VLock::set_tracer`]).
struct TraceBinding {
    tracer: Rc<Tracer>,
    node: NodeId,
}

/// A virtual-time FIFO mutex. Cheap to share (`Rc`); all waiting happens
/// over the sim scheduler, so an uncontended `lock().await` completes on
/// the first poll without advancing the clock.
pub struct VLock {
    sim: Sim,
    state: RefCell<LockState>,
    wait_hist: Histogram,
    hold_hist: Histogram,
    acquires: Cell<u64>,
    contended: Cell<u64>,
    wait_total: Cell<u64>,
    hold_total: Cell<u64>,
    meters: RefCell<Option<VLockMeters>>,
    trace: RefCell<Option<TraceBinding>>,
}

impl VLock {
    /// Creates an unlocked lock on `sim`'s clock.
    pub fn new(sim: &Sim) -> Rc<VLock> {
        Rc::new(VLock {
            sim: sim.clone(),
            state: RefCell::new(LockState {
                locked: false,
                queue: VecDeque::new(),
                next_ticket: 0,
            }),
            wait_hist: Histogram::new(),
            hold_hist: Histogram::new(),
            acquires: Cell::new(0),
            contended: Cell::new(0),
            wait_total: Cell::new(0),
            hold_total: Cell::new(0),
            meters: RefCell::new(None),
            trace: RefCell::new(None),
        })
    }

    /// Mirrors accounting into registry counters from now on.
    pub fn bind_meters(&self, meters: VLockMeters) {
        *self.meters.borrow_mut() = Some(meters);
    }

    /// Emits `lock_wait`/`lock_hold` spans on `tracer` from now on. Wait
    /// spans are only emitted for contended acquires (an uncontended
    /// acquire has no wait interval to show).
    pub fn set_tracer(&self, tracer: Rc<Tracer>, node: NodeId) {
        *self.trace.borrow_mut() = Some(TraceBinding { tracer, node });
    }

    /// Acquires the lock, waiting in FIFO order if it is held. `op` and
    /// `track` label the tracer spans (the request id and worker lane of
    /// the acquiring task).
    pub fn lock(self: &Rc<Self>, op: u64, track: Track) -> LockFuture {
        LockFuture {
            lock: self.clone(),
            op,
            track,
            waiter: None,
            done: false,
        }
    }

    /// True while some task holds the lock.
    pub fn is_locked(&self) -> bool {
        self.state.borrow().locked
    }

    /// Number of currently parked waiters.
    pub fn waiters(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Totals so far.
    pub fn stats(&self) -> VLockStats {
        VLockStats {
            acquires: self.acquires.get(),
            contended: self.contended.get(),
            wait_total: SimDuration::from_nanos(self.wait_total.get()),
            hold_total: SimDuration::from_nanos(self.hold_total.get()),
        }
    }

    /// Percentile summary of per-acquire wait times (zero for uncontended
    /// acquires).
    pub fn wait_summary(&self) -> HistogramSummary {
        self.wait_hist.summary()
    }

    /// Percentile summary of per-acquire hold times.
    pub fn hold_summary(&self) -> HistogramSummary {
        self.hold_hist.summary()
    }

    /// Books one successful acquisition that waited `wait`.
    fn account_acquire(&self, wait: SimDuration) {
        self.acquires.set(self.acquires.get() + 1);
        self.wait_total.set(self.wait_total.get() + wait.as_nanos());
        self.wait_hist.record(wait);
        if let Some(m) = self.meters.borrow().as_ref() {
            m.ops.inc();
            m.lock_wait_ns.add(wait.as_nanos());
        }
    }

    /// Releases the lock: direct handoff to the oldest waiter, else unlock.
    fn release(&self, acquired_at: SimTime, op: u64, track: Track) {
        let hold = self.sim.now().saturating_since(acquired_at);
        self.hold_total.set(self.hold_total.get() + hold.as_nanos());
        self.hold_hist.record(hold);
        if let Some(m) = self.meters.borrow().as_ref() {
            m.lock_hold_ns.add(hold.as_nanos());
        }
        if let Some(t) = self.trace.borrow().as_ref() {
            t.tracer.end(
                Layer::Core,
                "lock_hold",
                t.node,
                track,
                op,
                0,
                self.sim.now(),
            );
        }
        let mut st = self.state.borrow_mut();
        debug_assert!(st.locked, "release of an unlocked VLock");
        if let Some(next) = st.queue.pop_front() {
            // Ownership transfers directly: the lock never observably
            // unlocks, so a racing fresh acquire cannot jump the queue.
            let mut w = next.borrow_mut();
            w.granted = true;
            if let Some(wk) = w.waker.take() {
                wk.wake();
            }
        } else {
            st.locked = false;
        }
    }
}

impl std::fmt::Debug for VLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.borrow();
        write!(
            f,
            "VLock(locked={}, waiters={}, acquires={})",
            st.locked,
            st.queue.len(),
            self.acquires.get()
        )
    }
}

/// Future returned by [`VLock::lock`]; resolves to a [`VLockGuard`].
pub struct LockFuture {
    lock: Rc<VLock>,
    op: u64,
    track: Track,
    waiter: Option<Rc<RefCell<Waiter>>>,
    done: bool,
}

impl LockFuture {
    /// Builds the guard once the lock is ours, booking stats and spans.
    fn granted(&mut self, wait: SimDuration) -> VLockGuard {
        self.done = true;
        self.lock.account_acquire(wait);
        let now = self.lock.sim.now();
        if let Some(t) = self.lock.trace.borrow().as_ref() {
            t.tracer.begin(
                Layer::Core,
                "lock_hold",
                t.node,
                self.track,
                self.op,
                0,
                now,
            );
        }
        VLockGuard {
            lock: self.lock.clone(),
            acquired_at: now,
            op: self.op,
            track: self.track,
        }
    }
}

impl Future for LockFuture {
    type Output = VLockGuard;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<VLockGuard> {
        let this = self.get_mut();
        if let Some(w) = &this.waiter {
            let granted = {
                let mut w = w.borrow_mut();
                if !w.granted {
                    w.waker = Some(cx.waker().clone());
                }
                w.granted
            };
            return if granted {
                let enq = w.borrow().enqueued_at;
                let wait = this.lock.sim.now().saturating_since(enq);
                if let Some(t) = this.lock.trace.borrow().as_ref() {
                    t.tracer.end(
                        Layer::Core,
                        "lock_wait",
                        t.node,
                        this.track,
                        this.op,
                        0,
                        this.lock.sim.now(),
                    );
                }
                this.waiter = None;
                Poll::Ready(this.granted(wait))
            } else {
                Poll::Pending
            };
        }
        // First poll: take the lock immediately when free, else park.
        let now = this.lock.sim.now();
        let parked = {
            let mut st = this.lock.state.borrow_mut();
            if !st.locked {
                debug_assert!(st.queue.is_empty(), "unlocked VLock with waiters");
                st.locked = true;
                None
            } else {
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                let w = Rc::new(RefCell::new(Waiter {
                    ticket,
                    granted: false,
                    enqueued_at: now,
                    waker: Some(cx.waker().clone()),
                }));
                st.queue.push_back(w.clone());
                Some(w)
            }
        };
        match parked {
            None => Poll::Ready(this.granted(SimDuration::ZERO)),
            Some(w) => {
                this.lock.contended.set(this.lock.contended.get() + 1);
                if let Some(m) = this.lock.meters.borrow().as_ref() {
                    m.contended.inc();
                }
                if let Some(t) = this.lock.trace.borrow().as_ref() {
                    t.tracer.begin(
                        Layer::Core,
                        "lock_wait",
                        t.node,
                        this.track,
                        this.op,
                        0,
                        now,
                    );
                }
                this.waiter = Some(w);
                Poll::Pending
            }
        }
    }
}

impl Drop for LockFuture {
    fn drop(&mut self) {
        if self.done {
            return; // guard took over
        }
        let Some(w) = self.waiter.take() else {
            return; // never polled: no state to undo
        };
        if w.borrow().granted {
            // Granted but never observed: pass ownership on so the lock
            // does not leak held. The wait/hold never happened from the
            // caller's perspective, so only release bookkeeping runs.
            if let Some(t) = self.lock.trace.borrow().as_ref() {
                t.tracer.end(
                    Layer::Core,
                    "lock_wait",
                    t.node,
                    self.track,
                    self.op,
                    0,
                    self.lock.sim.now(),
                );
            }
            let mut st = self.lock.state.borrow_mut();
            if let Some(next) = st.queue.pop_front() {
                let mut n = next.borrow_mut();
                n.granted = true;
                if let Some(wk) = n.waker.take() {
                    wk.wake();
                }
            } else {
                st.locked = false;
            }
        } else {
            let ticket = w.borrow().ticket;
            let mut st = self.lock.state.borrow_mut();
            st.queue.retain(|q| q.borrow().ticket != ticket);
            if let Some(t) = self.lock.trace.borrow().as_ref() {
                t.tracer.end(
                    Layer::Core,
                    "lock_wait",
                    t.node,
                    self.track,
                    self.op,
                    0,
                    self.lock.sim.now(),
                );
            }
        }
    }
}

/// Exclusive access token; releases (with FIFO handoff) on drop.
pub struct VLockGuard {
    lock: Rc<VLock>,
    acquired_at: SimTime,
    op: u64,
    track: Track,
}

impl Drop for VLockGuard {
    fn drop(&mut self) {
        self.lock.release(self.acquired_at, self.op, self.track);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn sim() -> Sim {
        Sim::new(7)
    }

    #[test]
    fn uncontended_acquire_is_free() {
        let sim = sim();
        let lock = VLock::new(&sim);
        let s = sim.clone();
        let l = lock.clone();
        sim.block_on(async move {
            let t0 = s.now();
            for i in 0..10u64 {
                let g = l.lock(i, Track::Main).await;
                drop(g);
            }
            assert_eq!(s.now(), t0, "uncontended locking must cost zero time");
        });
        let st = lock.stats();
        assert_eq!(st.acquires, 10);
        assert_eq!(st.contended, 0);
        assert_eq!(st.wait_total, SimDuration::ZERO);
        assert_eq!(st.hold_total, SimDuration::ZERO);
    }

    #[test]
    fn contended_waiters_served_fifo() {
        let sim = sim();
        let lock = VLock::new(&sim);
        let order = Rc::new(RefCell::new(Vec::new()));
        // Task i arrives at t = i*10ns and holds for 100ns: all five
        // serialize, and the completion order must match arrival order.
        for i in 0..5u64 {
            let s = sim.clone();
            let l = lock.clone();
            let ord = order.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_nanos(10 * i)).await;
                let g = l.lock(i, Track::Main).await;
                s.sleep(SimDuration::from_nanos(100)).await;
                drop(g);
                ord.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
        let st = lock.stats();
        assert_eq!(st.acquires, 5);
        assert_eq!(st.contended, 4);
        assert_eq!(st.hold_total, SimDuration::from_nanos(500));
        // Waits: task i acquires at i*100, arrived at i*10.
        let expect: u64 = (1..5).map(|i| i * 100 - i * 10).sum();
        assert_eq!(st.wait_total, SimDuration::from_nanos(expect));
        assert_eq!(lock.wait_summary().count, 5);
        assert_eq!(lock.hold_summary().max, SimDuration::from_nanos(100));
    }

    #[test]
    fn meters_mirror_accounting() {
        let sim = sim();
        let lock = VLock::new(&sim);
        let reg = Metrics::new();
        lock.bind_meters(VLockMeters {
            ops: reg.counter("mc.node0.shard0.ops"),
            lock_wait_ns: reg.counter("mc.node0.shard0.lock_wait_ns"),
            lock_hold_ns: reg.counter("mc.node0.shard0.lock_hold_ns"),
            contended: reg.counter("mc.node0.shard0.contended"),
        });
        for _ in 0..2 {
            let s = sim.clone();
            let l = lock.clone();
            sim.spawn(async move {
                let g = l.lock(1, Track::Worker(0)).await;
                s.sleep(SimDuration::from_nanos(50)).await;
                drop(g);
            });
        }
        sim.run();
        assert_eq!(reg.counter_value("mc.node0.shard0.ops"), 2);
        assert_eq!(reg.counter_value("mc.node0.shard0.contended"), 1);
        assert_eq!(reg.counter_value("mc.node0.shard0.lock_hold_ns"), 100);
        assert_eq!(reg.counter_value("mc.node0.shard0.lock_wait_ns"), 50);
    }

    #[test]
    fn dropped_waiter_leaves_queue() {
        let sim = sim();
        let lock = VLock::new(&sim);
        let l = lock.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let _g = l.lock(1, Track::Main).await;
            s.sleep(SimDuration::from_nanos(100)).await;
        });
        // A waiter that times out must not wedge the queue for later ones.
        let l2 = lock.clone();
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_nanos(10)).await;
            let fut = l2.lock(2, Track::Main);
            let r = crate::sync::timeout(&s2, SimDuration::from_nanos(20), fut).await;
            assert!(r.is_err(), "timeout must fire while the lock is held");
        });
        let l3 = lock.clone();
        let s3 = sim.clone();
        let done = sim.spawn(async move {
            s3.sleep(SimDuration::from_nanos(20)).await;
            let g = l3.lock(3, Track::Main).await;
            let at = s3.now();
            drop(g);
            at
        });
        sim.run();
        let at = sim.block_on(done);
        assert_eq!(at.as_nanos(), 100, "lock hands off to the live waiter");
        assert_eq!(lock.waiters(), 0);
        assert!(!lock.is_locked());
    }

    #[test]
    fn tracer_spans_balance() {
        use crate::trace::{EventRecorder, Phase, Tracer};
        let sim = sim();
        let tracer = Tracer::new();
        let rec = EventRecorder::new();
        tracer.add_sink(rec.clone());
        let lock = VLock::new(&sim);
        lock.set_tracer(tracer.clone(), NodeId(0));
        for i in 1..=3u64 {
            let s = sim.clone();
            let l = lock.clone();
            sim.spawn(async move {
                let g = l.lock(i, Track::Worker(0)).await;
                s.sleep(SimDuration::from_nanos(25)).await;
                drop(g);
            });
        }
        sim.run();
        let evs = rec.events();
        let count = |name: &str, ph: Phase| {
            evs.iter()
                .filter(|e| e.name == name && e.phase == ph)
                .count()
        };
        assert_eq!(count("lock_hold", Phase::Begin), 3);
        assert_eq!(count("lock_hold", Phase::End), 3);
        // Two of the three acquires waited.
        assert_eq!(count("lock_wait", Phase::Begin), 2);
        assert_eq!(count("lock_wait", Phase::End), 2);
    }
}
