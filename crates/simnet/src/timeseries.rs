//! Time-series sampling, Prometheus-style exposition, and health rules.
//!
//! The paper's whole evaluation is about *where the knee is*: latency flat
//! until the fabric saturates (§VI-B), throughput scaling with clients
//! until per-message overhead dominates (§VI-C). End-of-run aggregates
//! ([`crate::metrics`]) cannot show a knee — it lives in the *trajectory*.
//! This module samples every registered instrument on a virtual-time
//! interval into bounded per-metric rings, so the trajectory becomes data:
//!
//! * [`Sampler`] — periodic snapshots of all counters (as rates over the
//!   actual inter-sample interval), gauges (value + high/low watermarks),
//!   and histogram summaries. Sampling costs **zero virtual time**: ticks
//!   are raw scheduler events (no task, no polls, no wakeups shared with
//!   protocol code), so a sampled run and a bare run read identical
//!   clocks — the same discipline as [`crate::trace`].
//! * [`prometheus_text`] — the registry rendered in Prometheus text
//!   exposition format with `# TYPE`/`# HELP` lines and `node`/`worker`/
//!   `layer` labels recovered from the dotted metric names (surfaced as
//!   `stats prom` in the memcached protocol and
//!   `Cluster::export_prometheus`).
//! * [`HealthMonitor`] — declarative rolling-window rules turning series
//!   into state: p99 inflation over a frozen baseline or a flat
//!   throughput derivative under growing queue depth ⇒
//!   [`Health::Saturated`]; error rate ⇒ [`Health::Degraded`] (which also
//!   dumps the flight recorder). Transitions are emitted into the
//!   [`Tracer`] so they land on the same timeline as the events that
//!   caused them.
//!
//! A sampler re-arms itself until [`Sampler::stop`]: drive simulations
//! with `block_on`/`run_until` (leftover ticks are discarded), not the
//! run-to-empty `Sim::run`.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use crate::engine::Sim;
use crate::exemplar::{Exemplar, ExemplarRing};
use crate::fabric::NodeId;
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Layer, Tracer, Track};

// ---------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------

/// One sample of one series: a value at a virtual timestamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplePoint {
    /// Virtual time the snapshot was taken.
    pub at: SimTime,
    /// The sampled value.
    pub value: f64,
}

/// Sampler tuning.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Virtual time between automatic snapshots.
    pub interval: SimDuration,
    /// Points kept per series; older points are dropped (and counted).
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            interval: SimDuration::from_micros(100),
            capacity: 512,
        }
    }
}

/// Binds a [`HealthMonitor`] to named instruments: each tick the sampler
/// assembles a [`HealthInput`] from these and feeds the monitor.
pub struct MonitorBinding {
    /// The monitor to drive.
    pub monitor: Rc<HealthMonitor>,
    /// Counter whose rate is the throughput signal (ops completed).
    pub throughput_counter: String,
    /// Gauge read as the queue-depth signal (in-flight occupancy,
    /// worker backlog).
    pub queue_gauge: String,
    /// Histogram whose p99 (µs) is the latency signal, if any.
    pub latency_hist: Option<String>,
    /// Counter whose rate is the error/timeout signal, if any.
    pub error_counter: Option<String>,
    /// SLO trackers sampled each tick: compliance and burn-rate series
    /// are pushed per tracker, and the *worst* burn rate becomes the
    /// [`HealthInput::budget_burn`] signal.
    pub slos: Vec<Rc<SloTracker>>,
}

struct Ring {
    points: VecDeque<SamplePoint>,
}

struct SamplerInner {
    sim: Sim,
    metrics: Rc<Metrics>,
    cfg: SamplerConfig,
    series: RefCell<BTreeMap<String, Ring>>,
    last_counter: RefCell<HashMap<String, u64>>,
    last_at: Cell<Option<SimTime>>,
    running: Cell<bool>,
    ticks: Cell<u64>,
    dropped: Cell<u64>,
    binding: RefCell<Option<MonitorBinding>>,
}

/// Periodic zero-virtual-time snapshots of a [`Metrics`] registry.
///
/// Counters are recorded as **rates** under `<name>.rate` (per second of
/// virtual time, over the actual — possibly irregular — interval since
/// the previous snapshot; the first snapshot only seeds the baseline).
/// Gauges are recorded under `<name>` plus `<name>.high`/`<name>.low`
/// watermarks; histograms under `<name>.{count,mean_us,p99_us}`.
pub struct Sampler {
    inner: Rc<SamplerInner>,
}

impl Sampler {
    /// A sampler over `metrics`, not yet started. Manual snapshots via
    /// [`sample_now`](Sampler::sample_now) work without starting it.
    pub fn new(sim: &Sim, metrics: &Rc<Metrics>, cfg: SamplerConfig) -> Sampler {
        Sampler {
            inner: Rc::new(SamplerInner {
                sim: sim.clone(),
                metrics: metrics.clone(),
                cfg,
                series: RefCell::new(BTreeMap::new()),
                last_counter: RefCell::new(HashMap::new()),
                last_at: Cell::new(None),
                running: Cell::new(false),
                ticks: Cell::new(0),
                dropped: Cell::new(0),
                binding: RefCell::new(None),
            }),
        }
    }

    /// Attaches a health monitor fed on every snapshot.
    pub fn bind_monitor(&self, binding: MonitorBinding) {
        *self.inner.binding.borrow_mut() = Some(binding);
    }

    /// Starts periodic snapshots, the first one `interval` from now.
    /// Idempotent while running.
    pub fn start(&self) {
        if self.inner.running.replace(true) {
            return;
        }
        Sampler::arm(self.inner.clone());
    }

    /// Stops re-arming. The one already-scheduled tick (if any) becomes a
    /// no-op when it fires.
    pub fn stop(&self) {
        self.inner.running.set(false);
    }

    /// Takes one snapshot immediately (usable whether or not the periodic
    /// schedule is running — tests drive irregular intervals this way).
    pub fn sample_now(&self) {
        SamplerInner::sample(&self.inner);
    }

    /// Snapshots taken so far.
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.get()
    }

    /// Points discarded because their series ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// All series names with at least one point, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.series.borrow().keys().cloned().collect()
    }

    /// The points of one series, oldest first; `None` if never written.
    pub fn series(&self, name: &str) -> Option<Vec<SamplePoint>> {
        self.inner
            .series
            .borrow()
            .get(name)
            .map(|r| r.points.iter().copied().collect())
    }

    /// Just the values of one series, oldest first (empty if absent).
    pub fn values(&self, name: &str) -> Vec<f64> {
        self.series(name)
            .map(|pts| pts.iter().map(|p| p.value).collect())
            .unwrap_or_default()
    }

    fn arm(inner: Rc<SamplerInner>) {
        let interval = inner.cfg.interval;
        let sim = inner.sim.clone();
        sim.schedule(interval, move || {
            if !inner.running.get() {
                return;
            }
            SamplerInner::sample(&inner);
            Sampler::arm(inner.clone());
        });
    }
}

impl SamplerInner {
    fn push(&self, name: &str, at: SimTime, value: f64) {
        let mut series = self.series.borrow_mut();
        let ring = series.entry(name.to_string()).or_insert_with(|| Ring {
            points: VecDeque::new(),
        });
        while ring.points.len() >= self.cfg.capacity.max(1) {
            ring.points.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        ring.points.push_back(SamplePoint { at, value });
    }

    fn sample(inner: &Rc<SamplerInner>) {
        let now = inner.sim.now();
        let dt_secs = inner
            .last_at
            .get()
            .map(|prev| now.saturating_since(prev).as_secs_f64());

        // Counters: rate over the actual interval since the previous
        // snapshot. A counter that moved backwards (a `stats reset`
        // between samples) restarts from zero instead of underflowing.
        let mut rates: HashMap<String, f64> = HashMap::new();
        {
            let mut last = inner.last_counter.borrow_mut();
            for (name, c) in inner.metrics.counters() {
                let cur = c.get();
                let prev = last.insert(name.clone(), cur);
                if let (Some(dt), Some(prev)) = (dt_secs, prev) {
                    if dt > 0.0 {
                        let delta = if cur >= prev { cur - prev } else { cur };
                        let rate = delta as f64 / dt;
                        inner.push(&format!("{name}.rate"), now, rate);
                        rates.insert(name, rate);
                    }
                }
            }
        }
        for (name, g) in inner.metrics.gauges() {
            inner.push(&name, now, g.get());
            inner.push(&format!("{name}.high"), now, g.high());
            inner.push(&format!("{name}.low"), now, g.low());
        }
        for (name, h) in inner.metrics.histograms() {
            let s = h.summary();
            inner.push(&format!("{name}.count"), now, s.count as f64);
            inner.push(&format!("{name}.mean_us"), now, s.mean.as_micros_f64());
            inner.push(&format!("{name}.p99_us"), now, s.p99.as_micros_f64());
        }
        inner.last_at.set(Some(now));
        inner.ticks.set(inner.ticks.get() + 1);

        if let Some(b) = inner.binding.borrow().as_ref() {
            let rate_of = |name: &Option<String>| {
                name.as_ref()
                    .and_then(|n| rates.get(n).copied())
                    .unwrap_or(0.0)
            };
            let mut worst_burn = 0.0f64;
            for slo in &b.slos {
                let compliance = slo.compliance(now);
                let burn = slo.burn_rate(now);
                inner.push(&format!("{}.compliance", slo.spec().name), now, compliance);
                inner.push(&format!("{}.burn", slo.spec().name), now, burn);
                worst_burn = worst_burn.max(burn);
            }
            let input = HealthInput {
                at: now,
                throughput: rates.get(&b.throughput_counter).copied().unwrap_or(0.0),
                queue_depth: inner.metrics.gauge_value(&b.queue_gauge).unwrap_or(0.0),
                p99_us: b
                    .latency_hist
                    .as_ref()
                    .map(|n| inner.metrics.histogram(n).percentile(0.99).as_micros_f64())
                    .unwrap_or(0.0),
                errors_per_sec: rate_of(&b.error_counter),
                budget_burn: worst_burn,
            };
            b.monitor.observe(input);
        }
    }
}

// ---------------------------------------------------------------------
// Prometheus-text exposition
// ---------------------------------------------------------------------

const LAYER_PREFIXES: [&str; 10] = [
    "wire", "verbs", "ucr", "core", "mc", "client", "bench", "latency", "trace", "profile",
];
const NET_SEGMENTS: [&str; 3] = ["ib", "roce", "gige"];

fn sanitize(seg: &str) -> String {
    seg.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Splits a dotted registry name into a Prometheus family name plus
/// labels: a leading layer prefix becomes `layer="..."`, `nodeN` /
/// `workerN` / `classN` / `shardS` segments become
/// `node`/`worker`/`class`/`shard` labels,
/// a fabric segment (`ib`/`roce`/`gige`) becomes `net`, and whatever
/// remains joins into `rmc_<name>`.
fn family_and_labels(name: &str) -> (String, Vec<(&'static str, String)>) {
    let mut labels: Vec<(&'static str, String)> = Vec::new();
    let mut parts: Vec<String> = Vec::new();
    for (i, seg) in name.split('.').enumerate() {
        if i == 0 && LAYER_PREFIXES.contains(&seg) {
            labels.push(("layer", seg.to_string()));
        } else if NET_SEGMENTS.contains(&seg) {
            labels.push(("net", seg.to_string()));
        } else if let Some(n) = seg
            .strip_prefix("node")
            .filter(|r| r.parse::<u32>().is_ok())
        {
            labels.push(("node", format!("node{n}")));
        } else if let Some(n) = seg
            .strip_prefix("worker")
            .filter(|r| r.parse::<u32>().is_ok())
        {
            labels.push(("worker", n.to_string()));
        } else if let Some(n) = seg
            .strip_prefix("class")
            .filter(|r| r.parse::<u32>().is_ok())
        {
            labels.push(("class", n.to_string()));
        } else if let Some(n) = seg
            .strip_prefix("shard")
            .filter(|r| r.parse::<u32>().is_ok())
        {
            labels.push(("shard", n.to_string()));
        } else {
            parts.push(sanitize(seg));
        }
    }
    if parts.is_empty() {
        parts.push("value".to_string());
    }
    (format!("rmc_{}", parts.join("_")), labels)
}

fn label_str(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

struct Family {
    kind: &'static str,
    help: String,
    lines: Vec<String>,
}

fn add_line(
    families: &mut BTreeMap<String, Family>,
    family: &str,
    kind: &'static str,
    help: &str,
    line: String,
) {
    let f = families
        .entry(family.to_string())
        .or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            lines: Vec::new(),
        });
    f.lines.push(line);
}

/// Renders the whole registry in Prometheus text exposition format:
/// counters and gauges as their native types (gauges additionally as
/// `<family>_high`/`<family>_low` watermark series), histograms as
/// summaries in microseconds (`quantile` label plus `_sum`/`_count`).
/// Output is fully deterministic: families and series sorted by name.
pub fn prometheus_text(metrics: &Metrics) -> String {
    prometheus_text_with_exemplars(metrics, &[])
}

/// [`prometheus_text`] plus Prometheus-style exemplar annotations: each
/// [`Exemplar`] is rendered as a `# EXEMPLAR` comment line attached to
/// the summary family of the histogram it was captured from, carrying the
/// correlating span id, op, key hash, and the latency/threshold pair.
/// With an empty slice the output is byte-identical to
/// [`prometheus_text`].
pub fn prometheus_text_with_exemplars(metrics: &Metrics, exemplars: &[Exemplar]) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (name, c) in metrics.counters() {
        let (family, labels) = family_and_labels(&name);
        add_line(
            &mut families,
            &family,
            "counter",
            &format!("Event count from registry metric `{name}`."),
            format!("{family}{} {}", label_str(&labels), c.get()),
        );
    }
    for (name, g) in metrics.gauges() {
        let (family, labels) = family_and_labels(&name);
        let ls = label_str(&labels);
        let help = format!("Level from registry metric `{name}`.");
        add_line(
            &mut families,
            &family,
            "gauge",
            &help,
            format!("{family}{ls} {}", g.get()),
        );
        add_line(
            &mut families,
            &format!("{family}_high"),
            "gauge",
            &format!("High watermark of registry metric `{name}`."),
            format!("{family}_high{ls} {}", g.high()),
        );
        add_line(
            &mut families,
            &format!("{family}_low"),
            "gauge",
            &format!("Low watermark of registry metric `{name}`."),
            format!("{family}_low{ls} {}", g.low()),
        );
    }
    for (name, h) in metrics.histograms() {
        let (family, labels) = family_and_labels(&name);
        let family = format!("{family}_us");
        let s = h.summary();
        let mut lines = Vec::new();
        for (q, v) in [(0.5, s.p50), (0.95, s.p95), (0.99, s.p99)] {
            let mut labels = labels.clone();
            labels.push(("quantile", format!("{q}")));
            lines.push(format!(
                "{family}{} {}",
                label_str(&labels),
                v.as_micros_f64()
            ));
        }
        let ls = label_str(&labels);
        lines.push(format!(
            "{family}_sum{ls} {}",
            s.mean.as_micros_f64() * s.count as f64
        ));
        lines.push(format!("{family}_count{ls} {}", s.count));
        for line in lines {
            add_line(
                &mut families,
                &family,
                "summary",
                &format!("Virtual-time summary (microseconds) of histogram `{name}`."),
                line,
            );
        }
    }

    // Exemplar annotations keyed by the summary family they exemplify
    // (in ring order — capture order is already deterministic).
    let mut notes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for e in exemplars {
        let family = format!("{}_us", family_and_labels(&e.hist).0);
        notes.entry(family.clone()).or_default().push(format!(
            "# EXEMPLAR {family} span=\"{}\" op=\"{}\" key=\"0x{:016x}\" bytes=\"{}\" \
             value_us={} threshold_us={} at_us={}",
            e.span_id,
            e.op,
            e.key_hash,
            e.bytes,
            e.latency.as_micros_f64(),
            e.threshold.as_micros_f64(),
            e.at.as_micros_f64(),
        ));
    }

    let mut out = String::new();
    for (family, f) in &mut families {
        out.push_str(&format!("# HELP {family} {}\n", f.help));
        out.push_str(&format!("# TYPE {family} {}\n", f.kind));
        f.lines.sort();
        for line in &f.lines {
            out.push_str(line);
            out.push('\n');
        }
        if let Some(lines) = notes.get(family) {
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// SLO / error-budget tracking
// ---------------------------------------------------------------------

/// Virtual-time buckets per rolling SLO window (compliance is evaluated
/// over the last `SLO_BUCKETS` buckets, so window resolution is
/// `window / SLO_BUCKETS`).
pub const SLO_BUCKETS: u64 = 16;

/// A per-op service-level objective: "`objective` of ops complete within
/// `latency_target`, judged over a rolling `window` of virtual time".
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Series-name stem for sampler output (e.g. `"slo.node1.get"`);
    /// the sampler derives `<name>.compliance` / `<name>.burn` from it.
    pub name: String,
    /// An op is *good* when its latency is ≤ this target.
    pub latency_target: SimDuration,
    /// Required good fraction (e.g. `0.99`); `1 - objective` is the
    /// error budget.
    pub objective: f64,
    /// Rolling window over which compliance is judged.
    pub window: SimDuration,
}

impl Default for SloSpec {
    fn default() -> SloSpec {
        SloSpec {
            name: "slo.op".to_string(),
            latency_target: SimDuration::from_micros(100),
            objective: 0.99,
            window: SimDuration::from_millis(10),
        }
    }
}

#[derive(Clone, Copy)]
struct SloBucket {
    idx: u64,
    good: u64,
    bad: u64,
}

/// Event-driven rolling compliance and burn rate for one [`SloSpec`].
///
/// Completed ops are fed via [`record`](SloTracker::record); samples land
/// in `SLO_BUCKETS` virtual-time buckets spanning the spec's window, so
/// memory is O(1) regardless of rate. *Burn rate* is the classic
/// error-budget multiplier: the observed bad fraction over the window
/// divided by the budget (`1 - objective`) — `1.0` means the budget is
/// being spent exactly as provisioned, `10.0` means ten times too fast.
pub struct SloTracker {
    spec: SloSpec,
    bucket_width: SimDuration,
    buckets: RefCell<VecDeque<SloBucket>>,
    total_good: Cell<u64>,
    total_bad: Cell<u64>,
}

impl SloTracker {
    /// A fresh tracker (compliance `1.0`, burn `0.0`).
    pub fn new(spec: SloSpec) -> Rc<SloTracker> {
        let width = SimDuration::from_nanos((spec.window.as_nanos() / SLO_BUCKETS).max(1));
        Rc::new(SloTracker {
            spec,
            bucket_width: width,
            buckets: RefCell::new(VecDeque::new()),
            total_good: Cell::new(0),
            total_bad: Cell::new(0),
        })
    }

    /// The objective this tracker judges against.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    fn bucket_idx(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.bucket_width.as_nanos().max(1)
    }

    fn prune(&self, now_idx: u64) {
        let mut b = self.buckets.borrow_mut();
        let oldest_kept = now_idx.saturating_sub(SLO_BUCKETS - 1);
        while b.front().is_some_and(|f| f.idx < oldest_kept) {
            b.pop_front();
        }
    }

    /// Feeds one completed op observed at virtual time `at`.
    pub fn record(&self, latency: SimDuration, at: SimTime) {
        let good = latency <= self.spec.latency_target;
        if good {
            self.total_good.set(self.total_good.get() + 1);
        } else {
            self.total_bad.set(self.total_bad.get() + 1);
        }
        let idx = self.bucket_idx(at);
        self.prune(idx);
        let mut b = self.buckets.borrow_mut();
        match b.back_mut() {
            Some(back) if back.idx == idx => {
                if good {
                    back.good += 1;
                } else {
                    back.bad += 1;
                }
            }
            _ => b.push_back(SloBucket {
                idx,
                good: good as u64,
                bad: !good as u64,
            }),
        }
    }

    fn window_counts(&self, now: SimTime) -> (u64, u64) {
        self.prune(self.bucket_idx(now));
        let b = self.buckets.borrow();
        b.iter()
            .fold((0, 0), |(g, e), bk| (g + bk.good, e + bk.bad))
    }

    /// Good fraction over the rolling window (`1.0` when idle).
    pub fn compliance(&self, now: SimTime) -> f64 {
        let (good, bad) = self.window_counts(now);
        if good + bad == 0 {
            return 1.0;
        }
        good as f64 / (good + bad) as f64
    }

    /// Error-budget burn multiplier over the rolling window.
    pub fn burn_rate(&self, now: SimTime) -> f64 {
        let bad_fraction = 1.0 - self.compliance(now);
        let budget = (1.0 - self.spec.objective).max(1e-9);
        bad_fraction / budget
    }

    /// Ops judged good since construction or the last reset.
    pub fn good(&self) -> u64 {
        self.total_good.get()
    }

    /// Ops judged bad since construction or the last reset.
    pub fn bad(&self) -> u64 {
        self.total_bad.get()
    }

    /// Clears the rolling window and lifetime totals (a `stats reset`).
    pub fn reset(&self) {
        self.buckets.borrow_mut().clear();
        self.total_good.set(0);
        self.total_bad.set(0);
    }
}

// ---------------------------------------------------------------------
// Health monitoring
// ---------------------------------------------------------------------

/// Overall system condition derived from rolling-window rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Health {
    /// No rule fires: latency near baseline, throughput still scaling.
    Healthy,
    /// The knee: more offered load buys no throughput while queues (or
    /// p99) grow — the §VI saturation regime.
    Saturated,
    /// Errors/timeouts above threshold: something is failing, not just
    /// full.
    Degraded,
}

impl Health {
    /// Stable lower-case name.
    pub fn label(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Saturated => "saturated",
            Health::Degraded => "degraded",
        }
    }

    fn code(self) -> u64 {
        match self {
            Health::Healthy => 0,
            Health::Saturated => 1,
            Health::Degraded => 2,
        }
    }
}

/// Declarative thresholds evaluated over the rolling window.
#[derive(Clone, Debug)]
pub struct HealthRules {
    /// Rolling-window length in samples; rules fire only on a full
    /// window.
    pub window: usize,
    /// Number of leading samples (with a nonzero p99) frozen as the
    /// latency baseline.
    pub baseline_window: usize,
    /// Mean windowed p99 above `baseline × this` ⇒ [`Health::Saturated`].
    pub p99_inflation: f64,
    /// Relative throughput growth across the window below this, *while*
    /// queue depth grew, ⇒ [`Health::Saturated`] (derivative ≈ 0 under
    /// rising load).
    pub min_throughput_gain: f64,
    /// Queue-depth growth across the window that must accompany the flat
    /// throughput derivative.
    pub queue_growth: f64,
    /// Mean windowed error rate (per second) above this ⇒
    /// [`Health::Degraded`].
    pub max_error_rate: f64,
    /// Mean windowed error-budget burn multiplier above this ⇒
    /// [`Health::Degraded`] (the SLO is being violated fast enough to
    /// exhaust its budget `max_budget_burn`× too early).
    pub max_budget_burn: f64,
}

impl Default for HealthRules {
    fn default() -> HealthRules {
        HealthRules {
            window: 8,
            baseline_window: 4,
            p99_inflation: 3.0,
            min_throughput_gain: 0.15,
            queue_growth: 0.0,
            max_error_rate: 1.0,
            max_budget_burn: 8.0,
        }
    }
}

/// One observation fed to the monitor (one sampler tick, or one point of
/// an offered-load sweep).
#[derive(Clone, Copy, Debug)]
pub struct HealthInput {
    /// Virtual timestamp of the observation.
    pub at: SimTime,
    /// Throughput signal (ops per second).
    pub throughput: f64,
    /// Queue-depth signal (in-flight window, worker backlog).
    pub queue_depth: f64,
    /// p99 latency signal in microseconds (0 = unavailable; the latency
    /// rule is skipped).
    pub p99_us: f64,
    /// Error/timeout rate signal (per second).
    pub errors_per_sec: f64,
    /// Worst SLO error-budget burn multiplier across bound trackers
    /// (0 = no SLO bound or budget untouched).
    pub budget_burn: f64,
}

/// One recorded state change.
#[derive(Clone, Debug)]
pub struct HealthTransition {
    /// When the monitor switched state.
    pub at: SimTime,
    /// State before.
    pub from: Health,
    /// State after.
    pub to: Health,
    /// Which rule fired (human-readable).
    pub reason: String,
}

/// Evaluates [`HealthRules`] over a rolling window of [`HealthInput`]s.
///
/// On every state change the monitor emits a `health_transition`
/// [`Layer::Core`] instant into the attached tracer (`op` = new state
/// code, `bytes` = old state code) and, on a transition *to*
/// [`Health::Degraded`], triggers a flight-recorder dump via
/// [`Tracer::fault`] so the event history around the failure is
/// preserved.
pub struct HealthMonitor {
    rules: HealthRules,
    node: NodeId,
    tracer: RefCell<Option<Rc<Tracer>>>,
    exemplars: RefCell<Option<Rc<ExemplarRing>>>,
    exemplar_dumps: RefCell<Vec<String>>,
    profiler: RefCell<Option<Rc<crate::profiler::Profiler>>>,
    profile_dumps: RefCell<Vec<String>>,
    state: Cell<Health>,
    window: RefCell<VecDeque<HealthInput>>,
    baseline_sum: Cell<f64>,
    baseline_n: Cell<usize>,
    transitions: RefCell<Vec<HealthTransition>>,
}

impl HealthMonitor {
    /// A monitor in [`Health::Healthy`], reporting events as `node`.
    pub fn new(rules: HealthRules, node: NodeId) -> Rc<HealthMonitor> {
        Rc::new(HealthMonitor {
            rules,
            node,
            tracer: RefCell::new(None),
            exemplars: RefCell::new(None),
            exemplar_dumps: RefCell::new(Vec::new()),
            profiler: RefCell::new(None),
            profile_dumps: RefCell::new(Vec::new()),
            state: Cell::new(Health::Healthy),
            window: RefCell::new(VecDeque::new()),
            baseline_sum: Cell::new(0.0),
            baseline_n: Cell::new(0),
            transitions: RefCell::new(Vec::new()),
        })
    }

    /// Attaches the tracer that receives transition events and fault
    /// dumps.
    pub fn set_tracer(&self, tracer: Option<Rc<Tracer>>) {
        *self.tracer.borrow_mut() = tracer;
    }

    /// Attaches an exemplar ring whose contents are dumped (rendered and
    /// stored, see [`exemplar_dumps`](HealthMonitor::exemplar_dumps)) on
    /// every transition *to* [`Health::Degraded`] — the tail records that
    /// explain the failure, frozen next to the flight-recorder dump.
    pub fn set_exemplars(&self, ring: Option<Rc<ExemplarRing>>) {
        *self.exemplars.borrow_mut() = ring;
    }

    /// Exemplar dumps captured so far, one rendered block per Degraded
    /// episode, oldest first.
    pub fn exemplar_dumps(&self) -> Vec<String> {
        self.exemplar_dumps.borrow().clone()
    }

    /// Attaches a profiler whose `stats profile` report is captured on
    /// every transition *to* [`Health::Degraded`] — the critical-path
    /// attribution at the moment things went wrong, frozen next to the
    /// flight-recorder and exemplar dumps.
    pub fn set_profiler(&self, profiler: Option<Rc<crate::profiler::Profiler>>) {
        *self.profiler.borrow_mut() = profiler;
    }

    /// Profile dumps captured so far, one rendered block per Degraded
    /// episode, oldest first.
    pub fn profile_dumps(&self) -> Vec<String> {
        self.profile_dumps.borrow().clone()
    }

    /// Current state.
    pub fn state(&self) -> Health {
        self.state.get()
    }

    /// Every state change so far, oldest first.
    pub fn transitions(&self) -> Vec<HealthTransition> {
        self.transitions.borrow().clone()
    }

    /// Feeds one observation and returns the (possibly new) state.
    pub fn observe(&self, input: HealthInput) -> Health {
        // Freeze the latency baseline from the first samples that carry
        // a latency signal at all.
        if input.p99_us > 0.0 && self.baseline_n.get() < self.rules.baseline_window {
            self.baseline_sum
                .set(self.baseline_sum.get() + input.p99_us);
            self.baseline_n.set(self.baseline_n.get() + 1);
        }
        {
            let mut w = self.window.borrow_mut();
            while w.len() >= self.rules.window.max(2) {
                w.pop_front();
            }
            w.push_back(input);
        }
        let (next, reason) = self.evaluate();
        let prev = self.state.replace(next);
        if prev != next {
            self.transitions.borrow_mut().push(HealthTransition {
                at: input.at,
                from: prev,
                to: next,
                reason: reason.clone(),
            });
            if let Some(tracer) = self.tracer.borrow().as_ref() {
                tracer.instant(
                    Layer::Core,
                    "health_transition",
                    self.node,
                    Track::Main,
                    next.code(),
                    prev.code(),
                    input.at,
                );
                if next == Health::Degraded {
                    tracer.fault(&format!("health degraded: {reason}"));
                }
            }
            if next == Health::Degraded {
                if let Some(ring) = self.exemplars.borrow().as_ref() {
                    self.exemplar_dumps.borrow_mut().push(ring.render());
                }
                if let Some(p) = self.profiler.borrow().as_ref() {
                    let block: String = p
                        .stat_lines()
                        .iter()
                        .map(|(k, v)| format!("{k} {v}\n"))
                        .collect();
                    self.profile_dumps.borrow_mut().push(block);
                }
            }
        }
        next
    }

    fn evaluate(&self) -> (Health, String) {
        let w = self.window.borrow();
        if w.len() < self.rules.window.max(2) {
            return (Health::Healthy, String::new());
        }
        let mean =
            |f: fn(&HealthInput) -> f64| -> f64 { w.iter().map(f).sum::<f64>() / w.len() as f64 };
        let err_rate = mean(|i| i.errors_per_sec);
        if err_rate > self.rules.max_error_rate {
            return (
                Health::Degraded,
                format!(
                    "error rate {err_rate:.1}/s over window exceeds {:.1}/s",
                    self.rules.max_error_rate
                ),
            );
        }
        let burn = mean(|i| i.budget_burn);
        if burn > self.rules.max_budget_burn {
            return (
                Health::Degraded,
                format!(
                    "error-budget burn {burn:.1}x over window exceeds {:.1}x",
                    self.rules.max_budget_burn
                ),
            );
        }
        if self.baseline_n.get() >= self.rules.baseline_window {
            let baseline = self.baseline_sum.get() / self.baseline_n.get() as f64;
            let p99 = mean(|i| i.p99_us);
            if baseline > 0.0 && p99 > baseline * self.rules.p99_inflation {
                return (
                    Health::Saturated,
                    format!(
                        "p99 {p99:.1}us is {:.1}x the {baseline:.1}us baseline",
                        p99 / baseline
                    ),
                );
            }
        }
        let first = w.front().expect("window checked nonempty");
        let last = w.back().expect("window checked nonempty");
        if last.throughput > 0.0 {
            let gain =
                (last.throughput - first.throughput) / first.throughput.max(f64::MIN_POSITIVE);
            let queue_delta = last.queue_depth - first.queue_depth;
            if gain < self.rules.min_throughput_gain && queue_delta > self.rules.queue_growth {
                return (
                    Health::Saturated,
                    format!(
                        "throughput gain {:.0}% under queue growth {queue_delta:.1}",
                        gain * 100.0
                    ),
                );
            }
        }
        (Health::Healthy, String::new())
    }

    /// Replays an offered-load sweep (one [`HealthInput`] per load step,
    /// lightest first) through a fresh monitor with a two-step window and
    /// returns the index of the first step judged [`Health::Saturated`] —
    /// the knee: the first step whose marginal throughput gain fell below
    /// `rules.min_throughput_gain` while the queue signal kept growing.
    pub fn locate_knee(rules: &HealthRules, sweep: &[HealthInput]) -> Option<usize> {
        let m = HealthMonitor::new(
            HealthRules {
                window: 2,
                ..rules.clone()
            },
            NodeId(0),
        );
        for (i, input) in sweep.iter().enumerate() {
            if m.observe(*input) == Health::Saturated {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exemplar::ExemplarConfig;
    use crate::trace::EventRecorder;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn counter_rates_over_irregular_intervals() {
        let sim = Sim::new(1);
        let metrics = Rc::new(Metrics::new());
        let c = metrics.counter("reqs");
        let sampler = Sampler::new(&sim, &metrics, SamplerConfig::default());

        // First sample at t=0 only seeds the baseline: no rate point.
        sampler.sample_now();
        assert!(sampler.series("reqs.rate").is_none());

        // 100 events over 1 ms → 100_000/s.
        c.add(100);
        let s = sim.clone();
        sim.block_on(async move { s.sleep(SimDuration::from_millis(1)).await });
        sampler.sample_now();
        // 30 more events over a *different* interval, 3 ms → 10_000/s.
        c.add(30);
        let s = sim.clone();
        sim.block_on(async move { s.sleep(SimDuration::from_millis(3)).await });
        sampler.sample_now();

        let rates = sampler.values("reqs.rate");
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 100_000.0).abs() < 1e-6, "{rates:?}");
        assert!((rates[1] - 10_000.0).abs() < 1e-6, "{rates:?}");
    }

    #[test]
    fn counter_reset_between_samples_restarts_rate_from_zero() {
        let sim = Sim::new(1);
        let metrics = Rc::new(Metrics::new());
        let c = metrics.counter("reqs");
        let sampler = Sampler::new(&sim, &metrics, SamplerConfig::default());
        c.add(50);
        sampler.sample_now();
        c.reset();
        c.add(7);
        let s = sim.clone();
        sim.block_on(async move { s.sleep(SimDuration::from_millis(1)).await });
        sampler.sample_now();
        let rates = sampler.values("reqs.rate");
        // Moved 50 → 7: treated as 7 fresh events, not an underflow.
        assert_eq!(rates.len(), 1);
        assert!((rates[0] - 7_000.0).abs() < 1e-6, "{rates:?}");
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let sim = Sim::new(1);
        let metrics = Rc::new(Metrics::new());
        metrics.gauge("depth").set(1.0);
        let sampler = Sampler::new(
            &sim,
            &metrics,
            SamplerConfig {
                capacity: 4,
                ..SamplerConfig::default()
            },
        );
        for _ in 0..10 {
            sampler.sample_now();
        }
        // Three series per gauge (value/high/low), each capped at 4.
        assert_eq!(sampler.values("depth").len(), 4);
        assert_eq!(sampler.dropped(), 6 * 3);
        assert_eq!(sampler.ticks(), 10);
    }

    #[test]
    fn periodic_sampler_runs_on_virtual_interval_and_stops() {
        let sim = Sim::new(1);
        let metrics = Rc::new(Metrics::new());
        let g = metrics.gauge("util");
        let sampler = Sampler::new(
            &sim,
            &metrics,
            SamplerConfig {
                interval: SimDuration::from_micros(10),
                capacity: 64,
            },
        );
        g.set(0.5);
        sampler.start();
        let s = sim.clone();
        sim.block_on(async move { s.sleep(SimDuration::from_micros(95)).await });
        assert_eq!(sampler.ticks(), 9); // t=10,20,...,90
        let pts = sampler.series("util").expect("series exists");
        assert_eq!(pts[0].at, t(10));
        assert_eq!(pts.last().expect("nonempty").at, t(90));
        sampler.stop();
        let s = sim.clone();
        sim.block_on(async move { s.sleep(SimDuration::from_micros(100)).await });
        assert_eq!(sampler.ticks(), 9, "stopped sampler must not tick");
    }

    #[test]
    fn gauge_series_include_watermarks() {
        let sim = Sim::new(1);
        let metrics = Rc::new(Metrics::new());
        let g = metrics.gauge("q");
        let sampler = Sampler::new(&sim, &metrics, SamplerConfig::default());
        g.set(3.0);
        g.set(9.0);
        g.set(2.0);
        sampler.sample_now();
        assert_eq!(sampler.values("q"), vec![2.0]);
        assert_eq!(sampler.values("q.high"), vec![9.0]);
        assert_eq!(sampler.values("q.low"), vec![2.0]);
    }

    #[test]
    fn prometheus_text_has_types_help_and_labels() {
        let metrics = Metrics::new();
        metrics.counter("ucr.ib.node0.messages_sent").add(42);
        metrics.gauge("mc.node0.worker1.queue_depth").set(3.0);
        metrics
            .histogram("mc.node0.op_get")
            .record(SimDuration::from_micros(7));
        let text = prometheus_text(&metrics);
        assert!(text.contains("# TYPE rmc_messages_sent counter"));
        assert!(text.contains("# HELP rmc_messages_sent"));
        assert!(text.contains("rmc_messages_sent{layer=\"ucr\",net=\"ib\",node=\"node0\"} 42"));
        assert!(text.contains("# TYPE rmc_queue_depth gauge"));
        assert!(text.contains("rmc_queue_depth{layer=\"mc\",node=\"node0\",worker=\"1\"} 3"));
        assert!(
            text.contains("rmc_queue_depth_high{layer=\"mc\",node=\"node0\",worker=\"1\"} 3"),
            "watermark series missing:\n{text}"
        );
        assert!(text.contains("# TYPE rmc_op_get_us summary"));
        assert!(text.contains("rmc_op_get_us{layer=\"mc\",node=\"node0\",quantile=\"0.99\"} 7"));
        assert!(text.contains("rmc_op_get_us_count{layer=\"mc\",node=\"node0\"} 1"));
        // No duplicate TYPE lines.
        let types: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        let mut dedup = types.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(types.len(), dedup.len());
    }

    fn input(at_us: u64, tput: f64, queue: f64) -> HealthInput {
        HealthInput {
            at: t(at_us),
            throughput: tput,
            queue_depth: queue,
            p99_us: 0.0,
            errors_per_sec: 0.0,
            budget_burn: 0.0,
        }
    }

    #[test]
    fn flat_throughput_with_queue_growth_saturates_then_recovers() {
        let m = HealthMonitor::new(
            HealthRules {
                window: 3,
                ..HealthRules::default()
            },
            NodeId(0),
        );
        // Throughput still doubling: healthy.
        assert_eq!(m.observe(input(0, 100.0, 1.0)), Health::Healthy);
        assert_eq!(m.observe(input(10, 200.0, 2.0)), Health::Healthy);
        assert_eq!(m.observe(input(20, 400.0, 4.0)), Health::Healthy);
        // Derivative collapses while the queue keeps growing.
        assert_eq!(m.observe(input(30, 410.0, 8.0)), Health::Healthy);
        assert_eq!(m.observe(input(40, 412.0, 16.0)), Health::Saturated);
        // Queue stops growing; once the growth ages out of the window the
        // flat derivative alone is not saturation.
        assert_eq!(m.observe(input(50, 413.0, 16.0)), Health::Saturated);
        assert_eq!(m.observe(input(60, 414.0, 16.0)), Health::Healthy);
        let trans = m.transitions();
        assert_eq!(trans.len(), 2);
        assert_eq!(trans[0].to, Health::Saturated);
        assert!(trans[0].reason.contains("throughput gain"));
    }

    #[test]
    fn p99_inflation_over_baseline_saturates() {
        let m = HealthMonitor::new(
            HealthRules {
                window: 2,
                baseline_window: 2,
                p99_inflation: 3.0,
                ..HealthRules::default()
            },
            NodeId(0),
        );
        let lat = |at_us: u64, p99: f64| HealthInput {
            at: t(at_us),
            throughput: 100.0,
            queue_depth: 1.0,
            p99_us: p99,
            errors_per_sec: 0.0,
            budget_burn: 0.0,
        };
        assert_eq!(m.observe(lat(0, 10.0)), Health::Healthy);
        assert_eq!(m.observe(lat(10, 12.0)), Health::Healthy); // baseline = 11
        assert_eq!(m.observe(lat(20, 20.0)), Health::Healthy);
        // Window mean p99 jumps past 3x the frozen baseline.
        assert_eq!(m.observe(lat(30, 80.0)), Health::Saturated);
        assert!(m.transitions()[0].reason.contains("baseline"));
    }

    #[test]
    fn error_rate_degrades_and_dumps_flight_recorder() {
        let tracer = Tracer::new();
        let rec = EventRecorder::new();
        tracer.add_sink(rec.clone());
        let m = HealthMonitor::new(
            HealthRules {
                window: 2,
                max_error_rate: 5.0,
                ..HealthRules::default()
            },
            NodeId(3),
        );
        m.set_tracer(Some(tracer.clone()));
        let err = |at_us: u64, eps: f64| HealthInput {
            at: t(at_us),
            throughput: 100.0,
            queue_depth: 1.0,
            p99_us: 0.0,
            errors_per_sec: eps,
            budget_burn: 0.0,
        };
        assert_eq!(m.observe(err(0, 0.0)), Health::Healthy);
        assert_eq!(m.observe(err(10, 20.0)), Health::Degraded);
        assert_eq!(tracer.fault_count(), 1);
        assert!(tracer
            .last_fault()
            .expect("fault stored")
            .contains("health degraded"));
        let evs = rec.take();
        let ev = evs
            .iter()
            .find(|e| e.name == "health_transition")
            .expect("transition event emitted");
        assert_eq!(ev.op, Health::Degraded.code());
        assert_eq!(ev.bytes, Health::Healthy.code());
        assert_eq!(ev.node, Some(NodeId(3)));
    }

    #[test]
    fn slo_tracker_windows_compliance_and_burn() {
        let slo = SloTracker::new(SloSpec {
            name: "slo.get".to_string(),
            latency_target: SimDuration::from_micros(50),
            objective: 0.9,
            window: SimDuration::from_micros(160), // bucket width 10us
        });
        assert_eq!(slo.compliance(t(0)), 1.0, "idle tracker is compliant");
        assert_eq!(slo.burn_rate(t(0)), 0.0);
        // 8 good + 2 bad inside one window: compliance 0.8, and with a
        // 10% budget the 20% bad fraction burns 2x.
        for i in 0..8 {
            slo.record(SimDuration::from_micros(10), t(i));
        }
        slo.record(SimDuration::from_micros(500), t(8));
        slo.record(SimDuration::from_micros(500), t(9));
        assert!((slo.compliance(t(10)) - 0.8).abs() < 1e-9);
        assert!((slo.burn_rate(t(10)) - 2.0).abs() < 1e-9);
        assert_eq!(slo.good(), 8);
        assert_eq!(slo.bad(), 2);
        // The bad samples age out of the rolling window; lifetime totals
        // keep them.
        for i in 0..16 {
            slo.record(SimDuration::from_micros(10), t(200 + i * 10));
        }
        assert_eq!(slo.compliance(t(360)), 1.0);
        assert_eq!(slo.burn_rate(t(360)), 0.0);
        assert_eq!(slo.bad(), 2);
        slo.reset();
        assert_eq!(slo.good() + slo.bad(), 0);
        assert_eq!(slo.compliance(t(360)), 1.0);
    }

    #[test]
    fn budget_burn_degrades_then_recovers_with_exemplar_dump_per_episode() {
        let tracer = Tracer::new();
        let m = HealthMonitor::new(
            HealthRules {
                window: 2,
                max_budget_burn: 4.0,
                ..HealthRules::default()
            },
            NodeId(1),
        );
        m.set_tracer(Some(tracer.clone()));
        let ring = ExemplarRing::new(ExemplarConfig {
            min_samples: 0,
            ..ExemplarConfig::default()
        });
        m.set_exemplars(Some(ring.clone()));
        ring.push(Exemplar {
            op: "get",
            key_hash: 0xabc,
            bytes: 64,
            latency: SimDuration::from_micros(900),
            threshold: SimDuration::from_micros(100),
            at: t(5),
            span_id: 41,
            stages: Default::default(),
            hist: "mc.node0.op_get".to_string(),
            path: None,
        });
        let burn = |at_us: u64, b: f64| HealthInput {
            at: t(at_us),
            throughput: 100.0,
            queue_depth: 1.0,
            p99_us: 0.0,
            errors_per_sec: 0.0,
            budget_burn: b,
        };
        // First episode.
        assert_eq!(m.observe(burn(0, 0.0)), Health::Healthy);
        assert_eq!(m.observe(burn(10, 20.0)), Health::Degraded);
        assert_eq!(tracer.fault_count(), 1);
        assert_eq!(m.exemplar_dumps().len(), 1);
        assert!(m.exemplar_dumps()[0].contains("span=41"));
        assert!(m.transitions()[0].reason.contains("error-budget burn"));
        // Burn clears: recovery to Healthy.
        assert_eq!(m.observe(burn(20, 0.0)), Health::Degraded);
        assert_eq!(m.observe(burn(30, 0.0)), Health::Healthy);
        // Second episode triggers a second fault and a second dump.
        assert_eq!(m.observe(burn(40, 30.0)), Health::Degraded);
        assert_eq!(tracer.fault_count(), 2);
        assert_eq!(m.exemplar_dumps().len(), 2);
        assert_eq!(m.transitions().len(), 3);
    }

    #[test]
    fn degraded_transition_stores_a_profile_dump() {
        use crate::profiler::{Profiler, ProfilerConfig};
        use crate::trace::{Event, EventSink, Layer, Phase, Track};
        let profiler = Profiler::new(ProfilerConfig::default());
        // One retired op is enough for a meaningful report.
        for (phase, at) in [(Phase::Begin, 0u64), (Phase::End, 400)] {
            profiler.on_event(&Event {
                layer: Layer::Core,
                name: "client_op",
                phase,
                node: Some(NodeId(1)),
                track: Track::Main,
                op: 9,
                bytes: 0,
                at: SimTime::from_nanos(at),
            });
        }
        let m = HealthMonitor::new(
            HealthRules {
                window: 2,
                max_budget_burn: 4.0,
                ..HealthRules::default()
            },
            NodeId(1),
        );
        m.set_profiler(Some(profiler));
        let burn = |at_us: u64, b: f64| HealthInput {
            at: t(at_us),
            throughput: 100.0,
            queue_depth: 1.0,
            p99_us: 0.0,
            errors_per_sec: 0.0,
            budget_burn: b,
        };
        assert_eq!(m.observe(burn(0, 0.0)), Health::Healthy);
        assert_eq!(m.observe(burn(10, 20.0)), Health::Degraded);
        let dumps = m.profile_dumps();
        assert_eq!(dumps.len(), 1, "one dump per Degraded transition");
        assert!(dumps[0].contains("profile.ops 1"), "dump: {}", dumps[0]);
        assert!(dumps[0].contains("profile.stage.complete"));
    }

    #[test]
    fn sampler_pushes_slo_series_and_feeds_budget_burn() {
        let sim = Sim::new(1);
        let metrics = Rc::new(Metrics::new());
        metrics.counter("ops");
        metrics.gauge("depth");
        let slo = SloTracker::new(SloSpec {
            name: "slo.node0.get".to_string(),
            latency_target: SimDuration::from_micros(10),
            objective: 0.5,
            window: SimDuration::from_millis(10),
        });
        let monitor = HealthMonitor::new(
            HealthRules {
                window: 2,
                max_budget_burn: 1.5,
                ..HealthRules::default()
            },
            NodeId(0),
        );
        let sampler = Sampler::new(&sim, &metrics, SamplerConfig::default());
        sampler.bind_monitor(MonitorBinding {
            monitor: monitor.clone(),
            throughput_counter: "ops".to_string(),
            queue_gauge: "depth".to_string(),
            latency_hist: None,
            error_counter: None,
            slos: vec![slo.clone()],
        });
        // All ops violate the target: compliance 0, burn 1/0.5 = 2x.
        slo.record(SimDuration::from_micros(100), SimTime::ZERO);
        slo.record(SimDuration::from_micros(100), SimTime::ZERO);
        sampler.sample_now();
        let s = sim.clone();
        sim.block_on(async move { s.sleep(SimDuration::from_micros(10)).await });
        sampler.sample_now();
        assert_eq!(sampler.values("slo.node0.get.compliance"), vec![0.0, 0.0]);
        assert_eq!(sampler.values("slo.node0.get.burn"), vec![2.0, 2.0]);
        assert_eq!(monitor.state(), Health::Degraded);
        assert!(monitor.transitions()[0].reason.contains("error-budget"));
    }

    #[test]
    fn prometheus_exemplar_annotations_attach_to_their_family() {
        let metrics = Metrics::new();
        metrics
            .histogram("mc.node0.op_get")
            .record(SimDuration::from_micros(7));
        metrics.counter("mc.node0.cmd_get").add(1);
        let bare = prometheus_text(&metrics);
        assert_eq!(
            bare,
            prometheus_text_with_exemplars(&metrics, &[]),
            "no exemplars must render byte-identically"
        );
        let e = Exemplar {
            op: "get",
            key_hash: 0x1f,
            bytes: 128,
            latency: SimDuration::from_micros(420),
            threshold: SimDuration::from_micros(100),
            at: t(9),
            span_id: 77,
            stages: Default::default(),
            hist: "mc.node0.op_get".to_string(),
            path: None,
        };
        let text = prometheus_text_with_exemplars(&metrics, &[e]);
        let note = text
            .lines()
            .find(|l| l.starts_with("# EXEMPLAR"))
            .expect("annotation rendered");
        assert!(note.contains("rmc_op_get_us"), "{note}");
        assert!(note.contains("span=\"77\""));
        assert!(note.contains("key=\"0x000000000000001f\""));
        assert!(note.contains("value_us=420"));
        // The annotation lands inside the op_get family block, right
        // after its series lines.
        let lines: Vec<&str> = text.lines().collect();
        let idx = lines
            .iter()
            .position(|l| l.starts_with("# EXEMPLAR"))
            .expect("present");
        assert!(lines[idx - 1].starts_with("rmc_op_get_us"));
    }

    #[test]
    fn locate_knee_finds_first_flat_step() {
        // A depth sweep: throughput doubles, doubles, then stalls.
        let sweep: Vec<HealthInput> = [
            (1.0, 250.0),
            (2.0, 490.0),
            (4.0, 960.0),
            (8.0, 1650.0),
            (16.0, 1700.0),
        ]
        .iter()
        .enumerate()
        .map(|(i, &(depth, tput))| input(i as u64 * 10, tput, depth))
        .collect();
        let knee = HealthMonitor::locate_knee(&HealthRules::default(), &sweep);
        assert_eq!(knee, Some(4)); // depth 16: +3% over depth 8
                                   // A curve that never flattens has no knee.
        let rising: Vec<HealthInput> = (0..5)
            .map(|i| input(i * 10, 100.0 * 2f64.powi(i as i32), i as f64))
            .collect();
        assert_eq!(
            HealthMonitor::locate_knee(&HealthRules::default(), &rising),
            None
        );
    }
}
