//! Tail-latency exemplars: bounded rings of "this exact request was the
//! tail" records.
//!
//! A p99 number says the tail exists; an exemplar says *which* request it
//! was — its op, key hash, payload size, per-stage breakdown, and the
//! span id that finds it on the cross-layer trace timeline. Capture is
//! quantile-gated: a completed operation is recorded only when its
//! latency reaches the configured quantile of the histogram it feeds
//! (evaluated against the live distribution, so the gate adapts as the
//! run evolves). The ring is bounded and drops oldest, the same
//! discipline as the trace flight recorder. Everything is host-side
//! accounting: capture costs zero virtual time.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::metrics::{Histogram, STAGE_COUNT};
use crate::time::{SimDuration, SimTime};

/// Default ring capacity.
pub const EXEMPLAR_DEFAULT_CAPACITY: usize = 64;

/// Exemplar capture tuning.
#[derive(Clone, Copy, Debug)]
pub struct ExemplarConfig {
    /// Ring capacity (drop-oldest past this).
    pub capacity: usize,
    /// Latency quantile that gates capture: an op is an exemplar when
    /// its latency ≥ this quantile of its histogram.
    pub quantile: f64,
    /// Minimum histogram population before the gate arms (quantiles of
    /// a near-empty histogram are noise).
    pub min_samples: u64,
}

impl Default for ExemplarConfig {
    fn default() -> ExemplarConfig {
        ExemplarConfig {
            capacity: EXEMPLAR_DEFAULT_CAPACITY,
            quantile: 0.99,
            min_samples: 64,
        }
    }
}

/// One captured tail record.
#[derive(Clone, Debug)]
pub struct Exemplar {
    /// Operation label (`"get"`, `"set"`, `"e2e"`, …).
    pub op: &'static str,
    /// FNV-1a hash of the key (0 when the capture point has no key).
    pub key_hash: u64,
    /// Payload bytes moved by the op.
    pub bytes: u64,
    /// The latency that crossed the gate.
    pub latency: SimDuration,
    /// The quantile threshold in force at capture time.
    pub threshold: SimDuration,
    /// Virtual time of completion.
    pub at: SimTime,
    /// Correlation id (`req_id`): the `op` field of the matching tracer
    /// spans (`client_op`, `worker_service`) and latency spans.
    pub span_id: u64,
    /// Per-stage breakdown when captured via [`crate::LatencySpans`]
    /// (all zero at capture points without one).
    pub stages: [SimDuration; STAGE_COUNT],
    /// Registry name of the histogram this record exemplifies.
    pub hist: String,
    /// The op's critical-path decomposition, filled in by an attached
    /// [`Profiler`](crate::profiler::Profiler) when the op retires
    /// (`None` when no profiler is running or the span id never
    /// completed as a `client_op`).
    pub path: Option<crate::profiler::CriticalPath>,
}

struct RingInner {
    ring: RefCell<VecDeque<Exemplar>>,
}

/// A bounded, shareable ring of [`Exemplar`]s.
pub struct ExemplarRing {
    cfg: ExemplarConfig,
    inner: RingInner,
    seen: Cell<u64>,
    captured: Cell<u64>,
    dropped: Cell<u64>,
}

impl ExemplarRing {
    /// An empty ring.
    pub fn new(cfg: ExemplarConfig) -> Rc<ExemplarRing> {
        Rc::new(ExemplarRing {
            cfg,
            inner: RingInner {
                ring: RefCell::new(VecDeque::new()),
            },
            seen: Cell::new(0),
            captured: Cell::new(0),
            dropped: Cell::new(0),
        })
    }

    /// The capture configuration.
    pub fn config(&self) -> ExemplarConfig {
        self.cfg
    }

    /// Applies the quantile gate for an op that just recorded `latency`
    /// into `hist` (record first, then gate — the sample is part of its
    /// own distribution). Captures and returns `true` when the gate
    /// passes.
    #[allow(clippy::too_many_arguments)]
    pub fn offer(
        &self,
        hist: &Histogram,
        hist_name: &str,
        op: &'static str,
        key_hash: u64,
        bytes: u64,
        latency: SimDuration,
        span_id: u64,
        stages: [SimDuration; STAGE_COUNT],
        at: SimTime,
    ) -> bool {
        self.seen.set(self.seen.get() + 1);
        if hist.count() < self.cfg.min_samples {
            return false;
        }
        let threshold = hist.percentile(self.cfg.quantile);
        if latency < threshold {
            return false;
        }
        self.push(Exemplar {
            op,
            key_hash,
            bytes,
            latency,
            threshold,
            at,
            span_id,
            stages,
            hist: hist_name.to_string(),
            path: None,
        });
        true
    }

    /// Attaches a critical-path decomposition to every held record whose
    /// span id matches (the profiler calls this as each op retires;
    /// capture happens before the op's `client_op` span closes, so the
    /// record is already in the ring). Pure host-side bookkeeping.
    pub fn annotate_path(&self, span_id: u64, path: &crate::profiler::CriticalPath) {
        for e in self.inner.ring.borrow_mut().iter_mut() {
            if e.span_id == span_id && e.path.is_none() {
                e.path = Some(path.clone());
            }
        }
    }

    /// Appends unconditionally (callers that gate themselves).
    pub fn push(&self, e: Exemplar) {
        let mut ring = self.inner.ring.borrow_mut();
        while ring.len() >= self.cfg.capacity.max(1) {
            ring.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        ring.push_back(e);
        self.captured.set(self.captured.get() + 1);
    }

    /// Completions offered to the gate.
    pub fn seen(&self) -> u64 {
        self.seen.get()
    }

    /// Records captured (including any since dropped).
    pub fn captured(&self) -> u64 {
        self.captured.get()
    }

    /// Records evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Records currently held, oldest first.
    pub fn len(&self) -> usize {
        self.inner.ring.borrow().len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the held records, oldest first.
    pub fn snapshot(&self) -> Vec<Exemplar> {
        self.inner.ring.borrow().iter().cloned().collect()
    }

    /// Clears the ring and counters (a `stats reset`).
    pub fn reset(&self) {
        self.inner.ring.borrow_mut().clear();
        self.seen.set(0);
        self.captured.set(0);
        self.dropped.set(0);
    }

    /// The held records rendered as one line each (the dump format the
    /// health monitor stores on a Degraded transition).
    pub fn render(&self) -> String {
        let ring = self.inner.ring.borrow();
        let mut out = String::new();
        for e in ring.iter() {
            out.push_str(&format!(
                "exemplar op={} hist={} span={} key=0x{:016x} bytes={} \
                 latency_us={:.3} threshold_us={:.3} at_us={:.3}",
                e.op,
                e.hist,
                e.span_id,
                e.key_hash,
                e.bytes,
                e.latency.as_micros_f64(),
                e.threshold.as_micros_f64(),
                e.at.as_micros_f64(),
            ));
            if let Some(p) = e.path.as_ref() {
                out.push_str(&format!(
                    " dominant={} signature={} residual_ns={}",
                    p.dominant_stage().label(),
                    p.signature(0.10),
                    p.residual_ns,
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn gate_arms_after_min_samples_and_captures_tail() {
        let ring = ExemplarRing::new(ExemplarConfig {
            capacity: 8,
            quantile: 0.9,
            min_samples: 10,
        });
        let hist = Histogram::new();
        let zero = [SimDuration::default(); STAGE_COUNT];
        // Below min_samples: even a huge latency is not captured.
        hist.record(us(1000));
        assert!(!ring.offer(&hist, "h", "get", 1, 4, us(1000), 7, zero, SimTime::ZERO));
        // Populate a tight distribution, then offer a tail sample.
        for _ in 0..20 {
            hist.record(us(10));
        }
        assert!(!ring.offer(&hist, "h", "get", 1, 4, us(9), 8, zero, SimTime::ZERO));
        hist.record(us(500));
        assert!(ring.offer(
            &hist,
            "h",
            "get",
            2,
            4,
            us(500),
            9,
            zero,
            SimTime::from_nanos(5)
        ));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].latency >= snap[0].threshold);
        assert_eq!(snap[0].span_id, 9);
        assert_eq!(ring.seen(), 3);
        assert_eq!(ring.captured(), 1);
    }

    #[test]
    fn ring_bounds_and_reset() {
        let ring = ExemplarRing::new(ExemplarConfig {
            capacity: 4,
            quantile: 0.5,
            min_samples: 0,
        });
        let zero = [SimDuration::default(); STAGE_COUNT];
        for i in 0..10u64 {
            ring.push(Exemplar {
                op: "get",
                key_hash: i,
                bytes: 0,
                latency: us(i),
                threshold: us(0),
                at: SimTime::ZERO,
                span_id: i,
                stages: zero,
                hist: "h".to_string(),
                path: None,
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.snapshot()[0].span_id, 6, "oldest surviving record");
        assert!(ring.render().lines().count() == 4);
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.captured(), 0);
    }
}
