//! Nodes, networks, and message delivery.
//!
//! A [`Cluster`] instantiates one of the paper's testbeds: a set of compute
//! nodes, each with a kernel network-processing resource and an InfiniBand
//! HCA pipeline, joined by up to three physical networks (IB, 10GigE,
//! 1GigE). [`Network::transmit`] is the only way bytes move between nodes;
//! it models egress serialization, propagation, and ingress occupancy, and
//! fires a delivery closure at the computed arrival instant. Everything
//! above (verbs, sockets, UCR, Memcached) is protocol logic layered on this
//! one primitive.

use std::collections::HashMap;
use std::rc::Rc;

use crate::engine::Sim;
use crate::metrics::{Metrics, TraceEvent, TraceKind, TraceSubscriber};
use crate::profiles::{ClusterProfile, NetKind};
use crate::resource::FifoResource;
use crate::time::{SimDuration, SimTime};
use crate::trace::{self, Tracer};

/// Identifier of a compute node within a cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Per-node shared hardware: the kernel's network-processing pipeline (the
/// resource socket stacks saturate) and the HCA work-request pipeline (the
/// resource verbs traffic saturates).
pub struct Node {
    /// This node's identifier.
    pub id: NodeId,
    /// Kernel protocol-processing occupancy (softirq, socket buffers). All
    /// byte-stream transports on this node contend here. Verbs bypasses it.
    pub kernel: FifoResource,
    /// HCA work-request pipeline. Reciprocal of per-WQE occupancy is the
    /// adapter message rate.
    pub hca: FifoResource,
}

struct Port {
    egress: FifoResource,
    ingress: FifoResource,
}

/// A recorded transfer (tracing enabled via [`Network::set_trace`]).
#[derive(Clone, Copy, Debug)]
pub struct Transfer {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Payload + protocol bytes on the wire.
    pub bytes: u64,
    /// When the transfer was handed to the network.
    pub start: SimTime,
    /// When the last bit arrived.
    pub delivered: SimTime,
}

/// One physical network: a full-duplex port per node plus a switch.
pub struct Network {
    kind: NetKind,
    bits_per_sec: u64,
    propagation: SimDuration,
    mtu: u32,
    ports: Vec<Port>,
    trace: std::cell::RefCell<Option<Vec<Transfer>>>,
    subscriber: std::cell::RefCell<Option<Rc<dyn TraceSubscriber>>>,
    tracer: Rc<Tracer>,
}

impl Network {
    fn new(
        kind: NetKind,
        link: &crate::profiles::LinkProfile,
        nodes: u32,
        tracer: Rc<Tracer>,
    ) -> Network {
        let ports = (0..nodes)
            .map(|_| Port {
                egress: FifoResource::new(match kind {
                    NetKind::Ib => "ib.egress",
                    NetKind::TenGigE => "10ge.egress",
                    NetKind::OneGigE => "1ge.egress",
                }),
                ingress: FifoResource::new(match kind {
                    NetKind::Ib => "ib.ingress",
                    NetKind::TenGigE => "10ge.ingress",
                    NetKind::OneGigE => "1ge.ingress",
                }),
            })
            .collect();
        Network {
            kind,
            bits_per_sec: link.bits_per_sec,
            propagation: link.propagation,
            mtu: link.mtu,
            ports,
            trace: std::cell::RefCell::new(None),
            subscriber: std::cell::RefCell::new(None),
            tracer,
        }
    }

    /// Enables (or disables) transfer tracing. Tracing records every
    /// message crossing this network — protocol-efficiency tests assert
    /// on the counts (e.g. a UCR eager get is exactly two IB messages).
    pub fn set_trace(&self, on: bool) {
        *self.trace.borrow_mut() = on.then(Vec::new);
    }

    /// Drains and returns the recorded transfers.
    pub fn take_trace(&self) -> Vec<Transfer> {
        self.trace
            .borrow_mut()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Attaches (or clears) a structured trace subscriber. Unlike
    /// [`set_trace`](Network::set_trace)'s buffered transfer log, the
    /// subscriber sees each wire event as a typed [`TraceEvent`] the
    /// moment the transfer is submitted — the hook tests and the latency
    /// attribution layer build on.
    pub fn set_subscriber(&self, sub: Option<Rc<dyn TraceSubscriber>>) {
        *self.subscriber.borrow_mut() = sub;
    }

    /// Which physical network this is.
    pub fn kind(&self) -> NetKind {
        self.kind
    }

    /// Link MTU in bytes.
    pub fn mtu(&self) -> u32 {
        self.mtu
    }

    /// One-way propagation delay (cable + switch).
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Serialization time for `bytes` on this link.
    pub fn ser_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes_at(bytes, self.bits_per_sec)
    }

    /// Moves `bytes` from `src` to `dst`, beginning no earlier than `start`,
    /// and returns the delivery instant. `deliver` fires at that instant.
    ///
    /// Model: the message occupies the sender's egress port for its
    /// serialization time (FIFO with earlier traffic); the first bit reaches
    /// the receiver one propagation delay after egress *starts*; the
    /// receiver's ingress port is then occupied for the serialization time
    /// (cut-through, so an uncontended transfer costs `ser + propagation`
    /// once, not twice, while ingress contention still queues).
    pub fn transmit(
        &self,
        sim: &Sim,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        start: SimTime,
        deliver: impl FnOnce() + 'static,
    ) -> SimTime {
        assert_ne!(src, dst, "loopback does not traverse the network");
        let ser = self.ser_time(bytes);
        let egress_done = self.ports[src.0 as usize].egress.occupy_from(start, ser);
        let egress_start = egress_done - ser;
        let arrival_start = egress_start + self.propagation;
        let delivered = self.ports[dst.0 as usize]
            .ingress
            .occupy_from(arrival_start, ser);
        // The ingress port cannot finish before the last bit left the wire.
        let delivered = delivered.max(egress_done + self.propagation);
        if let Some(t) = self.trace.borrow_mut().as_mut() {
            t.push(Transfer {
                src,
                dst,
                bytes,
                start,
                delivered,
            });
        }
        if let Some(sub) = self.subscriber.borrow().as_ref() {
            sub.event(&TraceEvent {
                kind: TraceKind::WireTx,
                node: Some(src),
                peer: Some(dst),
                bytes,
                at: egress_start,
            });
            sub.event(&TraceEvent {
                kind: TraceKind::WireRx,
                node: Some(dst),
                peer: Some(src),
                bytes,
                at: delivered,
            });
        }
        self.tracer.instant(
            trace::Layer::Wire,
            "wire_tx",
            src,
            trace::Track::Main,
            0,
            bytes,
            egress_start,
        );
        self.tracer.instant(
            trace::Layer::Wire,
            "wire_rx",
            dst,
            trace::Track::Main,
            0,
            bytes,
            delivered,
        );
        sim.schedule_at(delivered, deliver);
        delivered
    }

    /// Number of messages delivered into `dst` so far (diagnostics).
    pub fn ingress_jobs(&self, dst: NodeId) -> u64 {
        self.ports[dst.0 as usize].ingress.jobs()
    }

    /// Utilization of a node's egress port (diagnostics).
    pub fn egress_utilization(&self, src: NodeId, now: SimTime) -> f64 {
        self.ports[src.0 as usize].egress.utilization(now)
    }
}

/// A simulated testbed: the event engine plus nodes and networks built from
/// a [`ClusterProfile`].
pub struct Cluster {
    sim: Sim,
    profile: ClusterProfile,
    nodes: Vec<Rc<Node>>,
    networks: HashMap<NetKind, Rc<Network>>,
    metrics: Rc<Metrics>,
    tracer: Rc<Tracer>,
}

impl Cluster {
    /// Builds a cluster with `nodes` nodes from `profile` (capped at the
    /// profile's node count) on a fresh simulation world.
    pub fn new(sim: Sim, profile: ClusterProfile, nodes: u32) -> Cluster {
        assert!(nodes >= 2, "a cluster needs at least a client and a server");
        let n = nodes.min(profile.nodes);
        let node_list = (0..n)
            .map(|i| {
                Rc::new(Node {
                    id: NodeId(i),
                    kernel: FifoResource::new("kernel"),
                    hca: FifoResource::new("hca"),
                })
            })
            .collect();
        let tracer = Tracer::new();
        let mut networks = HashMap::new();
        networks.insert(
            NetKind::Ib,
            Rc::new(Network::new(NetKind::Ib, &profile.ib, n, tracer.clone())),
        );
        if let Some(l) = &profile.tengige {
            networks.insert(
                NetKind::TenGigE,
                Rc::new(Network::new(NetKind::TenGigE, l, n, tracer.clone())),
            );
        }
        if let Some(l) = &profile.onegige {
            networks.insert(
                NetKind::OneGigE,
                Rc::new(Network::new(NetKind::OneGigE, l, n, tracer.clone())),
            );
        }
        Cluster {
            sim,
            profile,
            nodes: node_list,
            networks,
            metrics: Rc::new(Metrics::new()),
            tracer,
        }
    }

    /// Convenience: Cluster A with a fresh simulation.
    pub fn cluster_a(seed: u64, nodes: u32) -> Cluster {
        Cluster::new(Sim::new(seed), ClusterProfile::cluster_a(), nodes)
    }

    /// Convenience: Cluster B with a fresh simulation.
    pub fn cluster_b(seed: u64, nodes: u32) -> Cluster {
        Cluster::new(Sim::new(seed), ClusterProfile::cluster_b(), nodes)
    }

    /// The simulation world.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The hardware/cost profile.
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    /// Number of nodes.
    pub fn len(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// True if the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared per-node hardware.
    pub fn node(&self, id: NodeId) -> &Rc<Node> {
        &self.nodes[id.0 as usize]
    }

    /// A physical network, if this cluster has it.
    pub fn network(&self, kind: NetKind) -> Option<&Rc<Network>> {
        self.networks.get(&kind)
    }

    /// The InfiniBand network (always present).
    pub fn ib(&self) -> &Rc<Network> {
        &self.networks[&NetKind::Ib]
    }

    /// The cluster-wide metrics registry. Benchmarks and the memcached
    /// stack publish counters/gauges/histograms here by dotted name.
    pub fn metrics(&self) -> &Rc<Metrics> {
        &self.metrics
    }

    /// The cluster-wide tracing hub: every layer (wire, verbs, UCR, core)
    /// emits its span/instant events here, and the always-on flight
    /// recorder lives inside it. See [`trace`](crate::trace).
    pub fn tracer(&self) -> &Rc<Tracer> {
        &self.tracer
    }

    /// Attaches (or clears) one structured trace subscriber on every
    /// physical network of the cluster.
    pub fn set_subscriber(&self, sub: Option<Rc<dyn TraceSubscriber>>) {
        for net in self.networks.values() {
            net.set_subscriber(sub.clone());
        }
    }

    /// The whole metrics registry rendered in Prometheus text exposition
    /// format (`# TYPE`/`# HELP` lines, `node`/`worker`/`layer` labels
    /// recovered from the dotted names). See
    /// [`timeseries::prometheus_text`](crate::timeseries::prometheus_text).
    pub fn export_prometheus(&self) -> String {
        crate::timeseries::prometheus_text(&self.metrics)
    }

    /// Publishes each node's shared-resource occupancy into the metrics
    /// registry as gauges (`nodeN.hca.utilization`, `nodeN.kernel.
    /// utilization`) and counters-as-gauges for completed jobs, measured
    /// over the window from `since` to the current virtual time. This is
    /// the §VI-D bottleneck attribution: it tells you *which* server
    /// resource saturates under load.
    pub fn export_node_metrics(&self, since: SimTime) {
        let now = self.sim.now();
        let window = now.saturating_since(since).as_nanos().max(1) as f64;
        for node in &self.nodes {
            for (res, name) in [(&node.hca, "hca"), (&node.kernel, "kernel")] {
                let busy = res.busy_total().as_nanos() as f64;
                self.metrics
                    .gauge(&format!("{}.{}.utilization", node.id, name))
                    .set((busy / window).min(1.0));
                self.metrics
                    .gauge(&format!("{}.{}.jobs", node.id, name))
                    .set(res.jobs() as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::Stack;
    use std::cell::Cell;

    fn small_cluster() -> Cluster {
        Cluster::cluster_a(1, 4)
    }

    #[test]
    fn uncontended_transfer_is_ser_plus_prop() {
        let c = small_cluster();
        let ib = c.ib().clone();
        let delivered = ib.transmit(c.sim(), NodeId(0), NodeId(1), 0, SimTime::ZERO, || {});
        // Zero bytes: pure propagation.
        assert_eq!(delivered.as_nanos(), ib_prop_ns(&c));
        let t0 = c.sim().now();
        let d2 = ib.transmit(c.sim(), NodeId(2), NodeId(3), 1024, t0, || {});
        let expect =
            ib.ser_time(1024) + crate::profiles::ClusterProfile::cluster_a().ib.propagation;
        assert_eq!(d2, t0 + expect);
    }

    fn ib_prop_ns(c: &Cluster) -> u64 {
        c.profile().ib.propagation.as_nanos()
    }

    #[test]
    fn egress_contention_queues_in_fifo_order() {
        let c = small_cluster();
        let ib = c.ib().clone();
        let d1 = ib.transmit(c.sim(), NodeId(0), NodeId(1), 100_000, SimTime::ZERO, || {});
        let d2 = ib.transmit(c.sim(), NodeId(0), NodeId(2), 100_000, SimTime::ZERO, || {});
        // Second transfer waits for the first to clear the egress port.
        assert!(d2 > d1);
        let ser = ib.ser_time(100_000);
        assert_eq!(d2 - d1, ser);
    }

    #[test]
    fn ingress_contention_at_a_hot_receiver() {
        let c = small_cluster();
        let ib = c.ib().clone();
        // Two different senders target node 3 simultaneously.
        let d1 = ib.transmit(c.sim(), NodeId(0), NodeId(3), 50_000, SimTime::ZERO, || {});
        let d2 = ib.transmit(c.sim(), NodeId(1), NodeId(3), 50_000, SimTime::ZERO, || {});
        assert!(
            d2 > d1,
            "receiver ingress must serialize concurrent senders"
        );
    }

    #[test]
    fn delivery_callback_fires_at_delivery_time() {
        let c = small_cluster();
        let ib = c.ib().clone();
        let hit: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
        let hit2 = hit.clone();
        let sim2 = c.sim().clone();
        let expected = ib.transmit(
            c.sim(),
            NodeId(0),
            NodeId(1),
            4096,
            SimTime::ZERO,
            move || {
                hit2.set(Some(sim2.now()));
            },
        );
        c.sim().run();
        assert_eq!(hit.get(), Some(expected));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_is_rejected() {
        let c = small_cluster();
        let ib = c.ib().clone();
        ib.transmit(c.sim(), NodeId(0), NodeId(0), 1, SimTime::ZERO, || {});
    }

    #[test]
    fn cluster_b_has_no_ethernet_networks() {
        let c = Cluster::cluster_b(1, 4);
        assert!(c.network(NetKind::Ib).is_some());
        assert!(c.network(NetKind::TenGigE).is_none());
        assert!(c.network(NetKind::OneGigE).is_none());
        assert!(!c.profile().supports(Stack::TenGigEToe));
    }

    #[test]
    fn node_count_capped_by_profile() {
        let c = Cluster::cluster_a(1, 1000);
        assert_eq!(c.len(), 64);
        assert!(!c.is_empty());
    }

    #[test]
    fn bandwidth_shapes_transfer_time() {
        // The same 64 KB transfer is faster on QDR (cluster B) than DDR (A).
        let a = Cluster::cluster_a(1, 2);
        let b = Cluster::cluster_b(1, 2);
        let da = a
            .ib()
            .transmit(a.sim(), NodeId(0), NodeId(1), 65536, SimTime::ZERO, || {});
        let db = b
            .ib()
            .transmit(b.sim(), NodeId(0), NodeId(1), 65536, SimTime::ZERO, || {});
        assert!(db < da);
    }
}
