//! Virtual time for the discrete-event simulation.
//!
//! All simulated time is kept in integer nanoseconds. Nanosecond resolution
//! comfortably covers the range this reproduction cares about: InfiniBand
//! verbs operations are hundreds of nanoseconds, kernel TCP stacks tens of
//! microseconds, and full benchmark runs a few simulated seconds. A `u64`
//! nanosecond clock overflows after ~584 simulated years, so arithmetic is
//! plain (checked in debug builds via the standard integer semantics).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The time to move `bytes` at `bits_per_sec` line rate, rounded up to a
    /// whole nanosecond so a nonzero transfer never takes zero time.
    pub fn for_bytes_at(bytes: u64, bits_per_sec: u64) -> SimDuration {
        if bytes == 0 || bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = (bytes as u128) * 8 * 1_000_000_000;
        let ns = bits.div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_nanos(500);
        assert_eq!((t + d).as_nanos(), 1_500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_nanos(), 500);
        assert_eq!((d * 4).as_nanos(), 2_000);
        assert_eq!((d / 2).as_nanos(), 250);
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1 byte at 1 Gbit/s is 8 ns exactly.
        assert_eq!(SimDuration::for_bytes_at(1, 1_000_000_000).as_nanos(), 8);
        // 1 byte at 3 Gbit/s is 2.67 ns -> rounds up to 3.
        assert_eq!(SimDuration::for_bytes_at(1, 3_000_000_000).as_nanos(), 3);
        // Zero bytes take zero time.
        assert_eq!(
            SimDuration::for_bytes_at(0, 1_000_000_000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn for_bytes_large_values_do_not_overflow() {
        // 1 GiB at 32 Gbit/s (QDR signal rate) ~ 268 ms.
        let d = SimDuration::for_bytes_at(1 << 30, 32_000_000_000);
        let ms = d.as_nanos() as f64 / 1e6;
        assert!((ms - 268.435).abs() < 0.01, "got {ms} ms");
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(b.saturating_since(a).as_nanos(), 20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn fractional_micros() {
        let d = SimDuration::from_micros_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-3.0), SimDuration::ZERO);
        assert!((d.as_micros_f64() - 1.5).abs() < 1e-12);
    }
}
