//! Synchronization primitives for simulation tasks.
//!
//! These mirror the shapes found in async runtimes (sleep, oneshot, mpsc,
//! notify, timeout) but suspend on *virtual* time: a task blocked here
//! consumes no simulated time until an event wakes it. All types are
//! single-threaded (`Rc`-based) and `Unpin`, so no unsafe pin projection is
//! needed anywhere in the workspace.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::task::{Context, Poll, Waker};

use crate::engine::Sim;
use crate::time::SimDuration;

// ---------------------------------------------------------------------------
// Sleep
// ---------------------------------------------------------------------------

struct SleepState {
    done: bool,
    waker: Option<Waker>,
}

/// Future returned by [`Sim::sleep`]. Completes after the requested span of
/// simulated time.
pub struct Sleep {
    state: Rc<RefCell<SleepState>>,
}

impl Sleep {
    pub(crate) fn start(sim: &Sim, d: SimDuration) -> Sleep {
        let state = Rc::new(RefCell::new(SleepState {
            done: false,
            waker: None,
        }));
        let ev_state = state.clone();
        sim.schedule(d, move || {
            let mut s = ev_state.borrow_mut();
            s.done = true;
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        Sleep { state }
    }
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        if s.done {
            Poll::Ready(())
        } else {
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

struct OneshotInner<T> {
    value: Option<T>,
    sender_gone: bool,
    receiver_gone: bool,
    waker: Option<Waker>,
}

/// Sending half of a oneshot channel.
pub struct OneSender<T> {
    inner: Rc<RefCell<OneshotInner<T>>>,
}

/// Receiving half of a oneshot channel; a future resolving to
/// `Result<T, Canceled>`.
pub struct OneReceiver<T> {
    inner: Rc<RefCell<OneshotInner<T>>>,
}

/// Error: the sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

impl fmt::Display for Canceled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oneshot sender dropped without sending")
    }
}
impl std::error::Error for Canceled {}

/// Creates a single-value channel. The receiver is a future.
pub fn oneshot<T>() -> (OneSender<T>, OneReceiver<T>) {
    let inner = Rc::new(RefCell::new(OneshotInner {
        value: None,
        sender_gone: false,
        receiver_gone: false,
        waker: None,
    }));
    (
        OneSender {
            inner: inner.clone(),
        },
        OneReceiver { inner },
    )
}

impl<T> OneSender<T> {
    /// Delivers `v`. Fails (returning the value) if the receiver is gone.
    pub fn send(self, v: T) -> Result<(), T> {
        let mut inner = self.inner.borrow_mut();
        if inner.receiver_gone {
            return Err(v);
        }
        inner.value = Some(v);
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Drop for OneSender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.sender_gone = true;
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneReceiver<T> {
    type Output = Result<T, Canceled>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.inner.borrow_mut();
        if let Some(v) = inner.value.take() {
            return Poll::Ready(Ok(v));
        }
        if inner.sender_gone {
            return Poll::Ready(Err(Canceled));
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> Drop for OneReceiver<T> {
    fn drop(&mut self) {
        self.inner.borrow_mut().receiver_gone = true;
    }
}

// ---------------------------------------------------------------------------
// Unbounded mpsc
// ---------------------------------------------------------------------------

struct ChannelInner<T> {
    queue: VecDeque<T>,
    waker: Option<Waker>,
    senders: usize,
    receiver_gone: bool,
}

/// Sending half of an unbounded channel. Clonable.
pub struct Sender<T> {
    inner: Rc<RefCell<ChannelInner<T>>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: Rc<RefCell<ChannelInner<T>>>,
}

/// Error: all senders were dropped and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl fmt::Display for Disconnected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel disconnected")
    }
}
impl std::error::Error for Disconnected {}

/// Creates an unbounded multi-producer, single-consumer channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(ChannelInner {
        queue: VecDeque::new(),
        waker: None,
        senders: 1,
        receiver_gone: false,
    }));
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `v`; fails if the receiver is gone.
    pub fn send(&self, v: T) -> Result<(), Disconnected> {
        let mut inner = self.inner.borrow_mut();
        if inner.receiver_gone {
            return Err(Disconnected);
        }
        inner.queue.push_back(v);
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.senders -= 1;
        if inner.senders == 0 {
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
        }
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Receiver<T> {
    /// Awaits the next message; `Err(Disconnected)` once all senders are
    /// dropped and the queue is empty.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking pop.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.borrow_mut().receiver_gone = true;
    }
}

impl<T> Future for Recv<'_, T> {
    type Output = Result<T, Disconnected>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.rx.inner.borrow_mut();
        if let Some(v) = inner.queue.pop_front() {
            return Poll::Ready(Ok(v));
        }
        if inner.senders == 0 {
            return Poll::Ready(Err(Disconnected));
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Notify — edge-triggered wakeups for condition-style waiting
// ---------------------------------------------------------------------------

/// A wait set: tasks park on it and are all released by
/// [`notify_all`](Notify::notify_all). Used with a predicate re-checked after
/// every wakeup (condition-variable style), e.g. by UCR counters.
#[derive(Default)]
pub struct Notify {
    wakers: RefCell<Vec<Waker>>,
}

impl Notify {
    /// Creates an empty wait set.
    pub fn new() -> Notify {
        Notify::default()
    }

    /// Wakes every task currently parked on this set.
    pub fn notify_all(&self) {
        for w in self.wakers.borrow_mut().drain(..) {
            w.wake();
        }
    }

    /// Number of currently parked waiters (diagnostics).
    pub fn waiters(&self) -> usize {
        self.wakers.borrow().len()
    }

    /// Awaits until `pred()` returns true, re-checking after every
    /// notification. The predicate is checked immediately first, so a
    /// satisfied condition never blocks.
    pub fn wait_until<F: FnMut() -> bool>(self: &Rc<Self>, pred: F) -> WaitUntil<F> {
        WaitUntil {
            notify: Rc::downgrade(self),
            pred,
        }
    }
}

/// Future returned by [`Notify::wait_until`].
pub struct WaitUntil<F> {
    notify: Weak<Notify>,
    pred: F,
}

impl<F> Unpin for WaitUntil<F> {}

impl<F: FnMut() -> bool> Future for WaitUntil<F> {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if (this.pred)() {
            return Poll::Ready(());
        }
        if let Some(n) = this.notify.upgrade() {
            n.wakers.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        } else {
            // The Notify was dropped: the condition can never change again.
            Poll::Ready(())
        }
    }
}

// ---------------------------------------------------------------------------
// Timeout
// ---------------------------------------------------------------------------

/// Error: the inner future did not complete before the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated timeout elapsed")
    }
}
impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    fut: F,
    sleep: Sleep,
}

/// Races `fut` against a simulated-time deadline. If the deadline fires
/// first the inner future is dropped and `Err(Elapsed)` is returned — the
/// shape UCR's "synchronization with timeouts" (paper §IV-A) needs so that a
/// Memcached client can decide a server has died.
pub fn timeout<F: Future + Unpin>(sim: &Sim, d: SimDuration, fut: F) -> Timeout<F> {
    Timeout {
        fut,
        sleep: sim.sleep(d),
    }
}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Poll::Ready(v) = Pin::new(&mut this.fut).poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if Pin::new(&mut this.sleep).poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn oneshot_delivers() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_nanos(10)).await;
            tx.send(5).unwrap();
        });
        let got = sim.block_on(rx);
        assert_eq!(got, Ok(5));
    }

    #[test]
    fn oneshot_cancel_on_sender_drop() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_nanos(10)).await;
            drop(tx);
        });
        let got = sim.block_on(rx);
        assert_eq!(got, Err(Canceled));
    }

    #[test]
    fn oneshot_send_after_receiver_drop_fails() {
        let (tx, rx) = oneshot::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(1));
    }

    #[test]
    fn channel_fifo_order() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5 {
                s.sleep(SimDuration::from_nanos(5)).await;
                tx.send(i).unwrap();
            }
        });
        let got = sim.block_on(async move {
            let mut out = Vec::new();
            while let Ok(v) = rx.recv().await {
                out.push(v);
            }
            out
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_disconnect_after_drain() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        let got = sim.block_on(async move {
            let first = rx.recv().await;
            let second = rx.recv().await;
            (first, second)
        });
        assert_eq!(got, (Ok(1), Err(Disconnected)));
    }

    #[test]
    fn channel_clone_senders_count() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        let got = sim.block_on(async move { (rx.recv().await, rx.recv().await) });
        assert_eq!(got, (Ok(9), Err(Disconnected)));
    }

    #[test]
    fn notify_wait_until() {
        use std::cell::Cell;
        let sim = Sim::new(1);
        let notify = Rc::new(Notify::new());
        let counter = Rc::new(Cell::new(0u64));

        let s = sim.clone();
        let n2 = notify.clone();
        let c2 = counter.clone();
        sim.spawn(async move {
            for _ in 0..3 {
                s.sleep(SimDuration::from_nanos(10)).await;
                c2.set(c2.get() + 1);
                n2.notify_all();
            }
        });

        let c3 = counter.clone();
        sim.block_on(async move {
            notify.wait_until(move || c3.get() >= 3).await;
        });
        assert_eq!(counter.get(), 3);
        assert_eq!(sim.now().as_nanos(), 30);
    }

    #[test]
    fn timeout_elapses() {
        let sim = Sim::new(1);
        let (_tx, rx) = oneshot::<u32>();
        let s = sim.clone();
        let got = sim.block_on(async move { timeout(&s, SimDuration::from_micros(5), rx).await });
        assert_eq!(got, Err(Elapsed));
        assert_eq!(sim.now().as_nanos(), 5_000);
    }

    #[test]
    fn timeout_inner_wins() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        let s = sim.clone();
        sim.spawn({
            let s = s.clone();
            async move {
                s.sleep(SimDuration::from_nanos(100)).await;
                tx.send(7).unwrap();
            }
        });
        let got = sim.block_on(async move { timeout(&s, SimDuration::from_micros(5), rx).await });
        assert_eq!(got, Ok(Ok(7)));
        assert_eq!(sim.now().as_nanos(), 100);
    }
}
