//! Metrics and latency attribution.
//!
//! The paper justifies its design by *decomposing* per-message cost: §VI-D
//! attributes the request-rate gap to which server resource saturates (HCA
//! work-request pipeline vs kernel protocol processing), and the latency
//! discussion splits an operation into serialize / wire / dispatch /
//! service stages. This module builds that decomposition into the stack as
//! a first-class observability layer:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — `Cell`/`RefCell`-based
//!   primitives (the simulation is single-threaded) with percentile
//!   summaries over **virtual** time;
//! * [`Metrics`] — a named registry producing `stats`-style reports;
//! * [`Stage`] / [`LatencySpans`] — per-request stage timestamping whose
//!   invariant is checked by the cross-layer attribution test: the
//!   per-stage breakdown of an operation sums *exactly* to its end-to-end
//!   latency, because stages are deltas between consecutive boundary
//!   timestamps on one virtual clock;
//! * [`TraceSubscriber`] / [`TraceRecorder`] — a structured event stream
//!   generalizing `Network::set_trace`: wire transfers and stage crossings
//!   as typed events carrying node, byte count, and virtual timestamp.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::fabric::NodeId;
use crate::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// A monotonically increasing event count.
#[derive(Default)]
pub struct Counter {
    value: Cell<u64>,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.set(self.value.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.get()
    }

    /// Back-compat shim for call sites that treated the counter as a bare
    /// cell; `v` must not move the counter backwards.
    pub fn set(&self, v: u64) {
        debug_assert!(v >= self.value.get(), "counters are monotonic");
        self.value.set(v);
    }

    /// Resets to zero (between measurement phases).
    pub fn reset(&self) {
        self.value.set(0);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A point-in-time measurement (utilization, occupancy, queue depth).
///
/// Every [`set`](Gauge::set) also folds the value into running high/low
/// watermarks, so a sampler that only observes the gauge between events
/// still sees the extremes reached *between* its samples (e.g. the peak
/// worker queue depth inside one sampling interval). Watermarks survive
/// [`Metrics::reset_counters_and_histograms`] (the `stats reset` path)
/// and are cleared only by [`reset_watermarks`](Gauge::reset_watermarks)
/// or a full [`Gauge::reset`].
#[derive(Default)]
pub struct Gauge {
    value: Cell<f64>,
    high: Cell<f64>,
    low: Cell<f64>,
    touched: Cell<bool>,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value and folds it into the watermarks.
    pub fn set(&self, v: f64) {
        self.value.set(v);
        if self.touched.replace(true) {
            if v > self.high.get() {
                self.high.set(v);
            }
            if v < self.low.get() {
                self.low.set(v);
            }
        } else {
            self.high.set(v);
            self.low.set(v);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value.get()
    }

    /// Highest value ever set (the current value if set once; zero if
    /// never set).
    pub fn high(&self) -> f64 {
        self.high.get()
    }

    /// Lowest value ever set (the current value if set once; zero if
    /// never set).
    pub fn low(&self) -> f64 {
        self.low.get()
    }

    /// Collapses both watermarks onto the current value, starting a new
    /// observation window.
    pub fn reset_watermarks(&self) {
        self.high.set(self.value.get());
        self.low.set(self.value.get());
    }

    /// Zeroes the value and the watermarks (full reset, as if fresh).
    pub fn reset(&self) {
        self.value.set(0.0);
        self.high.set(0.0);
        self.low.set(0.0);
        self.touched.set(false);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A histogram of virtual-time durations, summarized by percentiles.
///
/// Samples are kept exactly (nanosecond durations in a vector): benchmark
/// runs record at most a few thousand operations, so exact quantiles are
/// cheaper than maintaining bucket boundaries — and deterministic.
#[derive(Default)]
pub struct Histogram {
    samples: RefCell<Vec<u64>>,
}

/// Point summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: SimDuration,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Largest sample.
    pub max: SimDuration,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&self, d: SimDuration) {
        self.samples.borrow_mut().push(d.as_nanos());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.samples.borrow().len() as u64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.borrow().iter().sum())
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> SimDuration {
        let n = self.count();
        if n == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.sum().as_nanos() / n)
    }

    /// Samples strictly above `threshold` (the SLO-violation count of
    /// an objective with that latency target).
    pub fn count_over(&self, threshold: SimDuration) -> u64 {
        let t = threshold.as_nanos();
        self.samples.borrow().iter().filter(|&&s| s > t).count() as u64
    }

    /// The `q`-quantile (`q` in `[0, 1]`, nearest-rank); zero when empty.
    pub fn percentile(&self, q: f64) -> SimDuration {
        let mut s = self.samples.borrow().clone();
        if s.is_empty() {
            return SimDuration::ZERO;
        }
        s.sort_unstable();
        let idx = ((s.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        SimDuration::from_nanos(s[idx])
    }

    /// Full percentile summary; all-zero when empty.
    pub fn summary(&self) -> HistogramSummary {
        let mut s = self.samples.borrow().clone();
        if s.is_empty() {
            return HistogramSummary {
                count: 0,
                min: SimDuration::ZERO,
                mean: SimDuration::ZERO,
                p50: SimDuration::ZERO,
                p95: SimDuration::ZERO,
                p99: SimDuration::ZERO,
                max: SimDuration::ZERO,
            };
        }
        s.sort_unstable();
        let pick = |q: f64| SimDuration::from_nanos(s[((s.len() - 1) as f64 * q).round() as usize]);
        HistogramSummary {
            count: s.len() as u64,
            min: SimDuration::from_nanos(s[0]),
            mean: SimDuration::from_nanos(s.iter().sum::<u64>() / s.len() as u64),
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: SimDuration::from_nanos(*s.last().expect("nonempty")),
        }
    }

    /// Discards all samples.
    pub fn reset(&self) {
        self.samples.borrow_mut().clear();
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(n={})", self.count())
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// A named registry of counters, gauges, and histograms.
///
/// Names are free-form dotted paths (`"node0.hca.utilization"`). Lookups
/// create on first use, so instrumentation sites never need registration
/// boilerplate. [`Metrics::report`] renders the whole registry as
/// memcached-`stats`-style `(name, value)` pairs.
#[derive(Default)]
pub struct Metrics {
    counters: RefCell<BTreeMap<String, Rc<Counter>>>,
    gauges: RefCell<BTreeMap<String, Rc<Gauge>>>,
    histograms: RefCell<BTreeMap<String, Rc<Histogram>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counter named `name`, created if absent.
    pub fn counter(&self, name: &str) -> Rc<Counter> {
        self.counters
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created if absent.
    pub fn gauge(&self, name: &str) -> Rc<Gauge> {
        self.gauges
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created if absent.
    pub fn histogram(&self, name: &str) -> Rc<Histogram> {
        self.histograms
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Value of a counter, zero if it was never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .borrow()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Value of a gauge, if it exists.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.borrow().get(name).map(|g| g.get())
    }

    /// Renders every metric as `(name, value)` lines: counters as
    /// integers, gauges as decimals, histograms flattened into
    /// `name.{count,mean_us,p50_us,p95_us,p99_us,max_us}`. Lines come out
    /// sorted by name across all three instrument kinds, so `stats`
    /// output and test snapshots are stable run to run.
    pub fn report(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (name, c) in self.counters.borrow().iter() {
            out.push((name.clone(), c.get().to_string()));
        }
        for (name, g) in self.gauges.borrow().iter() {
            out.push((name.clone(), format!("{:.6}", g.get())));
        }
        for (name, h) in self.histograms.borrow().iter() {
            let s = h.summary();
            out.push((format!("{name}.count"), s.count.to_string()));
            out.push((
                format!("{name}.mean_us"),
                format!("{:.3}", s.mean.as_micros_f64()),
            ));
            out.push((
                format!("{name}.p50_us"),
                format!("{:.3}", s.p50.as_micros_f64()),
            ));
            out.push((
                format!("{name}.p95_us"),
                format!("{:.3}", s.p95.as_micros_f64()),
            ));
            out.push((
                format!("{name}.p99_us"),
                format!("{:.3}", s.p99.as_micros_f64()),
            ));
            out.push((
                format!("{name}.max_us"),
                format!("{:.3}", s.max.as_micros_f64()),
            ));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Clears every registered metric (between measurement phases). The
    /// instruments themselves survive, so held `Rc` handles stay valid.
    pub fn reset(&self) {
        for c in self.counters.borrow().values() {
            c.reset();
        }
        for g in self.gauges.borrow().values() {
            g.reset();
        }
        for h in self.histograms.borrow().values() {
            h.reset();
        }
    }

    /// Zeroes counters and histograms but leaves gauges — values *and*
    /// high/low watermarks — untouched. This is the `stats reset`
    /// semantics: event counts restart, while level measurements (slab
    /// occupancy, queue depth) keep describing the live system.
    pub fn reset_counters_and_histograms(&self) {
        for c in self.counters.borrow().values() {
            c.reset();
        }
        for h in self.histograms.borrow().values() {
            h.reset();
        }
    }

    /// Snapshot of every registered counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, Rc<Counter>)> {
        self.counters
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Snapshot of every registered gauge, sorted by name.
    pub fn gauges(&self) -> Vec<(String, Rc<Gauge>)> {
        self.gauges
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Snapshot of every registered histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Rc<Histogram>)> {
        self.histograms
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Latency attribution: stages and spans
// ---------------------------------------------------------------------

/// The per-request pipeline stages of one memcached operation, in
/// timeline order (the §VI-D decomposition).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Stage {
    /// Client-side request build + staging copy into the comm buffer.
    ClientSerialize = 0,
    /// Request on the wire: egress queueing, serialization, propagation,
    /// and receive-side protocol processing up to dispatch.
    RequestWire = 1,
    /// Queued at the server waiting for the connection's worker.
    DispatchWait = 2,
    /// Worker service: parse, hash-table work, memcpy, store execution.
    WorkerService = 3,
    /// Response on the wire back to the client.
    ReplyWire = 4,
    /// Client-side wakeup and response decode.
    ClientComplete = 5,
}

/// Number of stages.
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// All stages, in timeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::ClientSerialize,
        Stage::RequestWire,
        Stage::DispatchWait,
        Stage::WorkerService,
        Stage::ReplyWire,
        Stage::ClientComplete,
    ];

    /// Snake-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::ClientSerialize => "client_serialize",
            Stage::RequestWire => "request_wire",
            Stage::DispatchWait => "dispatch_wait",
            Stage::WorkerService => "worker_service",
            Stage::ReplyWire => "reply_wire",
            Stage::ClientComplete => "client_complete",
        }
    }
}

struct OpenSpan {
    started: SimTime,
    last: SimTime,
    stages: [SimDuration; STAGE_COUNT],
}

/// Per-stage latency attribution for a stream of requests.
///
/// The client side calls [`begin`](LatencySpans::begin) when an operation
/// starts and [`finish`](LatencySpans::finish) when it returns; each layer
/// the request crosses calls [`mark`](LatencySpans::mark) (by operation
/// id) or [`mark_open`](LatencySpans::mark_open) (server side of protocols
/// that do not carry the id, valid while a single operation is in flight).
/// A mark attributes the time since the previous boundary to the given
/// stage, so per-operation stage durations sum to the end-to-end latency
/// *by construction* — the invariant the cross-layer test checks.
///
/// Spans add no virtual time: attaching them never perturbs a simulation.
#[derive(Default)]
pub struct LatencySpans {
    open: RefCell<HashMap<u64, OpenSpan>>,
    stages: [Histogram; STAGE_COUNT],
    end_to_end: Histogram,
    subscriber: RefCell<Option<Rc<dyn TraceSubscriber>>>,
    exemplars: RefCell<Option<Rc<crate::exemplar::ExemplarRing>>>,
}

impl LatencySpans {
    /// An empty span sink, ready to attach to a client and a server.
    pub fn new() -> Rc<LatencySpans> {
        Rc::new(LatencySpans::default())
    }

    /// Forwards every stage crossing as a [`TraceEvent`] too.
    pub fn set_subscriber(&self, sub: Option<Rc<dyn TraceSubscriber>>) {
        *self.subscriber.borrow_mut() = sub;
    }

    /// Attaches a tail-latency exemplar ring: every finished span whose
    /// end-to-end latency clears the ring's quantile gate is captured
    /// with its full per-stage breakdown and the operation id as span
    /// correlation key.
    pub fn set_exemplars(&self, ring: Option<Rc<crate::exemplar::ExemplarRing>>) {
        *self.exemplars.borrow_mut() = ring;
    }

    /// Opens the span for operation `op` at `now`.
    pub fn begin(&self, op: u64, now: SimTime) {
        self.open.borrow_mut().insert(
            op,
            OpenSpan {
                started: now,
                last: now,
                stages: [SimDuration::ZERO; STAGE_COUNT],
            },
        );
    }

    /// Attributes the time since the previous boundary of `op` to `stage`.
    /// Unknown ids are ignored (spans may be attached mid-stream).
    pub fn mark(&self, op: u64, stage: Stage, now: SimTime) {
        let mut open = self.open.borrow_mut();
        let Some(span) = open.get_mut(&op) else {
            return;
        };
        span.stages[stage as usize] += now.saturating_since(span.last);
        span.last = now;
        drop(open);
        self.emit_stage(op, stage, now);
    }

    /// Like [`mark`](LatencySpans::mark), for instrumentation points that
    /// cannot see the operation id (e.g. the server side of the ASCII
    /// protocol, which has no request identifier on the wire). Applies
    /// only when exactly one span is open — with concurrent operations
    /// the attribution would be ambiguous, so it is skipped.
    pub fn mark_open(&self, stage: Stage, now: SimTime) {
        let op = {
            let open = self.open.borrow();
            if open.len() != 1 {
                return;
            }
            *open.keys().next().expect("len checked")
        };
        self.mark(op, stage, now);
    }

    /// Closes the span for `op` at `now`: the residue since the last
    /// boundary goes to [`Stage::ClientComplete`], and the whole
    /// operation is recorded in every stage histogram plus end-to-end.
    pub fn finish(&self, op: u64, now: SimTime) {
        let span = { self.open.borrow_mut().remove(&op) };
        let Some(mut span) = span else { return };
        span.stages[Stage::ClientComplete as usize] += now.saturating_since(span.last);
        for (i, h) in self.stages.iter().enumerate() {
            h.record(span.stages[i]);
        }
        let e2e = now.saturating_since(span.started);
        self.end_to_end.record(e2e);
        if let Some(ring) = self.exemplars.borrow().as_ref() {
            ring.offer(
                &self.end_to_end,
                "latency.end_to_end",
                "e2e",
                0,
                0,
                e2e,
                op,
                span.stages,
                now,
            );
        }
        self.emit_stage(op, Stage::ClientComplete, now);
    }

    /// Abandons the span for `op` (operation timed out or failed).
    pub fn discard(&self, op: u64) {
        self.open.borrow_mut().remove(&op);
    }

    /// The histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// The end-to-end latency histogram.
    pub fn end_to_end(&self) -> &Histogram {
        &self.end_to_end
    }

    /// Mean of each stage, microseconds, in [`Stage::ALL`] order.
    pub fn stage_means_us(&self) -> [f64; STAGE_COUNT] {
        let mut out = [0.0; STAGE_COUNT];
        for (i, h) in self.stages.iter().enumerate() {
            out[i] = h.mean().as_micros_f64();
        }
        out
    }

    /// Sum of the per-stage means, microseconds. Equals the end-to-end
    /// mean up to integer-nanosecond division (the attribution invariant).
    pub fn sum_of_stage_means_us(&self) -> f64 {
        self.stage_means_us().iter().sum()
    }

    /// Completed operations recorded.
    pub fn completed(&self) -> u64 {
        self.end_to_end.count()
    }

    /// Renders the attribution as `stats`-style lines
    /// (`latency.<stage>.{mean_us,p99_us}` plus end-to-end).
    pub fn report(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut push = |name: String, s: HistogramSummary| {
            out.push((
                format!("{name}.mean_us"),
                format!("{:.3}", s.mean.as_micros_f64()),
            ));
            out.push((
                format!("{name}.p99_us"),
                format!("{:.3}", s.p99.as_micros_f64()),
            ));
        };
        for stage in Stage::ALL {
            push(
                format!("latency.{}", stage.label()),
                self.stage(stage).summary(),
            );
        }
        push("latency.end_to_end".to_string(), self.end_to_end.summary());
        out.push((
            "latency.ops_attributed".to_string(),
            self.completed().to_string(),
        ));
        out
    }

    fn emit_stage(&self, op: u64, stage: Stage, now: SimTime) {
        if let Some(sub) = self.subscriber.borrow().as_ref() {
            sub.event(&TraceEvent {
                kind: TraceKind::Stage { stage, op },
                node: None,
                peer: None,
                bytes: 0,
                at: now,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Structured trace subscription
// ---------------------------------------------------------------------

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A fabric transfer began serializing at the source port.
    WireTx,
    /// A fabric transfer was delivered into the destination port.
    WireRx,
    /// A request crossed a latency-attribution stage boundary.
    Stage {
        /// The stage whose boundary was crossed.
        stage: Stage,
        /// The operation the span belongs to.
        op: u64,
    },
}

/// One structured trace event (the generalization of
/// `Network::set_trace`'s transfer records).
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceKind,
    /// Observing node: sender for [`TraceKind::WireTx`], receiver for
    /// [`TraceKind::WireRx`]; absent for stage crossings.
    pub node: Option<NodeId>,
    /// The other end of a wire event.
    pub peer: Option<NodeId>,
    /// Bytes on the wire (zero for stage crossings).
    pub bytes: u64,
    /// Virtual timestamp the event describes. Wire events are emitted at
    /// submission with their *computed* times, so a delivery event can
    /// carry a timestamp later than the clock at emission.
    pub at: SimTime,
}

/// Receives structured trace events from the fabrics and span sinks.
pub trait TraceSubscriber {
    /// Called once per event, in submission order.
    fn event(&self, ev: &TraceEvent);
}

/// Default [`TraceRecorder`] capacity — generous (a multi-client
/// throughput run fits comfortably) while keeping a runaway simulation's
/// trace heap bounded.
pub const TRACE_RECORDER_DEFAULT_CAPACITY: usize = 1 << 20;

/// A [`TraceSubscriber`] that records every event for later inspection —
/// what protocol-efficiency tests attach to count messages on the wire.
///
/// The buffer is bounded: once `capacity` events are held, further events
/// are discarded and counted in [`dropped`](TraceRecorder::dropped), so a
/// long simulation cannot grow the recorder without limit. [`take`]
/// (TraceRecorder::take) frees the buffer and recording resumes.
pub struct TraceRecorder {
    events: RefCell<Vec<TraceEvent>>,
    capacity: usize,
    dropped: Cell<u64>,
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder {
            events: RefCell::new(Vec::new()),
            capacity: TRACE_RECORDER_DEFAULT_CAPACITY,
            dropped: Cell::new(0),
        }
    }
}

impl TraceRecorder {
    /// A fresh recorder with the default capacity, ready to pass as a
    /// subscriber.
    pub fn new() -> Rc<TraceRecorder> {
        Rc::new(TraceRecorder::default())
    }

    /// A recorder that holds at most `capacity` events at a time.
    pub fn with_capacity(capacity: usize) -> Rc<TraceRecorder> {
        Rc::new(TraceRecorder {
            events: RefCell::new(Vec::new()),
            capacity: capacity.max(1),
            dropped: Cell::new(0),
        })
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.borrow_mut())
    }

    /// Number of recorded events matching `pred`.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.borrow().iter().filter(|e| pred(e)).count()
    }

    /// Number of distinct wire messages recorded (delivery events).
    pub fn wire_messages(&self) -> usize {
        self.count(|e| e.kind == TraceKind::WireRx)
    }

    /// Events discarded because the buffer was at capacity when they
    /// arrived.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

impl TraceSubscriber for TraceRecorder {
    fn event(&self, ev: &TraceEvent) {
        let mut events = self.events.borrow_mut();
        if events.len() >= self.capacity {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        events.push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(0.75);
        assert!((g.get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gauge_watermarks_track_extremes() {
        let g = Gauge::new();
        // Untouched: everything reads zero.
        assert_eq!(g.high(), 0.0);
        assert_eq!(g.low(), 0.0);
        // First set seeds both watermarks (low must not stick at 0.0 for
        // a gauge that never goes below its first positive value).
        g.set(5.0);
        assert_eq!(g.high(), 5.0);
        assert_eq!(g.low(), 5.0);
        g.set(9.0);
        g.set(2.0);
        g.set(4.0);
        assert_eq!(g.get(), 4.0);
        assert_eq!(g.high(), 9.0);
        assert_eq!(g.low(), 2.0);
    }

    #[test]
    fn gauge_watermark_reset_collapses_to_current_value() {
        let g = Gauge::new();
        g.set(10.0);
        g.set(1.0);
        g.set(6.0);
        g.reset_watermarks();
        // New window starts at the live value, not at zero.
        assert_eq!(g.high(), 6.0);
        assert_eq!(g.low(), 6.0);
        g.set(7.0);
        g.set(5.0);
        assert_eq!(g.high(), 7.0);
        assert_eq!(g.low(), 5.0);
        // Full reset behaves like a fresh instrument.
        g.reset();
        assert_eq!(g.get(), 0.0);
        g.set(-3.0);
        assert_eq!(g.high(), -3.0);
        assert_eq!(g.low(), -3.0);
    }

    #[test]
    fn selective_reset_preserves_gauges_and_watermarks() {
        let m = Metrics::new();
        m.counter("reqs").add(11);
        m.histogram("lat").record(SimDuration::from_micros(4));
        let g = m.gauge("depth");
        g.set(8.0);
        g.set(3.0);
        m.reset_counters_and_histograms();
        assert_eq!(m.counter_value("reqs"), 0);
        assert_eq!(m.histogram("lat").count(), 0);
        assert_eq!(g.get(), 3.0);
        assert_eq!(g.high(), 8.0);
        assert_eq!(g.low(), 3.0);
        // The full reset still clears gauges too.
        m.reset();
        assert_eq!(g.get(), 0.0);
        assert_eq!(g.high(), 0.0);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let h = Histogram::new();
        for i in 1..=100u64 {
            h.record(SimDuration::from_nanos(i * 1000));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min.as_nanos(), 1_000);
        assert_eq!(s.max.as_nanos(), 100_000);
        assert_eq!(s.p50.as_nanos(), 51_000); // nearest rank on 0..=99
        assert_eq!(s.p95.as_nanos(), 95_000);
        assert_eq!(s.p99.as_nanos(), 99_000);
        assert_eq!(h.mean().as_nanos(), 50_500);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary().count, 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(0.99), SimDuration::ZERO);
    }

    #[test]
    fn empty_histogram_summary_is_all_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s.min, SimDuration::ZERO);
        assert_eq!(s.mean, SimDuration::ZERO);
        assert_eq!(s.p50, SimDuration::ZERO);
        assert_eq!(s.p95, SimDuration::ZERO);
        assert_eq!(s.p99, SimDuration::ZERO);
        assert_eq!(s.max, SimDuration::ZERO);
    }

    #[test]
    fn single_sample_histogram_every_percentile_is_the_sample() {
        let h = Histogram::new();
        h.record(SimDuration::from_micros(12));
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q).as_micros_f64(), 12.0, "q={q}");
        }
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, s.max);
        assert_eq!(s.mean.as_micros_f64(), 12.0);
    }

    #[test]
    fn reset_clears_summary() {
        let h = Histogram::new();
        h.record(SimDuration::from_micros(5));
        h.record(SimDuration::from_micros(9));
        assert_eq!(h.summary().count, 2);
        h.reset();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, SimDuration::ZERO);
        assert_eq!(s.p99, SimDuration::ZERO);
        assert_eq!(s.max, SimDuration::ZERO);
        // The instrument keeps working after the reset.
        h.record(SimDuration::from_micros(1));
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn report_is_globally_sorted_by_name() {
        let m = Metrics::new();
        // Interleave names across instrument kinds so per-kind grouping
        // would misorder them.
        m.counter("zz.reqs").inc();
        m.gauge("aa.util").set(0.25);
        m.histogram("mm.lat").record(SimDuration::from_micros(2));
        m.counter("bb.reqs").inc();
        let report = m.report();
        let names: Vec<&String> = report.iter().map(|(k, _)| k).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "report must be sorted by name");
        assert_eq!(names.first().map(|s| s.as_str()), Some("aa.util"));
        assert_eq!(names.last().map(|s| s.as_str()), Some("zz.reqs"));
    }

    #[test]
    fn bounded_recorder_drops_and_counts_overflow() {
        let rec = TraceRecorder::with_capacity(2);
        for i in 0..5u64 {
            rec.event(&TraceEvent {
                kind: TraceKind::WireRx,
                node: Some(NodeId(0)),
                peer: Some(NodeId(1)),
                bytes: i,
                at: t(i * 10),
            });
        }
        assert_eq!(rec.dropped(), 3);
        let kept = rec.take();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].bytes, 0);
        assert_eq!(kept[1].bytes, 1);
        // Draining frees capacity: recording resumes.
        rec.event(&TraceEvent {
            kind: TraceKind::WireRx,
            node: Some(NodeId(0)),
            peer: Some(NodeId(1)),
            bytes: 99,
            at: t(100),
        });
        assert_eq!(rec.take().len(), 1);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn registry_creates_on_first_use_and_reports() {
        let m = Metrics::new();
        m.counter("reqs").add(7);
        m.gauge("util").set(0.5);
        m.histogram("lat").record(SimDuration::from_micros(3));
        assert_eq!(m.counter_value("reqs"), 7);
        assert_eq!(m.counter_value("never"), 0);
        assert_eq!(m.gauge_value("util"), Some(0.5));
        let report = m.report();
        assert!(report.contains(&("reqs".to_string(), "7".to_string())));
        assert!(report
            .iter()
            .any(|(k, v)| k == "lat.p99_us" && v == "3.000"));
        m.reset();
        assert_eq!(m.counter_value("reqs"), 0);
        assert_eq!(m.histogram("lat").count(), 0);
    }

    #[test]
    fn span_stages_sum_to_end_to_end() {
        let spans = LatencySpans::new();
        spans.begin(1, t(0));
        spans.mark(1, Stage::ClientSerialize, t(100));
        spans.mark(1, Stage::RequestWire, t(350));
        spans.mark(1, Stage::DispatchWait, t(400));
        spans.mark(1, Stage::WorkerService, t(900));
        spans.mark(1, Stage::ReplyWire, t(1150));
        spans.finish(1, t(1200));
        assert_eq!(spans.completed(), 1);
        assert_eq!(spans.stage(Stage::ClientSerialize).sum().as_nanos(), 100);
        assert_eq!(spans.stage(Stage::WorkerService).sum().as_nanos(), 500);
        assert_eq!(spans.stage(Stage::ClientComplete).sum().as_nanos(), 50);
        let total: u64 = Stage::ALL
            .iter()
            .map(|&s| spans.stage(s).sum().as_nanos())
            .sum();
        assert_eq!(total, spans.end_to_end().sum().as_nanos());
    }

    #[test]
    fn unmarked_stages_record_zero_so_means_stay_aligned() {
        let spans = LatencySpans::new();
        for op in 0..4u64 {
            let base = op * 10_000;
            spans.begin(op, t(base));
            // Only some ops cross the wire stages.
            if op % 2 == 0 {
                spans.mark(op, Stage::RequestWire, t(base + 300));
            }
            spans.finish(op, t(base + 1000));
        }
        // Every histogram has one entry per completed op.
        for s in Stage::ALL {
            assert_eq!(spans.stage(s).count(), 4);
        }
        let sum: f64 = spans.sum_of_stage_means_us();
        let e2e = spans.end_to_end().mean().as_micros_f64();
        assert!((sum - e2e).abs() < 1e-6, "{sum} vs {e2e}");
    }

    #[test]
    fn mark_open_requires_exactly_one_open_span() {
        let spans = LatencySpans::new();
        spans.begin(1, t(0));
        spans.mark_open(Stage::RequestWire, t(100));
        spans.begin(2, t(100));
        spans.mark_open(Stage::WorkerService, t(200)); // ambiguous: ignored
        spans.finish(1, t(300));
        spans.finish(2, t(300));
        assert_eq!(spans.stage(Stage::RequestWire).sum().as_nanos(), 100);
        assert_eq!(spans.stage(Stage::WorkerService).sum().as_nanos(), 0);
    }

    #[test]
    fn discard_drops_without_recording() {
        let spans = LatencySpans::new();
        spans.begin(9, t(0));
        spans.discard(9);
        spans.finish(9, t(100)); // unknown id: no-op
        assert_eq!(spans.completed(), 0);
    }

    #[test]
    fn recorder_collects_stage_events() {
        let spans = LatencySpans::new();
        let rec = TraceRecorder::new();
        spans.set_subscriber(Some(rec.clone()));
        spans.begin(5, t(0));
        spans.mark(5, Stage::RequestWire, t(10));
        spans.finish(5, t(20));
        let evs = rec.take();
        assert_eq!(evs.len(), 2);
        assert!(matches!(
            evs[0].kind,
            TraceKind::Stage {
                stage: Stage::RequestWire,
                op: 5
            }
        ));
        assert_eq!(rec.wire_messages(), 0);
    }
}
