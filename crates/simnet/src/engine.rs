//! The discrete-event engine and the cooperative task executor.
//!
//! A [`Sim`] owns a virtual clock, a time-ordered event queue, and a
//! single-threaded executor for `async` tasks. Events are closures scheduled
//! for a future instant; tasks are futures that suspend on simulation
//! primitives ([`sleep`](Sim::sleep), channels, [`crate::sync`] waiters) and
//! are woken by events. Ties in the event queue are broken by insertion
//! order, which makes every run fully deterministic: the same program and
//! seed produce the identical event trace, nanosecond for nanosecond.
//!
//! The executor is deliberately tiny — no work stealing, no threads — because
//! simulated time, not wall time, is the quantity under measurement.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::rng::SimRng;
use crate::sync::{oneshot, OneReceiver};
use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId(u64);

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// An event queue entry: fire `action` at `time`. `seq` breaks ties so that
/// two events scheduled for the same instant fire in scheduling order.
struct EventEntry {
    time: SimTime,
    seq: u64,
    action: Box<dyn FnOnce()>,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct SimWaker {
    id: TaskId,
    ready: Arc<Mutex<VecDeque<TaskId>>>,
}

impl Wake for SimWaker {
    fn wake(self: Arc<Self>) {
        self.ready.lock().push_back(self.id);
    }
}

struct EngineCore {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    events: RefCell<BinaryHeap<Reverse<EventEntry>>>,
    /// Tasks ready to be polled. Shared with wakers, hence the (uncontended)
    /// mutex: `std::task::Wake` requires `Send + Sync` even though this
    /// executor never leaves one thread.
    ready: Arc<Mutex<VecDeque<TaskId>>>,
    tasks: RefCell<HashMap<TaskId, Option<BoxFuture>>>,
    next_task: Cell<u64>,
    events_executed: Cell<u64>,
    polls: Cell<u64>,
    rng: RefCell<SimRng>,
}

/// Handle to the simulation world. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Sim {
    core: Rc<EngineCore>,
}

/// Await side of [`Sim::spawn`]: resolves with the task's output once the
/// task completes. Dropping the handle detaches the task (it keeps running).
pub struct JoinHandle<T> {
    rx: OneReceiver<T>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        // OneReceiver is Unpin (it only holds an Rc), so no projection needed.
        match Pin::new(&mut self.get_mut().rx).poll(cx) {
            Poll::Ready(Ok(v)) => Poll::Ready(v),
            Poll::Ready(Err(_)) => panic!("simulation task dropped without completing"),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl Sim {
    /// Creates a fresh simulation world with the given RNG seed.
    pub fn new(seed: u64) -> Sim {
        Sim {
            core: Rc::new(EngineCore {
                now: Cell::new(SimTime::ZERO),
                seq: Cell::new(0),
                events: RefCell::new(BinaryHeap::new()),
                ready: Arc::new(Mutex::new(VecDeque::new())),
                tasks: RefCell::new(HashMap::new()),
                next_task: Cell::new(0),
                events_executed: Cell::new(0),
                polls: Cell::new(0),
                rng: RefCell::new(SimRng::new(seed)),
            }),
        }
    }

    /// The current instant on the virtual clock.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Runs `f` with the simulation's deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SimRng) -> R) -> R {
        f(&mut self.core.rng.borrow_mut())
    }

    /// Schedules `action` to run after `delay`.
    pub fn schedule(&self, delay: SimDuration, action: impl FnOnce() + 'static) {
        self.schedule_at(self.now() + delay, action);
    }

    /// Schedules `action` to run at absolute time `at`. Scheduling in the
    /// past is a logic error and panics: it would rewind causality.
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce() + 'static) {
        assert!(
            at >= self.now(),
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now()
        );
        let seq = self.core.seq.get();
        self.core.seq.set(seq + 1);
        self.core.events.borrow_mut().push(Reverse(EventEntry {
            time: at,
            seq,
            action: Box::new(action),
        }));
    }

    /// Spawns a task on the executor. The task starts at the next executor
    /// dispatch (it does not run synchronously inside `spawn`).
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let (tx, rx) = oneshot();
        let id = TaskId(self.core.next_task.get());
        self.core.next_task.set(id.0 + 1);
        let wrapped: BoxFuture = Box::pin(async move {
            let out = fut.await;
            // Receiver may be dropped (detached task); ignore.
            let _ = tx.send(out);
        });
        self.core.tasks.borrow_mut().insert(id, Some(wrapped));
        self.core.ready.lock().push_back(id);
        JoinHandle { rx }
    }

    /// A future that completes after `d` of simulated time.
    pub fn sleep(&self, d: SimDuration) -> crate::sync::Sleep {
        crate::sync::Sleep::start(self, d)
    }

    /// A future that completes at absolute time `at` (immediately if `at` has
    /// passed).
    pub fn sleep_until(&self, at: SimTime) -> crate::sync::Sleep {
        let d = at.saturating_since(self.now());
        crate::sync::Sleep::start(self, d)
    }

    /// Runs the simulation until both the event queue and the ready queue are
    /// empty. Returns the final virtual time.
    pub fn run(&self) -> SimTime {
        self.run_inner(None)
    }

    /// Runs the simulation until `deadline` (events at exactly `deadline`
    /// still fire). Returns the virtual time when the run stopped.
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        self.run_inner(Some(deadline))
    }

    /// Drives the world until `main` completes, then returns its output.
    /// Other pending tasks/events are left in place and can be resumed with
    /// further `run*` or `block_on` calls.
    pub fn block_on<T: 'static>(&self, main: impl Future<Output = T> + 'static) -> T {
        let done: Rc<Cell<bool>> = Rc::new(Cell::new(false));
        let out: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        {
            let done = done.clone();
            let out = out.clone();
            self.spawn(async move {
                let v = main.await;
                *out.borrow_mut() = Some(v);
                done.set(true);
            });
        }
        while !done.get() {
            if !self.step() {
                panic!(
                    "simulation deadlock: block_on future is pending but no events remain \
                     (a task is waiting on something that will never happen)"
                );
            }
        }
        let v = out.borrow_mut().take();
        v.expect("block_on output present")
    }

    /// Executes one unit of work (all currently-ready task polls, or one
    /// event). Returns false when nothing remains.
    fn step(&self) -> bool {
        if self.drain_ready() {
            return true;
        }
        let next = self.core.events.borrow_mut().pop();
        match next {
            Some(Reverse(ev)) => {
                debug_assert!(ev.time >= self.core.now.get());
                self.core.now.set(ev.time);
                self.core
                    .events_executed
                    .set(self.core.events_executed.get() + 1);
                (ev.action)();
                self.drain_ready();
                true
            }
            None => false,
        }
    }

    fn run_inner(&self, deadline: Option<SimTime>) -> SimTime {
        loop {
            if self.drain_ready() {
                continue;
            }
            // Peek: respect the deadline without consuming the event.
            let next_time = self.core.events.borrow().peek().map(|Reverse(e)| e.time);
            match next_time {
                Some(t) => {
                    if let Some(d) = deadline {
                        if t > d {
                            self.core.now.set(d.max(self.core.now.get()));
                            return self.now();
                        }
                    }
                    let Reverse(ev) = self.core.events.borrow_mut().pop().expect("peeked");
                    self.core.now.set(ev.time);
                    self.core
                        .events_executed
                        .set(self.core.events_executed.get() + 1);
                    (ev.action)();
                }
                None => {
                    if let Some(d) = deadline {
                        self.core.now.set(d.max(self.core.now.get()));
                    }
                    return self.now();
                }
            }
        }
    }

    /// Polls every task currently in the ready queue. Returns true if any
    /// task was polled.
    fn drain_ready(&self) -> bool {
        let mut any = false;
        loop {
            let id = match self.core.ready.lock().pop_front() {
                Some(id) => id,
                None => break,
            };
            // Take the future out of its slot so the tasks map is not
            // borrowed while polling (a poll may spawn or wake other tasks).
            let fut = match self.core.tasks.borrow_mut().get_mut(&id) {
                Some(slot) => slot.take(),
                None => None, // already finished; stale wake
            };
            let Some(mut fut) = fut else { continue };
            any = true;
            self.core.polls.set(self.core.polls.get() + 1);
            let waker = Waker::from(Arc::new(SimWaker {
                id,
                ready: self.core.ready.clone(),
            }));
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    self.core.tasks.borrow_mut().remove(&id);
                }
                Poll::Pending => {
                    if let Some(slot) = self.core.tasks.borrow_mut().get_mut(&id) {
                        *slot = Some(fut);
                    }
                }
            }
        }
        any
    }

    /// Number of events executed so far (diagnostics, determinism checks).
    pub fn events_executed(&self) -> u64 {
        self.core.events_executed.get()
    }

    /// Number of task polls so far (diagnostics, determinism checks).
    pub fn task_polls(&self) -> u64 {
        self.core.polls.get()
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.tasks.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &[30u64, 10, 20] {
            let log = log.clone();
            sim.schedule(SimDuration::from_nanos(d), move || log.borrow_mut().push(d));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.now().as_nanos(), 30);
    }

    #[test]
    fn same_instant_fires_in_scheduling_order() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..16u32 {
            let log = log.clone();
            sim.schedule(SimDuration::from_nanos(5), move || log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let sim2 = sim.clone();
            let log = log.clone();
            sim.schedule(SimDuration::from_nanos(10), move || {
                log.borrow_mut().push("outer");
                let log = log.clone();
                sim2.schedule(SimDuration::from_nanos(5), move || {
                    log.borrow_mut().push("inner");
                });
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["outer", "inner"]);
        assert_eq!(sim.now().as_nanos(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let sim = Sim::new(1);
        sim.schedule(SimDuration::from_nanos(100), {
            let sim = sim.clone();
            move || sim.schedule_at(SimTime::from_nanos(50), || {})
        });
        sim.run();
    }

    #[test]
    fn block_on_sleep_advances_clock() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_micros(7)).await;
        });
        assert_eq!(sim.now().as_nanos(), 7_000);
    }

    #[test]
    fn spawn_and_join() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let got = sim.block_on(async move {
            let inner = s.clone();
            let h = s.spawn(async move {
                inner.sleep(SimDuration::from_nanos(42)).await;
                99u32
            });
            h.await
        });
        assert_eq!(got, 99);
        assert_eq!(sim.now().as_nanos(), 42);
    }

    #[test]
    fn run_until_respects_deadline() {
        let sim = Sim::new(1);
        let hits: Rc<Cell<u32>> = Rc::new(Cell::new(0));
        for d in [10u64, 20, 30, 40] {
            let hits = hits.clone();
            sim.schedule(SimDuration::from_nanos(d), move || hits.set(hits.get() + 1));
        }
        sim.run_until(SimTime::from_nanos(25));
        assert_eq!(hits.get(), 2);
        assert_eq!(sim.now().as_nanos(), 25);
        sim.run();
        assert_eq!(hits.get(), 4);
    }

    #[test]
    #[should_panic(expected = "simulation deadlock")]
    fn block_on_detects_deadlock() {
        let sim = Sim::new(1);
        sim.block_on(async {
            // A future that never resolves and has no event behind it.
            std::future::pending::<()>().await;
        });
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> (u64, u64, u64) {
            let sim = Sim::new(seed);
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..50 {
                    let jitter = s.with_rng(|r| r.gen_range_u64(1, 100));
                    s.sleep(SimDuration::from_nanos(jitter)).await;
                }
            });
            (
                sim.now().as_nanos(),
                sim.events_executed(),
                sim.task_polls(),
            )
        }
        assert_eq!(run_once(7), run_once(7));
        // A different seed should (overwhelmingly likely) produce a
        // different finishing time.
        assert_ne!(run_once(7).0, run_once(8).0);
    }

    #[test]
    fn many_tasks_interleave_deterministically() {
        let sim = Sim::new(3);
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..8u32 {
            let s = sim.clone();
            let log = log.clone();
            sim.spawn(async move {
                for step in 0..4u64 {
                    s.sleep(SimDuration::from_nanos(10 * (i as u64 + 1))).await;
                    log.borrow_mut().push((i, step));
                }
            });
        }
        sim.run();
        let first = log.borrow().clone();

        let sim2 = Sim::new(3);
        let log2: Rc<RefCell<Vec<(u32, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..8u32 {
            let s = sim2.clone();
            let log = log2.clone();
            sim2.spawn(async move {
                for step in 0..4u64 {
                    s.sleep(SimDuration::from_nanos(10 * (i as u64 + 1))).await;
                    log.borrow_mut().push((i, step));
                }
            });
        }
        sim2.run();
        assert_eq!(first, *log2.borrow());
    }
}
