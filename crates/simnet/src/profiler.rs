//! Continuous zero-virtual-time profiler over the [`Tracer`] event stream.
//!
//! The trace layer (PR 2) gives a *timeline you read*; this module turns
//! it into an *explanation the system computes*, in three parts:
//!
//! 1. **Folded span profiles** — every begin/end span pair is folded into
//!    a per-`(node, track)` call stack and accumulated as
//!    inclusive/exclusive virtual-time totals, emitted in the classic
//!    collapsed-stack ("flamegraph") format
//!    (`node0;worker3;core:worker_service;core:lock_wait 1234`).
//! 2. **Per-request critical-path decomposition** — each completed
//!    `client_op` has its end-to-end latency attributed to the ordered
//!    [`PathStage`] taxonomy (issue → request wire → worker queue →
//!    lock wait → lock hold → service → response wire → complete), with
//!    an explicit signed *unaccounted* residual so that
//!    `Σ stages + residual == end-to-end` holds **exactly** for every
//!    op — the same identity discipline as PR 1's attribution tests.
//! 3. **Windowed top-K signatures** — completed paths are bucketed into
//!    fixed virtual-time windows; each window aggregates per-stage
//!    p50/p99 and the top-K *critical-path signatures* (the ordered
//!    dominant stages of an op, e.g. `lock_wait>service`), surfaced via
//!    registry metrics (the `Sampler` picks them up), the
//!    `HealthMonitor` degradation dump, and the `stats profile` verb.
//!
//! Attaching the profiler flips the tracer into *detail mode*, which
//! enables the extra correlation markers (`client_sent`, `client_reply`,
//! sockets-path `client_op`/`dispatch`/`worker_service`) that the
//! default trace stream omits — so committed trace exports stay
//! byte-identical when no profiler is attached. Like every other
//! observability surface in this repo, the profiler is pure host-side
//! bookkeeping: a profiled run ends at exactly the same virtual clock as
//! a bare one (pinned by `tests/profiling.rs`).
//!
//! **Correlation id domains.** UCR request ids are client-generated and
//! travel in the request header, so server-side events correlate to the
//! issuing `client_op` by id. Sockets servers stamp their own op ids;
//! those events correlate through the single-open-op fallback (exact
//! when one client op is in flight, unattributed — absorbed by the
//! residual — otherwise). In detail mode each client seeds its id space
//! with its node id so concurrent clients never collide (one client per
//! node, the topology every bench here uses).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::exemplar::ExemplarRing;
use crate::fabric::NodeId;
use crate::metrics::{Counter, Gauge, Metrics};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Event, EventSink, Layer, Phase, Tracer, Track};

// ---------------------------------------------------------------------
// Critical-path stage taxonomy
// ---------------------------------------------------------------------

/// Number of critical-path stages.
pub const PATH_STAGE_COUNT: usize = 8;

/// Ordered stages of a request's critical path, client issue to client
/// completion. Coarser client-side stage accounting lives in
/// [`Stage`](crate::metrics::Stage); this taxonomy splits the server side
/// by *cause* (queueing vs lock wait vs lock hold vs service) using the
/// cross-layer trace stream, which the client-local view cannot see.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathStage {
    /// Client-side serialization/post until the request leaves the node.
    Issue,
    /// Request on the wire (and in HCA/kernel queues) until server
    /// dispatch sees it.
    RequestWire,
    /// Waiting in a worker's queue between dispatch and service start.
    WorkerQueue,
    /// Blocked parked on store locks (contended acquisitions only).
    LockWait,
    /// Holding store locks (the serialized portion of service).
    LockHold,
    /// Lock-free service work (parse, hash, store access, encode).
    Service,
    /// Response on the wire until the client's completion handler runs.
    ResponseWire,
    /// Client-side completion handling until the op retires.
    Complete,
}

impl PathStage {
    /// All stages in path order.
    pub const ALL: [PathStage; PATH_STAGE_COUNT] = [
        PathStage::Issue,
        PathStage::RequestWire,
        PathStage::WorkerQueue,
        PathStage::LockWait,
        PathStage::LockHold,
        PathStage::Service,
        PathStage::ResponseWire,
        PathStage::Complete,
    ];

    /// Stable snake_case name.
    pub fn label(self) -> &'static str {
        match self {
            PathStage::Issue => "issue",
            PathStage::RequestWire => "request_wire",
            PathStage::WorkerQueue => "worker_queue",
            PathStage::LockWait => "lock_wait",
            PathStage::LockHold => "lock_hold",
            PathStage::Service => "service",
            PathStage::ResponseWire => "response_wire",
            PathStage::Complete => "complete",
        }
    }

    /// Array index of this stage.
    pub fn index(self) -> usize {
        match self {
            PathStage::Issue => 0,
            PathStage::RequestWire => 1,
            PathStage::WorkerQueue => 2,
            PathStage::LockWait => 3,
            PathStage::LockHold => 4,
            PathStage::Service => 5,
            PathStage::ResponseWire => 6,
            PathStage::Complete => 7,
        }
    }
}

/// One completed request's critical-path decomposition. The invariant
/// `Σ stages + residual == end_to_end` holds exactly (nanosecond
/// arithmetic, signed residual) for every produced value — checked by
/// [`CriticalPath::is_exact`] and audited in bulk by
/// [`Profiler::audit`].
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Correlation id (the client request id).
    pub op: u64,
    /// Total client-observed latency.
    pub end_to_end: SimDuration,
    /// Per-stage attribution, indexed by [`PathStage::index`]. Stages
    /// whose markers were missing (e.g. an uncorrelated sockets server
    /// span) are zero; the residual absorbs their time.
    pub stages: [SimDuration; PATH_STAGE_COUNT],
    /// Unaccounted time: `end_to_end - Σ stages`, in signed nanoseconds.
    /// Positive residual is time between markers nothing claims (e.g.
    /// executor hand-off); a negative residual flags double-attribution
    /// (possible only when parallel mget parts overlap lock waits).
    pub residual_ns: i64,
    /// Virtual time the op retired (window assignment key).
    pub finished_at: SimTime,
}

impl CriticalPath {
    /// Sum of all stage attributions.
    pub fn stage_sum(&self) -> SimDuration {
        SimDuration::from_nanos(self.stages.iter().map(|d| d.as_nanos()).sum())
    }

    /// The exactness identity: stage sum plus residual equals end-to-end.
    pub fn is_exact(&self) -> bool {
        self.stage_sum().as_nanos() as i64 + self.residual_ns == self.end_to_end.as_nanos() as i64
    }

    /// The stage with the largest attribution (first in path order wins
    /// ties).
    pub fn dominant_stage(&self) -> PathStage {
        let mut best = PathStage::Issue;
        let mut best_ns = 0u64;
        for s in PathStage::ALL {
            let ns = self.stages[s.index()].as_nanos();
            if ns > best_ns {
                best = s;
                best_ns = ns;
            }
        }
        best
    }

    /// The op's critical-path signature: stages contributing at least
    /// `min_share` of end-to-end, ordered by contribution (descending,
    /// path order on ties), joined with `>` — e.g. `lock_wait>service`.
    /// Empty end-to-end yields `"-"`.
    pub fn signature(&self, min_share: f64) -> String {
        let e2e = self.end_to_end.as_nanos();
        if e2e == 0 {
            return "-".to_string();
        }
        let mut parts: Vec<(u64, usize)> = PathStage::ALL
            .iter()
            .map(|s| (self.stages[s.index()].as_nanos(), s.index()))
            .filter(|(ns, _)| *ns as f64 / e2e as f64 >= min_share)
            .collect();
        parts.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        if parts.is_empty() {
            return "-".to_string();
        }
        parts
            .iter()
            .map(|(_, i)| PathStage::ALL[*i].label())
            .collect::<Vec<_>>()
            .join(">")
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Profiler tunables.
#[derive(Clone, Copy, Debug)]
pub struct ProfilerConfig {
    /// Virtual-time width of an aggregation window.
    pub window: SimDuration,
    /// How many signatures the windowed top-K keeps.
    pub top_k: usize,
    /// Minimum share of end-to-end a stage needs to enter an op's
    /// signature.
    pub signature_min_share: f64,
    /// Keep every completed [`CriticalPath`] (tests and the audit bench
    /// read them back; large runs may prefer aggregates only).
    pub keep_paths: bool,
}

impl Default for ProfilerConfig {
    fn default() -> ProfilerConfig {
        ProfilerConfig {
            window: SimDuration::from_micros(200),
            top_k: 4,
            signature_min_share: 0.10,
            keep_paths: false,
        }
    }
}

// ---------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------

/// An in-flight `client_op` accumulating correlation markers.
struct OpenPath {
    started_at: SimTime,
    sent_at: Option<SimTime>,
    dispatched_at: Option<SimTime>,
    service_first: Option<SimTime>,
    service_last: Option<SimTime>,
    lock_wait: SimDuration,
    lock_hold: SimDuration,
    reply_at: Option<SimTime>,
}

impl OpenPath {
    fn new(at: SimTime) -> OpenPath {
        OpenPath {
            started_at: at,
            sent_at: None,
            dispatched_at: None,
            service_first: None,
            service_last: None,
            lock_wait: SimDuration::ZERO,
            lock_hold: SimDuration::ZERO,
            reply_at: None,
        }
    }
}

/// An open span frame on a fold stack.
struct Frame {
    layer: Layer,
    name: &'static str,
    begin: SimTime,
    /// Virtual time already attributed to closed children (subtracted to
    /// get this frame's exclusive time).
    child_ns: u64,
}

/// Per-window aggregation of completed paths.
struct WindowAgg {
    index: u64,
    count: u64,
    stage_samples: [Vec<u64>; PATH_STAGE_COUNT],
    signatures: HashMap<String, u64>,
}

impl WindowAgg {
    fn new(index: u64) -> WindowAgg {
        WindowAgg {
            index,
            count: 0,
            stage_samples: Default::default(),
            signatures: HashMap::new(),
        }
    }
}

/// Snapshot of one closed window's aggregate, for reports.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Window ordinal (virtual time divided by the window width).
    pub index: u64,
    /// Completed paths in the window.
    pub count: u64,
    /// Per-stage `(p50, p99)` over the window's paths, by stage index.
    pub stage_quantiles: [(SimDuration, SimDuration); PATH_STAGE_COUNT],
    /// Top-K `(signature, count)` pairs, most frequent first.
    pub top_signatures: Vec<(String, u64)>,
}

struct ProfileMetrics {
    paths: Rc<Counter>,
    stage_ns: [Rc<Counter>; PATH_STAGE_COUNT],
    residual_abs_ns: Rc<Counter>,
    unmatched: Rc<Counter>,
    open_paths: Rc<Gauge>,
    dominant_share: Rc<Gauge>,
}

// ---------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------

/// One fold lane: spans of one op on one track nest strictly.
type LaneKey = (Option<NodeId>, Track, u64);

/// The continuous profiler. Construct with [`Profiler::attach`]; read
/// back with [`Profiler::folded_lines`], [`Profiler::paths`],
/// [`Profiler::audit`], [`Profiler::window_report`], and
/// [`Profiler::stat_lines`].
pub struct Profiler {
    cfg: ProfilerConfig,
    /// In-flight client ops by correlation id.
    open: RefCell<HashMap<u64, OpenPath>>,
    /// Open lock spans: `(op, name, track) → begin`, so concurrently
    /// parked waiters on different workers never cross-match.
    open_locks: RefCell<HashMap<(u64, &'static str, Track), SimTime>>,
    /// Fold stacks per `(node, track, op)` lane. Spans of one op nest
    /// strictly; pipelined sibling ops on the same track get their own
    /// stack and aggregate into the same folded path.
    stacks: RefCell<HashMap<LaneKey, Vec<Frame>>>,
    /// Folded exclusive totals: stack path → nanoseconds.
    folded: RefCell<BTreeMap<String, u64>>,
    /// Completed paths (kept only when `cfg.keep_paths`).
    paths: RefCell<Vec<CriticalPath>>,
    completed: Cell<u64>,
    /// Cumulative per-stage totals and samples.
    stage_total_ns: RefCell<[u64; PATH_STAGE_COUNT]>,
    stage_samples: RefCell<[Vec<u64>; PATH_STAGE_COUNT]>,
    e2e_total_ns: Cell<u64>,
    residual_abs_total_ns: Cell<u64>,
    max_abs_residual_ns: Cell<u64>,
    inexact: Cell<u64>,
    unmatched_events: Cell<u64>,
    /// Cumulative signature counts.
    signatures: RefCell<HashMap<String, u64>>,
    current_window: RefCell<Option<WindowAgg>>,
    last_window: RefCell<Option<WindowReport>>,
    metrics: RefCell<Option<ProfileMetrics>>,
    exemplar_rings: RefCell<Vec<Rc<ExemplarRing>>>,
}

impl Profiler {
    /// A detached profiler (mostly for tests; prefer
    /// [`Profiler::attach`]).
    pub fn new(cfg: ProfilerConfig) -> Rc<Profiler> {
        Rc::new(Profiler {
            cfg,
            open: RefCell::new(HashMap::new()),
            open_locks: RefCell::new(HashMap::new()),
            stacks: RefCell::new(HashMap::new()),
            folded: RefCell::new(BTreeMap::new()),
            paths: RefCell::new(Vec::new()),
            completed: Cell::new(0),
            stage_total_ns: RefCell::new([0; PATH_STAGE_COUNT]),
            stage_samples: RefCell::new(Default::default()),
            e2e_total_ns: Cell::new(0),
            residual_abs_total_ns: Cell::new(0),
            max_abs_residual_ns: Cell::new(0),
            inexact: Cell::new(0),
            unmatched_events: Cell::new(0),
            signatures: RefCell::new(HashMap::new()),
            current_window: RefCell::new(None),
            last_window: RefCell::new(None),
            metrics: RefCell::new(None),
            exemplar_rings: RefCell::new(Vec::new()),
        })
    }

    /// Builds a profiler, subscribes it to `tracer`, flips the tracer
    /// into detail mode, and registers it as the tracer's profiler (so
    /// `stats profile` can find it). Must run before the clients whose
    /// ops it should decompose are constructed (clients seed their id
    /// space from the detail flag).
    pub fn attach(tracer: &Rc<Tracer>, cfg: ProfilerConfig) -> Rc<Profiler> {
        let p = Profiler::new(cfg);
        tracer.add_sink(p.clone());
        tracer.set_profiler(p.clone());
        tracer.set_detail(true);
        p
    }

    /// Registers the `profile.*` registry feeds (path/stage counters,
    /// open-path and dominant-share gauges) so the `Sampler` and the
    /// Prometheus exposition see the profiler. Idempotent.
    pub fn bind_metrics(&self, metrics: &Metrics) {
        let mut slot = self.metrics.borrow_mut();
        if slot.is_some() {
            return;
        }
        *slot = Some(ProfileMetrics {
            paths: metrics.counter("profile.paths"),
            stage_ns: PathStage::ALL
                .map(|s| metrics.counter(&format!("profile.stage.{}_ns", s.label()))),
            residual_abs_ns: metrics.counter("profile.residual_abs_ns"),
            unmatched: metrics.counter("profile.unmatched_events"),
            open_paths: metrics.gauge("profile.open_paths"),
            dominant_share: metrics.gauge("profile.dominant_share"),
        });
    }

    /// Adds an exemplar ring whose records should gain critical-path
    /// breakdowns: when an op completes, any captured exemplar carrying
    /// its span id is annotated with the decomposition.
    pub fn bind_exemplars(&self, ring: &Rc<ExemplarRing>) {
        self.exemplar_rings.borrow_mut().push(ring.clone());
    }

    // -- queries ------------------------------------------------------

    /// Completed critical paths so far.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Client ops currently in flight.
    pub fn open_len(&self) -> usize {
        self.open.borrow().len()
    }

    /// Events that could not be correlated to any in-flight op.
    pub fn unmatched_events(&self) -> u64 {
        self.unmatched_events.get()
    }

    /// Every kept [`CriticalPath`] (empty unless `keep_paths` was set).
    pub fn paths(&self) -> Vec<CriticalPath> {
        self.paths.borrow().clone()
    }

    /// Cumulative attribution to `stage` across all completed paths.
    pub fn stage_total(&self, stage: PathStage) -> SimDuration {
        SimDuration::from_nanos(self.stage_total_ns.borrow()[stage.index()])
    }

    /// Cumulative end-to-end time across all completed paths.
    pub fn e2e_total(&self) -> SimDuration {
        SimDuration::from_nanos(self.e2e_total_ns.get())
    }

    /// `stage`'s share of cumulative end-to-end time (0 when idle).
    pub fn stage_share(&self, stage: PathStage) -> f64 {
        let e2e = self.e2e_total_ns.get();
        if e2e == 0 {
            return 0.0;
        }
        self.stage_total_ns.borrow()[stage.index()] as f64 / e2e as f64
    }

    /// Cumulative `(p50, p99)` for `stage` across all completed paths.
    pub fn stage_quantiles(&self, stage: PathStage) -> (SimDuration, SimDuration) {
        quantiles(&self.stage_samples.borrow()[stage.index()])
    }

    /// The stage with the largest cumulative attribution.
    pub fn dominant_stage(&self) -> PathStage {
        let totals = self.stage_total_ns.borrow();
        let mut best = PathStage::Issue;
        for s in PathStage::ALL {
            if totals[s.index()] > totals[best.index()] {
                best = s;
            }
        }
        best
    }

    /// Cumulative top-`k` `(signature, count)` pairs, most frequent
    /// first (signature order breaks ties, so output is deterministic).
    pub fn top_signatures(&self, k: usize) -> Vec<(String, u64)> {
        top_k(&self.signatures.borrow(), k)
    }

    /// The most recently *closed* window's aggregate, falling back to
    /// the still-open window when none has closed yet.
    pub fn window_report(&self) -> Option<WindowReport> {
        if let Some(r) = self.last_window.borrow().as_ref() {
            return Some(r.clone());
        }
        self.current_window
            .borrow()
            .as_ref()
            .map(|w| finalize(w, self.cfg.top_k))
    }

    /// The unaccounted-time audit over every completed path: op count,
    /// ops violating the exactness identity (always 0 by construction —
    /// the audit proves the bookkeeping, not the arithmetic), total and
    /// maximum absolute residual, and the residual's share of total
    /// end-to-end time.
    pub fn audit(&self) -> AuditReport {
        let e2e = self.e2e_total_ns.get();
        AuditReport {
            ops: self.completed.get(),
            inexact_ops: self.inexact.get(),
            residual_abs_total: SimDuration::from_nanos(self.residual_abs_total_ns.get()),
            max_abs_residual: SimDuration::from_nanos(self.max_abs_residual_ns.get()),
            residual_share: if e2e == 0 {
                0.0
            } else {
                self.residual_abs_total_ns.get() as f64 / e2e as f64
            },
        }
    }

    /// Folded collapsed-stack lines `(path, exclusive_ns)`, sorted by
    /// path — the flamegraph input format.
    pub fn folded_lines(&self) -> Vec<(String, u64)> {
        self.folded
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The `stats profile` report: audit totals, per-stage cumulative
    /// share/p50/p99, the current top signatures, and the last window.
    pub fn stat_lines(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        let a = self.audit();
        out.push(("profile.ops".into(), a.ops.to_string()));
        out.push(("profile.open".into(), self.open_len().to_string()));
        out.push(("profile.inexact_ops".into(), a.inexact_ops.to_string()));
        out.push((
            "profile.residual_abs_us".into(),
            format!("{:.3}", a.residual_abs_total.as_micros_f64()),
        ));
        out.push((
            "profile.residual_share".into(),
            format!("{:.4}", a.residual_share),
        ));
        out.push((
            "profile.unmatched_events".into(),
            self.unmatched_events.get().to_string(),
        ));
        out.push((
            "profile.e2e_total_us".into(),
            format!("{:.3}", self.e2e_total().as_micros_f64()),
        ));
        for s in PathStage::ALL {
            let (p50, p99) = self.stage_quantiles(s);
            out.push((
                format!("profile.stage.{}", s.label()),
                format!(
                    "share={:.4} total_us={:.3} p50_us={:.3} p99_us={:.3}",
                    self.stage_share(s),
                    self.stage_total(s).as_micros_f64(),
                    p50.as_micros_f64(),
                    p99.as_micros_f64()
                ),
            ));
        }
        for (i, (sig, n)) in self.top_signatures(self.cfg.top_k).into_iter().enumerate() {
            out.push((format!("profile.signature.{i}"), format!("{n}x {sig}")));
        }
        if let Some(w) = self.window_report() {
            out.push(("profile.window.index".into(), w.index.to_string()));
            out.push(("profile.window.ops".into(), w.count.to_string()));
            for (i, (sig, n)) in w.top_signatures.iter().enumerate() {
                out.push((
                    format!("profile.window.signature.{i}"),
                    format!("{n}x {sig}"),
                ));
            }
        }
        out.push((
            "profile.folded_paths".into(),
            self.folded.borrow().len().to_string(),
        ));
        out
    }

    // -- event handling -----------------------------------------------

    fn handle(&self, ev: &Event) {
        match ev.phase {
            Phase::Begin => self.fold_begin(ev),
            Phase::End => self.fold_end(ev),
            Phase::Instant => {}
        }
        if ev.layer != Layer::Core {
            return;
        }
        match (ev.name, ev.phase) {
            ("client_op", Phase::Begin) => {
                self.open.borrow_mut().insert(ev.op, OpenPath::new(ev.at));
                self.publish_open_gauge();
            }
            ("client_op", Phase::End) => self.finish(ev.op, ev.at),
            ("client_sent", Phase::Instant) => self.with_path(ev.op, |p| {
                p.sent_at.get_or_insert(ev.at);
            }),
            ("client_reply", Phase::Instant) => self.with_path(ev.op, |p| {
                p.reply_at.get_or_insert(ev.at);
            }),
            ("dispatch", Phase::Instant) => self.with_path(ev.op, |p| {
                p.dispatched_at.get_or_insert(ev.at);
            }),
            ("worker_service", Phase::Begin) => self.with_path(ev.op, |p| {
                if p.service_first.is_none_or(|t| ev.at < t) {
                    p.service_first = Some(ev.at);
                }
            }),
            ("worker_service", Phase::End) => self.with_path(ev.op, |p| {
                if p.service_last.is_none_or(|t| ev.at > t) {
                    p.service_last = Some(ev.at);
                }
            }),
            ("lock_wait", Phase::Begin) | ("lock_hold", Phase::Begin) => {
                self.open_locks
                    .borrow_mut()
                    .insert((ev.op, ev.name, ev.track), ev.at);
            }
            ("lock_wait", Phase::End) | ("lock_hold", Phase::End) => {
                let begun = self
                    .open_locks
                    .borrow_mut()
                    .remove(&(ev.op, ev.name, ev.track));
                if let Some(t0) = begun {
                    let d = ev.at.saturating_since(t0);
                    let wait = ev.name == "lock_wait";
                    self.with_path(ev.op, |p| {
                        if wait {
                            p.lock_wait += d;
                        } else {
                            p.lock_hold += d;
                        }
                    });
                }
            }
            _ => {}
        }
    }

    /// Resolves an event's op to an in-flight path: direct id match
    /// first (UCR: request ids are end-to-end), then the single-open-op
    /// fallback (sockets: the server's op domain differs; exact when one
    /// op is in flight). Unresolvable events count as unmatched and
    /// their time lands in the residual.
    fn with_path(&self, op: u64, f: impl FnOnce(&mut OpenPath)) {
        let mut open = self.open.borrow_mut();
        if let Some(p) = open.get_mut(&op) {
            f(p);
            return;
        }
        if open.len() == 1 {
            f(open.values_mut().next().expect("len checked"));
            return;
        }
        self.unmatched_events.set(self.unmatched_events.get() + 1);
        if let Some(m) = self.metrics.borrow().as_ref() {
            m.unmatched.add(1);
        }
    }

    fn finish(&self, op: u64, at: SimTime) {
        let Some(p) = self.open.borrow_mut().remove(&op) else {
            self.unmatched_events.set(self.unmatched_events.get() + 1);
            return;
        };
        self.publish_open_gauge();
        let e2e = at.saturating_since(p.started_at);
        let mut stages = [SimDuration::ZERO; PATH_STAGE_COUNT];
        stages[PathStage::Issue.index()] = span(Some(p.started_at), p.sent_at);
        stages[PathStage::RequestWire.index()] = span(p.sent_at, p.dispatched_at);
        stages[PathStage::WorkerQueue.index()] = span(p.dispatched_at, p.service_first);
        stages[PathStage::LockWait.index()] = p.lock_wait;
        stages[PathStage::LockHold.index()] = p.lock_hold;
        stages[PathStage::Service.index()] =
            span(p.service_first, p.service_last).saturating_sub(p.lock_wait + p.lock_hold);
        stages[PathStage::ResponseWire.index()] = span(p.service_last, p.reply_at);
        stages[PathStage::Complete.index()] = span(p.reply_at, Some(at));
        let sum_ns: u64 = stages.iter().map(|d| d.as_nanos()).sum();
        let residual_ns = e2e.as_nanos() as i64 - sum_ns as i64;
        let path = CriticalPath {
            op,
            end_to_end: e2e,
            stages,
            residual_ns,
            finished_at: at,
        };
        self.record(path);
    }

    fn record(&self, path: CriticalPath) {
        self.completed.set(self.completed.get() + 1);
        if !path.is_exact() {
            self.inexact.set(self.inexact.get() + 1);
        }
        {
            let mut totals = self.stage_total_ns.borrow_mut();
            let mut samples = self.stage_samples.borrow_mut();
            for s in PathStage::ALL {
                let ns = path.stages[s.index()].as_nanos();
                totals[s.index()] += ns;
                samples[s.index()].push(ns);
            }
        }
        self.e2e_total_ns
            .set(self.e2e_total_ns.get() + path.end_to_end.as_nanos());
        let abs_res = path.residual_ns.unsigned_abs();
        self.residual_abs_total_ns
            .set(self.residual_abs_total_ns.get() + abs_res);
        if abs_res > self.max_abs_residual_ns.get() {
            self.max_abs_residual_ns.set(abs_res);
        }
        let sig = path.signature(self.cfg.signature_min_share);
        *self.signatures.borrow_mut().entry(sig.clone()).or_insert(0) += 1;

        // Windowing: close the current window when a completion lands
        // past its edge. Completions arrive in virtual-time order.
        let widx = path.finished_at.as_nanos() / self.cfg.window.as_nanos().max(1);
        {
            let mut cur = self.current_window.borrow_mut();
            let rotate = cur.as_ref().is_none_or(|w| w.index != widx);
            if rotate {
                if let Some(w) = cur.take() {
                    *self.last_window.borrow_mut() = Some(finalize(&w, self.cfg.top_k));
                }
                *cur = Some(WindowAgg::new(widx));
            }
            let w = cur.as_mut().expect("window just ensured");
            w.count += 1;
            for s in PathStage::ALL {
                w.stage_samples[s.index()].push(path.stages[s.index()].as_nanos());
            }
            *w.signatures.entry(sig).or_insert(0) += 1;
        }

        if let Some(m) = self.metrics.borrow().as_ref() {
            m.paths.add(1);
            for s in PathStage::ALL {
                m.stage_ns[s.index()].add(path.stages[s.index()].as_nanos());
            }
            m.residual_abs_ns.add(abs_res);
            let e2e = self.e2e_total_ns.get();
            if e2e > 0 {
                let dom = self.dominant_stage();
                m.dominant_share
                    .set(self.stage_total_ns.borrow()[dom.index()] as f64 / e2e as f64);
            }
        }
        for ring in self.exemplar_rings.borrow().iter() {
            ring.annotate_path(path.op, &path);
        }
        if self.cfg.keep_paths {
            self.paths.borrow_mut().push(path);
        }
    }

    fn publish_open_gauge(&self) {
        if let Some(m) = self.metrics.borrow().as_ref() {
            m.open_paths.set(self.open.borrow().len() as f64);
        }
    }

    // -- folding ------------------------------------------------------

    fn fold_begin(&self, ev: &Event) {
        self.stacks
            .borrow_mut()
            .entry((ev.node, ev.track, ev.op))
            .or_default()
            .push(Frame {
                layer: ev.layer,
                name: ev.name,
                begin: ev.at,
                child_ns: 0,
            });
    }

    fn fold_end(&self, ev: &Event) {
        let key = (ev.node, ev.track, ev.op);
        let mut stacks = self.stacks.borrow_mut();
        let Some(stack) = stacks.get_mut(&key) else {
            return;
        };
        let Some(pos) = stack
            .iter()
            .rposition(|f| f.layer == ev.layer && f.name == ev.name)
        else {
            return;
        };
        // Frames above the match are spans whose end outlives their
        // parent (a lock guard dropped after `worker_service` closes):
        // close them implicitly at this timestamp so their time folds,
        // then pop the matched frame. Their real End event later finds
        // no frame and is ignored.
        while stack.len() > pos {
            let f = stack.pop().expect("pos < len");
            let inclusive = ev.at.saturating_since(f.begin).as_nanos();
            let exclusive = inclusive.saturating_sub(f.child_ns);
            let mut path = match key.0 {
                Some(n) => format!("node{}", n.0),
                None => "global".to_string(),
            };
            path.push(';');
            path.push_str(&key.1.lane_label());
            for anc in stack.iter() {
                path.push(';');
                path.push_str(anc.layer.label());
                path.push(':');
                path.push_str(anc.name);
            }
            path.push(';');
            path.push_str(f.layer.label());
            path.push(':');
            path.push_str(f.name);
            *self.folded.borrow_mut().entry(path).or_insert(0) += exclusive;
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += inclusive;
            }
        }
        if stack.is_empty() {
            stacks.remove(&key);
        }
    }
}

impl EventSink for Profiler {
    fn on_event(&self, ev: &Event) {
        self.handle(ev);
    }
}

/// Bulk result of [`Profiler::audit`].
#[derive(Clone, Copy, Debug)]
pub struct AuditReport {
    /// Completed paths audited.
    pub ops: u64,
    /// Paths violating `Σ stages + residual == end-to-end` (always 0).
    pub inexact_ops: u64,
    /// Sum of absolute residuals.
    pub residual_abs_total: SimDuration,
    /// Largest single-op absolute residual.
    pub max_abs_residual: SimDuration,
    /// `residual_abs_total / Σ end-to-end`.
    pub residual_share: f64,
}

fn span(from: Option<SimTime>, to: Option<SimTime>) -> SimDuration {
    match (from, to) {
        (Some(a), Some(b)) => b.saturating_since(a),
        _ => SimDuration::ZERO,
    }
}

fn quantiles(samples: &[u64]) -> (SimDuration, SimDuration) {
    if samples.is_empty() {
        return (SimDuration::ZERO, SimDuration::ZERO);
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    let pick = |q: f64| SimDuration::from_nanos(s[((s.len() - 1) as f64 * q).round() as usize]);
    (pick(0.50), pick(0.99))
}

fn top_k(sigs: &HashMap<String, u64>, k: usize) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = sigs.iter().map(|(s, n)| (s.clone(), *n)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

fn finalize(w: &WindowAgg, k: usize) -> WindowReport {
    let mut q = [(SimDuration::ZERO, SimDuration::ZERO); PATH_STAGE_COUNT];
    for (i, samples) in w.stage_samples.iter().enumerate() {
        q[i] = quantiles(samples);
    }
    WindowReport {
        index: w.index,
        count: w.count,
        stage_quantiles: q,
        top_signatures: top_k(&w.signatures, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, phase: Phase, node: u32, track: Track, op: u64, at_ns: u64) -> Event {
        Event {
            layer: Layer::Core,
            name,
            phase,
            node: Some(NodeId(node)),
            track,
            op,
            bytes: 0,
            at: SimTime::from_nanos(at_ns),
        }
    }

    /// Drives one fully-marked op through the profiler and checks every
    /// stage plus the exactness identity.
    #[test]
    fn full_critical_path_decomposes_exactly() {
        let p = Profiler::new(ProfilerConfig {
            keep_paths: true,
            ..ProfilerConfig::default()
        });
        let w = Track::Worker(0);
        p.handle(&ev("client_op", Phase::Begin, 1, Track::Main, 7, 100));
        p.handle(&ev("client_sent", Phase::Instant, 1, Track::Main, 7, 130));
        p.handle(&ev("dispatch", Phase::Instant, 0, Track::Main, 7, 200));
        p.handle(&ev("worker_service", Phase::Begin, 0, w, 7, 250));
        p.handle(&ev("lock_wait", Phase::Begin, 0, w, 7, 260));
        p.handle(&ev("lock_wait", Phase::End, 0, w, 7, 300));
        p.handle(&ev("lock_hold", Phase::Begin, 0, w, 7, 300));
        p.handle(&ev("lock_hold", Phase::End, 0, w, 7, 380));
        p.handle(&ev("worker_service", Phase::End, 0, w, 7, 400));
        p.handle(&ev("client_reply", Phase::Instant, 1, Track::Main, 7, 470));
        p.handle(&ev("client_op", Phase::End, 1, Track::Main, 7, 500));
        let paths = p.paths();
        assert_eq!(paths.len(), 1);
        let cp = &paths[0];
        let ns = |s: PathStage| cp.stages[s.index()].as_nanos();
        assert_eq!(ns(PathStage::Issue), 30);
        assert_eq!(ns(PathStage::RequestWire), 70);
        assert_eq!(ns(PathStage::WorkerQueue), 50);
        assert_eq!(ns(PathStage::LockWait), 40);
        assert_eq!(ns(PathStage::LockHold), 80);
        assert_eq!(ns(PathStage::Service), 30); // 150 span - 120 locked
        assert_eq!(ns(PathStage::ResponseWire), 70);
        assert_eq!(ns(PathStage::Complete), 30);
        assert_eq!(cp.end_to_end.as_nanos(), 400);
        assert_eq!(cp.residual_ns, 0); // every nanosecond is claimed
        assert!(cp.is_exact());
        assert_eq!(cp.dominant_stage(), PathStage::LockHold);
        let audit = p.audit();
        assert_eq!(audit.ops, 1);
        assert_eq!(audit.inexact_ops, 0);
    }

    /// Server events whose op id lives in another domain still attach
    /// when exactly one op is open (the sockets correlation rule).
    #[test]
    fn single_open_op_fallback_correlates_foreign_ids() {
        let p = Profiler::new(ProfilerConfig {
            keep_paths: true,
            ..ProfilerConfig::default()
        });
        p.handle(&ev("client_op", Phase::Begin, 1, Track::Main, 77, 0));
        p.handle(&ev("dispatch", Phase::Instant, 0, Track::Main, 3, 40));
        p.handle(&ev(
            "worker_service",
            Phase::Begin,
            0,
            Track::Worker(0),
            3,
            60,
        ));
        p.handle(&ev(
            "worker_service",
            Phase::End,
            0,
            Track::Worker(0),
            3,
            90,
        ));
        p.handle(&ev("client_op", Phase::End, 1, Track::Main, 77, 120));
        let cp = &p.paths()[0];
        assert_eq!(cp.stages[PathStage::WorkerQueue.index()].as_nanos(), 20);
        assert_eq!(cp.stages[PathStage::Service.index()].as_nanos(), 30);
        assert!(cp.is_exact());
        assert_eq!(p.unmatched_events(), 0);
    }

    /// With several ops open, foreign-id events are unmatched and their
    /// time lands in the residual — never misattributed.
    #[test]
    fn ambiguous_foreign_ids_count_as_unmatched() {
        let p = Profiler::new(ProfilerConfig {
            keep_paths: true,
            ..ProfilerConfig::default()
        });
        p.handle(&ev("client_op", Phase::Begin, 1, Track::Main, 10, 0));
        p.handle(&ev("client_op", Phase::Begin, 2, Track::Main, 20, 5));
        p.handle(&ev("dispatch", Phase::Instant, 0, Track::Main, 3, 40));
        p.handle(&ev("client_op", Phase::End, 1, Track::Main, 10, 100));
        p.handle(&ev("client_op", Phase::End, 2, Track::Main, 20, 110));
        assert_eq!(p.unmatched_events(), 1);
        for cp in p.paths() {
            assert!(cp.is_exact());
            assert_eq!(cp.residual_ns, cp.end_to_end.as_nanos() as i64);
        }
    }

    /// Folding: nested spans accumulate exclusive time; a child whose
    /// end outlives its parent is implicitly closed at the parent's end.
    #[test]
    fn folded_profile_accumulates_exclusive_time() {
        let p = Profiler::new(ProfilerConfig::default());
        let w = Track::Worker(2);
        p.handle(&ev("worker_service", Phase::Begin, 0, w, 5, 100));
        p.handle(&ev("lock_hold", Phase::Begin, 0, w, 5, 120));
        p.handle(&ev("worker_service", Phase::End, 0, w, 5, 200));
        // The hold guard drops after the service span closed.
        p.handle(&ev("lock_hold", Phase::End, 0, w, 5, 200));
        let folded: std::collections::HashMap<String, u64> = p.folded_lines().into_iter().collect();
        assert_eq!(
            folded["node0;worker2;core:worker_service;core:lock_hold"],
            80
        );
        assert_eq!(folded["node0;worker2;core:worker_service"], 20);
    }

    #[test]
    fn signatures_rank_dominant_stages() {
        let cp = CriticalPath {
            op: 1,
            end_to_end: SimDuration::from_nanos(1000),
            stages: {
                let mut s = [SimDuration::ZERO; PATH_STAGE_COUNT];
                s[PathStage::LockWait.index()] = SimDuration::from_nanos(600);
                s[PathStage::Service.index()] = SimDuration::from_nanos(300);
                s[PathStage::Issue.index()] = SimDuration::from_nanos(50);
                s
            },
            residual_ns: 50,
            finished_at: SimTime::from_nanos(0),
        };
        assert_eq!(cp.signature(0.10), "lock_wait>service");
        assert!(cp.is_exact());
    }

    #[test]
    fn windows_rotate_and_report_quantiles() {
        let cfg = ProfilerConfig {
            window: SimDuration::from_nanos(1000),
            ..ProfilerConfig::default()
        };
        let p = Profiler::new(cfg);
        for i in 0..10u64 {
            let base = i * 50;
            p.handle(&ev("client_op", Phase::Begin, 1, Track::Main, i, base));
            p.handle(&ev("client_op", Phase::End, 1, Track::Main, i, base + 40));
        }
        // All land in window 0; force rotation with a later op.
        p.handle(&ev("client_op", Phase::Begin, 1, Track::Main, 99, 1500));
        p.handle(&ev("client_op", Phase::End, 1, Track::Main, 99, 1600));
        let w = p.window_report().expect("window");
        assert_eq!(w.index, 0);
        assert_eq!(w.count, 10);
    }
}
