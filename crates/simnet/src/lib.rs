//! # simnet — deterministic network/host simulation substrate
//!
//! This crate replaces the hardware testbeds of Jose et al., *"Memcached
//! Design on High Performance RDMA Capable Interconnects"* (ICPP 2011):
//! two InfiniBand clusters (ConnectX DDR and QDR), 10GigE TCP-offload NICs,
//! and 1GigE. It provides:
//!
//! * a **discrete-event engine** with a virtual nanosecond clock and a
//!   single-threaded async executor ([`Sim`]) — tasks are futures that
//!   suspend on simulated time, so protocol code reads like ordinary
//!   blocking code while runs stay perfectly deterministic;
//! * **FIFO occupancy resources** ([`FifoResource`]) modeling links, HCA
//!   pipelines, and kernel protocol processing — the contention sources
//!   behind the paper's multi-client throughput results;
//! * a **fabric** ([`Cluster`], [`Network`]) wiring nodes together over up
//!   to three physical networks;
//! * **calibrated cost profiles** ([`profiles`]) for both clusters and all
//!   five transports of the paper's evaluation.
//!
//! Higher layers (`verbs`, `socksim`, `ucr`, `rmc`) implement real protocol
//! logic — real bytes move end to end — on top of [`Network::transmit`],
//! the single primitive through which all inter-node traffic flows.
//!
//! ```
//! use simnet::{Sim, SimDuration};
//!
//! let sim = Sim::new(42);
//! let s = sim.clone();
//! let elapsed = sim.block_on(async move {
//!     let t0 = s.now();
//!     s.sleep(SimDuration::from_micros(12)).await;
//!     s.now() - t0
//! });
//! assert_eq!(elapsed, SimDuration::from_micros(12));
//! ```

#![warn(missing_docs)]

mod engine;
pub mod exemplar;
mod fabric;
pub mod metrics;
pub mod profiler;
pub mod profiles;
mod resource;
mod rng;
pub mod sketch;
pub mod sync;
mod time;
pub mod timeseries;
pub mod trace;
pub mod trace_export;
pub mod vlock;

pub use engine::{JoinHandle, Sim, TaskId};
pub use exemplar::{Exemplar, ExemplarConfig, ExemplarRing};
pub use fabric::{Cluster, Network, Node, NodeId, Transfer};
pub use metrics::{
    LatencySpans, Metrics, Stage, TraceEvent, TraceKind, TraceRecorder, TraceSubscriber,
};
pub use profiler::{
    AuditReport, CriticalPath, PathStage, Profiler, ProfilerConfig, WindowReport, PATH_STAGE_COUNT,
};
pub use profiles::{ClusterProfile, NetKind, Stack};
pub use resource::FifoResource;
pub use rng::SimRng;
pub use sketch::{CountMin, HotKey, SketchConfig, TopK, WorkloadSketch};
pub use time::{SimDuration, SimTime};
pub use timeseries::{
    Health, HealthInput, HealthMonitor, HealthRules, MonitorBinding, SamplePoint, Sampler,
    SamplerConfig, SloSpec, SloTracker,
};
pub use trace::{Event, EventRecorder, EventSink, Layer, Phase, Tracer, Track};
pub use vlock::{VLock, VLockGuard, VLockMeters, VLockStats};
