//! Cross-layer span/instant event tracing over virtual time.
//!
//! Generalizes the wire-level [`TraceEvent`](crate::metrics::TraceEvent)
//! stream into one event model every layer of the stack emits into: the
//! fabric (wire tx/rx), verbs (work-request post/completion, CM), UCR
//! (active-message lifecycle, counters, endpoint faults), and the
//! memcached core (dispatch, worker service, client ops). Events carry a
//! virtual timestamp, a [`Layer`]/[`Track`] placement, and a correlation
//! id (`op`) so one logical operation can be followed across layers.
//!
//! The hub is the [`Tracer`], one per [`Cluster`](crate::Cluster):
//!
//! * **live sinks** — any number of [`EventSink`]s see each event as it is
//!   emitted (the Perfetto exporter and tests subscribe here);
//! * an **always-on flight recorder** — a fixed-capacity ring of the most
//!   recent events, kept even when no sink is attached, so a timeout or
//!   endpoint failure can dump the event tail leading up to the fault.
//!
//! Emission is pure host-side bookkeeping: no tracer call sleeps or
//! schedules, so a traced run ends at exactly the same virtual time as an
//! untraced one (pinned by `tests/tracing.rs`).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::fabric::NodeId;
use crate::time::SimTime;

/// Which layer of the stack emitted an event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Layer {
    /// Physical network: message egress/ingress.
    Wire,
    /// Verbs: QP work requests, completions, connection management.
    Verbs,
    /// UCR active-message runtime: AM lifecycle, counters, endpoints.
    Ucr,
    /// Memcached client/server logic.
    Core,
}

impl Layer {
    /// All layers, in stack order (bottom up).
    pub const ALL: [Layer; 4] = [Layer::Wire, Layer::Verbs, Layer::Ucr, Layer::Core];

    /// Stable lower-case name (used as the Perfetto category).
    pub fn label(self) -> &'static str {
        match self {
            Layer::Wire => "wire",
            Layer::Verbs => "verbs",
            Layer::Ucr => "ucr",
            Layer::Core => "core",
        }
    }

    fn index(self) -> usize {
        match self {
            Layer::Wire => 0,
            Layer::Verbs => 1,
            Layer::Ucr => 2,
            Layer::Core => 3,
        }
    }
}

/// Whether an event opens a span, closes one, or marks a point in time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Span start; matched to the [`Phase::End`] with the same `op`+`name`.
    Begin,
    /// Span end.
    End,
    /// Instantaneous marker.
    Instant,
}

/// Where an event lands inside its node's Perfetto process: one lane per
/// logical execution context.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Track {
    /// The node's main/default lane (client loops, runtime progress).
    Main,
    /// A server worker lane, by worker index.
    Worker(u32),
    /// A UCR endpoint lane, by endpoint id.
    Endpoint(u64),
    /// A verbs queue-pair lane, by QP number.
    Qp(u32),
}

impl Track {
    /// Stable lower-case lane name (used in folded-profile stack paths).
    pub fn lane_label(self) -> String {
        match self {
            Track::Main => "main".to_string(),
            Track::Worker(w) => format!("worker{w}"),
            Track::Endpoint(e) => format!("ep{e}"),
            Track::Qp(q) => format!("qp{q}"),
        }
    }
}

/// One trace event, stamped with virtual time.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Emitting layer.
    pub layer: Layer,
    /// Event name (static — e.g. `"rdma_read"`, `"worker_service"`).
    pub name: &'static str,
    /// Span begin/end or instant.
    pub phase: Phase,
    /// Node the event happened on (`None` for fabric-global events).
    pub node: Option<NodeId>,
    /// Lane within the node.
    pub track: Track,
    /// Correlation id tying events of one logical operation together
    /// (wr_id at the verbs layer, req_id at the core layer, …).
    pub op: u64,
    /// Bytes involved, when meaningful (0 otherwise).
    pub bytes: u64,
    /// Virtual timestamp.
    pub at: SimTime,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Begin => "begin",
            Phase::End => "end",
            Phase::Instant => "·",
        };
        write!(
            f,
            "[{:>12} ns] {:<5} {:<22} {:<5}",
            self.at.as_nanos(),
            self.layer.label(),
            self.name,
            phase
        )?;
        match self.node {
            Some(n) => write!(f, " {n}")?,
            None => write!(f, " -")?,
        }
        match self.track {
            Track::Main => {}
            Track::Worker(w) => write!(f, "/worker{w}")?,
            Track::Endpoint(e) => write!(f, "/ep{e}")?,
            Track::Qp(q) => write!(f, "/qp{q}")?,
        }
        write!(f, " op={}", self.op)?;
        if self.bytes > 0 {
            write!(f, " bytes={}", self.bytes)?;
        }
        Ok(())
    }
}

/// Consumer of the live event stream.
pub trait EventSink {
    /// Called synchronously for every emitted event.
    fn on_event(&self, ev: &Event);
}

/// Default flight-recorder capacity (events). Generous enough to hold the
/// full tail of any single-operation failure at every layer.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Per-cluster tracing hub: fans events out to subscribed sinks and keeps
/// the always-on flight-recorder ring. See the module docs.
pub struct Tracer {
    sinks: RefCell<Vec<Rc<dyn EventSink>>>,
    flight: RefCell<VecDeque<Event>>,
    flight_cap: Cell<usize>,
    flight_seen: Cell<u64>,
    layer_counts: [Cell<u64>; 4],
    last_fault: RefCell<Option<String>>,
    faults: Cell<u64>,
    /// Detail mode: gates the `*_detail` emission helpers. Off by default
    /// so the committed trace exports (and the event counts pinned by
    /// `tests/tracing.rs`) are unchanged; flipped on when a profiler
    /// attaches, adding the extra correlation markers critical-path
    /// analysis needs. Emission stays zero-virtual-time either way.
    detail: Cell<bool>,
    /// The attached continuous profiler, when one exists. Stored here so
    /// the server's `stats profile` verb can reach it through the tracer
    /// it already holds.
    profiler: RefCell<Option<Rc<crate::profiler::Profiler>>>,
    /// Flight-recorder pressure gauges (`trace.flight.len` /
    /// `trace.flight.dropped`), bound lazily so a run without an
    /// observability consumer registers nothing.
    flight_gauges: RefCell<Option<FlightGauges>>,
}

struct FlightGauges {
    len: Rc<crate::metrics::Gauge>,
    dropped: Rc<crate::metrics::Gauge>,
}

/// How many fault dumps are printed to stderr in full before later ones
/// are summarized to one line (all dumps stay retrievable via
/// [`Tracer::last_fault`]). Keeps runs with many *expected* timeouts —
/// e.g. UDP-loss benchmarks — from flooding stderr.
const FAULT_PRINT_LIMIT: u64 = 2;

/// Max events printed per fault dump (the stored dump is complete).
const FAULT_PRINT_TAIL: usize = 64;

impl Tracer {
    /// A fresh tracer with the default flight capacity.
    pub fn new() -> Rc<Tracer> {
        Rc::new(Tracer {
            sinks: RefCell::new(Vec::new()),
            flight: RefCell::new(VecDeque::with_capacity(64)),
            flight_cap: Cell::new(DEFAULT_FLIGHT_CAPACITY),
            flight_seen: Cell::new(0),
            layer_counts: [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)],
            last_fault: RefCell::new(None),
            faults: Cell::new(0),
            detail: Cell::new(false),
            profiler: RefCell::new(None),
            flight_gauges: RefCell::new(None),
        })
    }

    /// Attaches a live sink. Sinks see every subsequent event.
    pub fn add_sink(&self, sink: Rc<dyn EventSink>) {
        self.sinks.borrow_mut().push(sink);
    }

    /// Detaches all live sinks (the flight recorder keeps running).
    pub fn clear_sinks(&self) {
        self.sinks.borrow_mut().clear();
        *self.profiler.borrow_mut() = None;
        self.detail.set(false);
    }

    /// Whether detail mode is on (see [`Tracer::set_detail`]).
    pub fn detail(&self) -> bool {
        self.detail.get()
    }

    /// Turns detail mode on or off. Detail mode makes the `*_detail`
    /// emission helpers live; it is enabled automatically when a
    /// profiler attaches.
    pub fn set_detail(&self, on: bool) {
        self.detail.set(on);
    }

    /// Stores the attached profiler so stats plumbing can reach it.
    /// Called by [`Profiler::attach`](crate::profiler::Profiler::attach);
    /// the profiler must separately be added as a sink.
    pub fn set_profiler(&self, p: Rc<crate::profiler::Profiler>) {
        *self.profiler.borrow_mut() = Some(p);
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<Rc<crate::profiler::Profiler>> {
        self.profiler.borrow().clone()
    }

    /// Registers the flight-recorder pressure gauges (`trace.flight.len`
    /// and `trace.flight.dropped`) in `metrics` and keeps them current
    /// from [`Tracer::emit`] on. Idempotent; lazy so runs without an
    /// observability consumer register nothing.
    pub fn bind_flight_gauges(&self, metrics: &crate::metrics::Metrics) {
        let mut slot = self.flight_gauges.borrow_mut();
        if slot.is_some() {
            return;
        }
        let g = FlightGauges {
            len: metrics.gauge("trace.flight.len"),
            dropped: metrics.gauge("trace.flight.dropped"),
        };
        g.len.set(self.flight.borrow().len() as f64);
        g.dropped.set(self.flight_dropped() as f64);
        *slot = Some(g);
    }

    /// Resizes the flight-recorder ring; existing overflow is evicted
    /// oldest-first.
    pub fn set_flight_capacity(&self, cap: usize) {
        self.flight_cap.set(cap.max(1));
        let mut ring = self.flight.borrow_mut();
        while ring.len() > self.flight_cap.get() {
            ring.pop_front();
        }
    }

    /// Records one event: bumps the per-layer counter, appends to the
    /// flight ring (evicting the oldest event when full), and fans out to
    /// every live sink. Pure host-side work — never advances virtual time.
    pub fn emit(&self, ev: Event) {
        let c = &self.layer_counts[ev.layer.index()];
        c.set(c.get() + 1);
        self.flight_seen.set(self.flight_seen.get() + 1);
        {
            let mut ring = self.flight.borrow_mut();
            while ring.len() >= self.flight_cap.get() {
                ring.pop_front();
            }
            ring.push_back(ev);
            if let Some(g) = self.flight_gauges.borrow().as_ref() {
                g.len.set(ring.len() as f64);
                g.dropped
                    .set((self.flight_seen.get() - ring.len() as u64) as f64);
            }
        }
        for sink in self.sinks.borrow().iter() {
            sink.on_event(&ev);
        }
    }

    /// Convenience: emit a [`Phase::Begin`] event.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &self,
        layer: Layer,
        name: &'static str,
        node: NodeId,
        track: Track,
        op: u64,
        bytes: u64,
        at: SimTime,
    ) {
        self.emit(Event {
            layer,
            name,
            phase: Phase::Begin,
            node: Some(node),
            track,
            op,
            bytes,
            at,
        });
    }

    /// Convenience: emit a [`Phase::End`] event.
    #[allow(clippy::too_many_arguments)]
    pub fn end(
        &self,
        layer: Layer,
        name: &'static str,
        node: NodeId,
        track: Track,
        op: u64,
        bytes: u64,
        at: SimTime,
    ) {
        self.emit(Event {
            layer,
            name,
            phase: Phase::End,
            node: Some(node),
            track,
            op,
            bytes,
            at,
        });
    }

    /// Convenience: emit a [`Phase::Instant`] event.
    #[allow(clippy::too_many_arguments)]
    pub fn instant(
        &self,
        layer: Layer,
        name: &'static str,
        node: NodeId,
        track: Track,
        op: u64,
        bytes: u64,
        at: SimTime,
    ) {
        self.emit(Event {
            layer,
            name,
            phase: Phase::Instant,
            node: Some(node),
            track,
            op,
            bytes,
            at,
        });
    }

    /// Like [`Tracer::begin`] but emitted only in detail mode — the extra
    /// markers the profiler needs, invisible (and cost-free) otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_detail(
        &self,
        layer: Layer,
        name: &'static str,
        node: NodeId,
        track: Track,
        op: u64,
        bytes: u64,
        at: SimTime,
    ) {
        if self.detail.get() {
            self.begin(layer, name, node, track, op, bytes, at);
        }
    }

    /// Like [`Tracer::end`] but emitted only in detail mode.
    #[allow(clippy::too_many_arguments)]
    pub fn end_detail(
        &self,
        layer: Layer,
        name: &'static str,
        node: NodeId,
        track: Track,
        op: u64,
        bytes: u64,
        at: SimTime,
    ) {
        if self.detail.get() {
            self.end(layer, name, node, track, op, bytes, at);
        }
    }

    /// Like [`Tracer::instant`] but emitted only in detail mode.
    #[allow(clippy::too_many_arguments)]
    pub fn instant_detail(
        &self,
        layer: Layer,
        name: &'static str,
        node: NodeId,
        track: Track,
        op: u64,
        bytes: u64,
        at: SimTime,
    ) {
        if self.detail.get() {
            self.instant(layer, name, node, track, op, bytes, at);
        }
    }

    /// Events emitted so far for `layer`.
    pub fn layer_count(&self, layer: Layer) -> u64 {
        self.layer_counts[layer.index()].get()
    }

    /// Total events emitted across all layers.
    pub fn total_events(&self) -> u64 {
        Layer::ALL.iter().map(|l| self.layer_count(*l)).sum()
    }

    /// The flight-recorder tail, oldest first.
    pub fn flight_snapshot(&self) -> Vec<Event> {
        self.flight.borrow().iter().copied().collect()
    }

    /// Events in the flight ring right now.
    pub fn flight_len(&self) -> usize {
        self.flight.borrow().len()
    }

    /// Events evicted from the ring since the start of the run (the
    /// recorder saw them but no longer holds them).
    pub fn flight_dropped(&self) -> u64 {
        self.flight_seen.get() - self.flight.borrow().len() as u64
    }

    /// Formats the flight-recorder tail as a readable dump: one line per
    /// event, oldest first, with virtual timestamps.
    pub fn format_flight(&self, reason: &str) -> String {
        let ring = self.flight.borrow();
        let mut out = String::new();
        out.push_str(&format!(
            "=== flight recorder dump: {reason} ({} events, {} evicted earlier) ===\n",
            ring.len(),
            self.flight_seen.get() - ring.len() as u64
        ));
        for ev in ring.iter() {
            out.push_str(&format!("{ev}\n"));
        }
        out
    }

    /// Post-mortem hook: formats the flight tail for `reason`, stores it
    /// as the last fault (retrievable via [`last_fault`](Tracer::last_fault)),
    /// and prints it to stderr so a failing test carries the event history
    /// instead of a bare error. Called on UCR sync timeouts and endpoint
    /// failures; tests may call it directly to opt in.
    ///
    /// Printing is bounded: the first two faults print a (tail-truncated)
    /// dump, later ones a single summary line — runs that *expect* many
    /// timeouts stay readable, while the stored dump is always complete.
    pub fn fault(&self, reason: &str) -> String {
        let dump = self.format_flight(reason);
        *self.last_fault.borrow_mut() = Some(dump.clone());
        let n = self.faults.get() + 1;
        self.faults.set(n);
        if n <= FAULT_PRINT_LIMIT {
            let ring = self.flight.borrow();
            let skip = ring.len().saturating_sub(FAULT_PRINT_TAIL);
            eprintln!(
                "=== flight recorder dump: {reason} (last {} of {} events) ===",
                ring.len() - skip,
                ring.len()
            );
            for ev in ring.iter().skip(skip) {
                eprintln!("{ev}");
            }
        } else if n == FAULT_PRINT_LIMIT + 1 {
            eprintln!(
                "flight recorder: {reason} — further fault dumps suppressed \
                 (retrieve via Tracer::last_fault)"
            );
        }
        dump
    }

    /// The most recent fault dump, if any fault fired this run.
    pub fn last_fault(&self) -> Option<String> {
        self.last_fault.borrow().clone()
    }

    /// Number of faults recorded this run.
    pub fn fault_count(&self) -> u64 {
        self.faults.get()
    }
}

/// An [`EventSink`] that buffers every event — the test/export collector.
#[derive(Default)]
pub struct EventRecorder {
    events: RefCell<Vec<Event>>,
}

impl EventRecorder {
    /// A fresh recorder, ready to pass to [`Tracer::add_sink`].
    pub fn new() -> Rc<EventRecorder> {
        Rc::new(EventRecorder::default())
    }

    /// Copies out everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.borrow_mut())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Recorded events matching `pred`.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.borrow().iter().filter(|e| pred(e)).count()
    }
}

impl EventSink for EventRecorder {
    fn on_event(&self, ev: &Event) {
        self.events.borrow_mut().push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(layer: Layer, name: &'static str, at_ns: u64) -> Event {
        Event {
            layer,
            name,
            phase: Phase::Instant,
            node: Some(NodeId(0)),
            track: Track::Main,
            op: 1,
            bytes: 0,
            at: SimTime::from_nanos(at_ns),
        }
    }

    #[test]
    fn layer_counts_and_sink_fanout() {
        let t = Tracer::new();
        let rec = EventRecorder::new();
        t.add_sink(rec.clone());
        t.emit(ev(Layer::Wire, "tx", 10));
        t.emit(ev(Layer::Ucr, "am_send", 20));
        t.emit(ev(Layer::Ucr, "counter_bump", 30));
        assert_eq!(t.layer_count(Layer::Wire), 1);
        assert_eq!(t.layer_count(Layer::Ucr), 2);
        assert_eq!(t.layer_count(Layer::Verbs), 0);
        assert_eq!(t.total_events(), 3);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.count(|e| e.layer == Layer::Ucr), 2);
    }

    #[test]
    fn flight_ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::new();
        t.set_flight_capacity(3);
        for i in 0..5 {
            t.emit(ev(Layer::Verbs, "post_send", i * 100));
        }
        let tail = t.flight_snapshot();
        assert_eq!(tail.len(), 3);
        assert_eq!(t.flight_dropped(), 2);
        // Oldest-first, and only the newest three survive.
        assert_eq!(tail[0].at.as_nanos(), 200);
        assert_eq!(tail[2].at.as_nanos(), 400);
    }

    #[test]
    fn fault_dump_is_stored_and_readable() {
        let t = Tracer::new();
        t.emit(ev(Layer::Ucr, "ep_failed", 42));
        assert!(t.last_fault().is_none());
        let dump = t.fault("test timeout");
        assert!(dump.contains("test timeout"));
        assert!(dump.contains("ep_failed"));
        assert_eq!(t.last_fault().as_deref(), Some(dump.as_str()));
    }

    #[test]
    fn clear_sinks_keeps_flight_recorder_running() {
        let t = Tracer::new();
        let rec = EventRecorder::new();
        t.add_sink(rec.clone());
        t.emit(ev(Layer::Core, "dispatch", 1));
        t.clear_sinks();
        t.emit(ev(Layer::Core, "dispatch", 2));
        assert_eq!(rec.len(), 1);
        assert_eq!(t.flight_len(), 2);
    }
}
