//! Active-message handlers (paper §IV-B).
//!
//! An active message carries a `msg_id` selecting a registered handler at
//! the target. The **header handler** runs when the header arrives and
//! identifies the destination buffer for the data; UCR then places the
//! data (memcpy off the network buffer for eager messages, RDMA read for
//! rendezvous) and runs the **completion handler**.

use crate::endpoint::Endpoint;

/// Where the target wants an active message's data placed.
pub enum AmDest {
    /// Let the runtime place it in a pool buffer; the completion handler
    /// receives an owned `Vec<u8>`.
    Pool,
    /// Place it directly into caller-provided registered memory (the
    /// zero-copy path for known destinations, e.g. a Memcached client's
    /// value buffer).
    Buffer(verbs::MrSlice),
    /// Drop the data (header-only protocols).
    Discard,
}

/// The data as delivered to the completion handler.
pub enum AmData {
    /// Data in a runtime pool buffer.
    Pool(Vec<u8>),
    /// `n` bytes were placed into the buffer returned by the header
    /// handler.
    Placed(usize),
    /// The header handler asked for the data to be dropped.
    Discarded,
}

impl AmData {
    /// Number of data bytes delivered.
    pub fn len(&self) -> usize {
        match self {
            AmData::Pool(v) => v.len(),
            AmData::Placed(n) => *n,
            AmData::Discarded => 0,
        }
    }

    /// True when no data was delivered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes, if the runtime owns them.
    pub fn into_vec(self) -> Option<Vec<u8>> {
        match self {
            AmData::Pool(v) => Some(v),
            _ => None,
        }
    }
}

/// A registered active-message handler.
pub trait AmHandler {
    /// Runs when the message header arrives; returns the data destination.
    /// The default accepts into a pool buffer.
    fn on_header(&self, ep: &Endpoint, hdr: &[u8], data_len: usize) -> AmDest {
        let _ = (ep, hdr, data_len);
        AmDest::Pool
    }

    /// Runs once the data is fully placed. Replies are issued with
    /// [`Endpoint::post_message`] (handlers are synchronous; the post is
    /// fire-and-forget, as header/completion handlers must not block —
    /// the classic active-message restriction).
    fn on_complete(&self, ep: &Endpoint, hdr: &[u8], data: AmData);
}

/// Wraps a closure as a pool-destination handler.
pub struct FnHandler<F>(pub F);

impl<F: Fn(&Endpoint, &[u8], AmData)> AmHandler for FnHandler<F> {
    fn on_complete(&self, ep: &Endpoint, hdr: &[u8], data: AmData) {
        (self.0)(ep, hdr, data)
    }
}
