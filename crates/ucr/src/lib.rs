//! # ucr — the Unified Communication Runtime (paper §IV)
//!
//! The communication library this paper contributes: an active-message
//! runtime over InfiniBand verbs that unifies HPC-style communication
//! design (MVAPICH-derived buffer management, SRQ, eager/rendezvous
//! protocols) with data-center requirements:
//!
//! * **endpoint model** — client/server channels instead of MPI ranks;
//!   bi-directional; reliable (RC-backed);
//! * **fault isolation** — a failing endpoint errors out locally; the
//!   runtime and every other endpoint keep working;
//! * **active messages** — header handler picks the data destination,
//!   completion handler post-processes (Figure 2 of the paper);
//! * **counters** — monotonically increasing origin/target/completion
//!   counters with timeout-bounded waiting;
//! * **eager/rendezvous switch** — header+data in one 8 KB network buffer
//!   for small messages (memcpy at the target), RDMA-read rendezvous
//!   (zero-copy) beyond it.
//!
//! Memcached (`rmc` crate) is built purely on this API: `set`/`get` are
//! two active messages and a counter wait (paper §V).

#![warn(missing_docs)]

mod counter;
mod endpoint;
mod handler;
mod onesided;
mod runtime;
mod wire;

pub use counter::Counter;
pub use endpoint::{Endpoint, SendOptions};
pub use handler::{AmData, AmDest, AmHandler, FnHandler};
pub use onesided::{MemoryDescriptor, UcrMemory};
pub use runtime::{EpListener, RtStats, UcrRuntime};
pub use wire::{PacketHeader, PacketKind, PACKET_HEADER_BYTES};

/// Errors surfaced by UCR operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UcrError {
    /// A counter wait (or connect) exceeded its deadline.
    Timeout,
    /// The endpoint's peer is unreachable; the endpoint is dead, the
    /// runtime is fine.
    EndpointFailed,
    /// No listener answered at the target.
    ConnectionRefused,
    /// The service port is already bound.
    PortInUse,
    /// The runtime behind this handle has been dropped.
    RuntimeGone,
    /// Message exceeds what the endpoint's transport can carry (UD
    /// endpoints are limited to one MTU — no RDMA rendezvous without a
    /// connection).
    MessageTooLarge,
}

impl std::fmt::Display for UcrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UcrError::Timeout => write!(f, "timed out"),
            UcrError::EndpointFailed => write!(f, "endpoint failed"),
            UcrError::ConnectionRefused => write!(f, "connection refused"),
            UcrError::PortInUse => write!(f, "port in use"),
            UcrError::RuntimeGone => write!(f, "runtime dropped"),
            UcrError::MessageTooLarge => write!(f, "message too large for transport"),
        }
    }
}

impl std::error::Error for UcrError {}
