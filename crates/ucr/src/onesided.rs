//! One-sided put/get (paper §IV-B).
//!
//! Alongside active messages, UCR exposes direct one-sided transfers for
//! PGAS-style consumers (the runtime is shared with UPC, §I): a peer
//! registers a memory region, advertises a descriptor out of band (e.g.
//! inside an active-message header), and the origin then reads or writes
//! it with zero remote CPU involvement. Completion is tracked with the
//! same counters as active messages.

use verbs::{Access, Mr, SendOp, SendWr, WcStatus};

use crate::counter::Counter;
use crate::endpoint::Endpoint;
use crate::runtime::{Pending, UcrRuntime};
use crate::UcrError;

/// A registered, remotely accessible memory region.
pub struct UcrMemory {
    mr: Mr,
}

/// Descriptor a peer uses to target a [`UcrMemory`] window. Plain data —
/// ship it in an active-message header.
pub type MemoryDescriptor = verbs::RemoteMemory;

impl UcrRuntime {
    /// Registers `len` bytes for remote one-sided access (put and get).
    pub fn register_memory(&self, len: usize) -> UcrMemory {
        UcrMemory {
            mr: self.pd_ref().register(
                len,
                Access::LOCAL_WRITE | Access::REMOTE_READ | Access::REMOTE_WRITE,
            ),
        }
    }
}

impl UcrMemory {
    /// Region length.
    pub fn len(&self) -> usize {
        self.mr.len()
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.mr.len() == 0
    }

    /// Local write into the region.
    pub fn write(&self, offset: usize, data: &[u8]) {
        self.mr.write_at(offset, data);
    }

    /// Local read out of the region.
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        self.mr.read_at(offset, len)
    }

    /// Descriptor for the window `[offset, offset+len)`.
    pub fn descriptor(&self, offset: usize, len: usize) -> MemoryDescriptor {
        self.mr.remote(offset, len)
    }
}

impl Endpoint {
    /// One-sided put: writes `data` into the peer's advertised window.
    /// The counter bumps when the data is placed (remote CPU untouched).
    pub fn put(
        &self,
        remote: MemoryDescriptor,
        data: &[u8],
        done: Option<Counter>,
    ) -> Result<(), UcrError> {
        if self.is_unreliable() {
            return Err(UcrError::MessageTooLarge); // RDMA needs RC
        }
        let rt = self.runtime()?;
        let src = rt.pd_ref().register_with(data.to_vec(), Access::default());
        let local = src.full();
        let wr_id = rt.alloc_pending(Pending::OneSided {
            done,
            ep: self.downgrade(),
        });
        rt.stash_onesided_src(wr_id, src);
        self.qp_ref()
            .post_send(SendWr::new(
                wr_id,
                SendOp::RdmaWrite {
                    local,
                    remote,
                    imm: None,
                },
            ))
            .map_err(|_| UcrError::EndpointFailed)
    }

    /// One-sided get: reads the peer's advertised window into `local`
    /// (a region from [`UcrRuntime::register_memory`]). The counter bumps
    /// when the data has landed locally.
    pub fn get(
        &self,
        local: &UcrMemory,
        local_offset: usize,
        remote: MemoryDescriptor,
        done: Option<Counter>,
    ) -> Result<(), UcrError> {
        if self.is_unreliable() {
            return Err(UcrError::MessageTooLarge);
        }
        let rt = self.runtime()?;
        let len = remote.len as usize;
        let slice = local.mr.slice(local_offset, len);
        let wr_id = rt.alloc_pending(Pending::OneSided {
            done,
            ep: self.downgrade(),
        });
        self.qp_ref()
            .post_send(SendWr::new(
                wr_id,
                SendOp::RdmaRead {
                    local: slice,
                    remote,
                },
            ))
            .map_err(|_| UcrError::EndpointFailed)
    }
}

/// Completion handling for one-sided operations, called from the progress
/// engine.
pub(crate) fn complete_onesided(
    done: Option<Counter>,
    ep: &std::rc::Weak<crate::endpoint::EpInner>,
    status: WcStatus,
) -> bool {
    if status.is_ok() {
        if let Some(c) = done {
            c.bump();
        }
        true
    } else {
        if let Some(ep) = ep.upgrade() {
            ep.failed.set(true);
        }
        false
    }
}
