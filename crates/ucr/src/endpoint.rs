//! Endpoints and message transmission (paper §IV-A, §IV-B).
//!
//! An endpoint is a bi-directional, client-server communication channel —
//! the departure from MPI's rank-addressed world that the data-center
//! model requires. A failed endpoint is isolated: sends on it error out,
//! counters waiting on its traffic time out, and every other endpoint of
//! the runtime keeps working.

use std::cell::Cell;
use std::rc::{Rc, Weak};

use simnet::trace::{Layer, Track};
use simnet::NodeId;
use verbs::{QueuePair, SendOp, SendWr};

use crate::counter::Counter;
use crate::runtime::{Pending, RtInner};
use crate::wire::{PacketHeader, PacketKind, PACKET_HEADER_BYTES};
use crate::UcrError;

/// Delivery/progress options for one [`Endpoint::send_message`] call. The
/// three counters mirror the paper's `ucr_send_message` signature; each is
/// optional, and omitting origin/completion suppresses the corresponding
/// internal message.
#[derive(Default)]
pub struct SendOptions {
    /// Bumped locally when the message's buffers are reusable.
    pub origin: Option<Counter>,
    /// Identifier of a counter *at the target* to bump when the data has
    /// arrived and the completion handler has run (0 = none). The id is
    /// typically learned from a prior message's application header.
    pub target_ctr: u64,
    /// Bumped locally when the target's completion handler has finished.
    pub completion: Option<Counter>,
}

/// Borrowed-or-owned payload for one send. Owned payloads are moved all
/// the way down — into the HCA's gather list (eager) or into the MR
/// (rendezvous) — with no staging copy; borrowed payloads are staged
/// exactly as before.
enum SendBuf<'a> {
    Borrowed(&'a [u8]),
    Owned(Vec<u8>),
}

impl SendBuf<'_> {
    fn len(&self) -> usize {
        match self {
            SendBuf::Borrowed(s) => s.len(),
            SendBuf::Owned(v) => v.len(),
        }
    }

    /// Source-buffer identity `(address, length)` — the registration-cache
    /// key. For borrowed sends this is the caller's buffer, so reusing the
    /// same buffer across sends hits the cache. Owned sends never cache
    /// (their address dies with the MR), so their identity is only used
    /// for tracing.
    fn ident(&self) -> (usize, usize) {
        match self {
            SendBuf::Borrowed(s) => (s.as_ptr() as usize, s.len()),
            SendBuf::Owned(v) => (v.as_ptr() as usize, v.len()),
        }
    }

    fn is_owned(&self) -> bool {
        matches!(self, SendBuf::Owned(_))
    }

    fn into_vec(self) -> Vec<u8> {
        match self {
            SendBuf::Borrowed(s) => s.to_vec(),
            SendBuf::Owned(v) => v,
        }
    }
}

pub(crate) struct EpInner {
    pub id: u64,
    pub qp: QueuePair,
    pub peer: NodeId,
    pub rt: Weak<RtInner>,
    pub failed: Cell<bool>,
    /// For unreliable endpoints: the peer's UD QP number. The QP is the
    /// runtime's shared UD QP; many endpoints multiplex over it — the
    /// scaling property SVII is after.
    pub ud_dest: Option<(NodeId, u32)>,
}

/// One end of an established UCR channel.
#[derive(Clone)]
pub struct Endpoint {
    pub(crate) inner: Rc<EpInner>,
}

impl Endpoint {
    /// The peer node.
    pub fn peer(&self) -> NodeId {
        self.inner.peer
    }

    /// Runtime-unique endpoint id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// True once the peer is unreachable (RC retries exhausted). Other
    /// endpoints of the runtime are unaffected — the fault-isolation
    /// property the paper adds over MPI-style runtimes.
    pub fn is_failed(&self) -> bool {
        self.inner.failed.get()
    }

    /// True for unreliable (UD-backed) endpoints: messages may be dropped
    /// and are limited to one MTU; use counters + timeouts to detect loss.
    pub fn is_unreliable(&self) -> bool {
        self.inner.ud_dest.is_some()
    }

    /// Sends an active message: `hdr` (application header, run through the
    /// target's header handler) plus `data`. Messages that fit the 8 KB
    /// network buffer go eagerly (header + data in one transaction, memcpy
    /// at the target); larger data is advertised for RDMA read (§IV-B,
    /// Figure 2). Resolves once the message is handed to the HCA.
    pub async fn send_message(
        &self,
        msg_id: u16,
        hdr: &[u8],
        data: &[u8],
        opts: SendOptions,
    ) -> Result<(), UcrError> {
        self.send_impl(msg_id, hdr, SendBuf::Borrowed(data), opts)
            .await
    }

    /// Like [`send_message`](Self::send_message), but takes ownership of
    /// `data`, eliminating the per-send payload copy: eager sends hand the
    /// buffer to the HCA as a gather entry, and rendezvous sends register
    /// it in place (always a fresh registration — only borrowed buffers,
    /// whose addresses are stable, participate in the registration
    /// cache). Saved bytes are counted in the runtime's
    /// [`RtStats`](crate::RtStats).
    pub async fn send_message_owned(
        &self,
        msg_id: u16,
        hdr: &[u8],
        data: Vec<u8>,
        opts: SendOptions,
    ) -> Result<(), UcrError> {
        self.send_impl(msg_id, hdr, SendBuf::Owned(data), opts)
            .await
    }

    async fn send_impl(
        &self,
        msg_id: u16,
        hdr: &[u8],
        data: SendBuf<'_>,
        opts: SendOptions,
    ) -> Result<(), UcrError> {
        let inner = &self.inner;
        if inner.failed.get() {
            return Err(UcrError::EndpointFailed);
        }
        let rt = inner.rt.upgrade().ok_or(UcrError::RuntimeGone)?;
        let sim = rt.sim.clone();
        // The eager threshold governs *payload* bytes (application header
        // + data): receive buffers are sized `PACKET_HEADER_BYTES +
        // threshold` (see `post_recv_buffer`), so the 64-byte packet
        // header must not count against it — a payload of exactly
        // `eager_threshold` bytes (the paper's 8 KB, §IV-C) rides eager.
        let payload = hdr.len() + data.len();
        let total = PACKET_HEADER_BYTES + payload;

        let mut pkt = PacketHeader::new(PacketKind::Eager, msg_id);
        pkt.hdr_len = hdr.len() as u32;
        pkt.data_len = data.len() as u64;
        pkt.target_ctr = opts.target_ctr;
        pkt.origin_ctr = opts.origin.as_ref().map(Counter::id).unwrap_or(0);
        pkt.completion_ctr = opts.completion.as_ref().map(Counter::id).unwrap_or(0);

        if let Some(ud_dest) = inner.ud_dest {
            // Unreliable endpoint: single-datagram eager only. The eager
            // threshold bounds the payload; the MTU bounds the full
            // datagram (packet header included) — both must hold.
            let limit = rt.ud_payload_limit();
            if payload > rt.eager_threshold.get() || total > limit {
                return Err(UcrError::MessageTooLarge);
            }
            sim.sleep(rt.stage_cost(data.len())).await;
            let mut head = Vec::with_capacity(PACKET_HEADER_BYTES + hdr.len());
            head.extend_from_slice(&pkt.encode());
            head.extend_from_slice(hdr);
            if data.is_owned() {
                rt.stats.eager_copy_saved_bytes.add(data.len() as u64);
            }
            let wr_id = rt.alloc_wr(Pending::EagerSend {
                origin: opts.origin,
                ep: Rc::downgrade(inner),
            });
            let mut wr = SendWr::new(
                wr_id,
                SendOp::SendGather {
                    head,
                    data: data.into_vec(),
                    imm: None,
                },
            );
            wr.ud_dest = Some(ud_dest);
            inner
                .qp
                .post_send(wr)
                .map_err(|_| UcrError::EndpointFailed)?;
            rt.tracer.instant(
                Layer::Ucr,
                "am_send_ud",
                rt.node,
                Track::Endpoint(inner.id),
                wr_id,
                payload as u64,
                sim.now(),
            );
            rt.stats.messages_sent.inc();
            return Ok(());
        }

        if payload <= rt.eager_threshold.get() {
            // Eager: stage header+data into a communication buffer (one
            // copy at this end, one at the target), single transaction.
            // Owned payloads skip the staging copy: the buffer rides the
            // HCA's gather list as-is.
            sim.sleep(rt.stage_cost(data.len())).await;
            let mut head = Vec::with_capacity(PACKET_HEADER_BYTES + hdr.len());
            head.extend_from_slice(&pkt.encode());
            head.extend_from_slice(hdr);
            if data.is_owned() {
                rt.stats.eager_copy_saved_bytes.add(data.len() as u64);
            }
            let wr_id = rt.alloc_wr(Pending::EagerSend {
                origin: opts.origin,
                ep: Rc::downgrade(inner),
            });
            inner
                .qp
                .post_send(SendWr::new(
                    wr_id,
                    SendOp::SendGather {
                        head,
                        data: data.into_vec(),
                        imm: None,
                    },
                ))
                .map_err(|_| UcrError::EndpointFailed)?;
            rt.tracer.instant(
                Layer::Ucr,
                "am_send_eager",
                rt.node,
                Track::Endpoint(inner.id),
                wr_id,
                payload as u64,
                sim.now(),
            );
            // The completion counter (if any) is bumped when the target's
            // Fin arrives; its id already travels in the packet header.
        } else {
            // Rendezvous: register the source buffer and advertise it; the
            // target pulls with RDMA read — zero copy. Repeat borrowed
            // sends from the same buffer reuse the cached registration
            // when it is idle; owned buffers register afresh every time.
            pkt.kind = PacketKind::RndvReq;
            let ident = data.ident();
            let owned = data.is_owned();
            let mr = rt.rndv_mr_for(inner.id, ident, data.into_vec(), owned);
            pkt.rkey = mr.rkey();
            pkt.offset = 0;
            pkt.token = rt.stash_rndv_src(mr);
            let mut buf = Vec::with_capacity(PACKET_HEADER_BYTES + hdr.len());
            buf.extend_from_slice(&pkt.encode());
            buf.extend_from_slice(hdr);
            let wr_id = rt.alloc_wr(Pending::CtrlSend {
                ep: Rc::downgrade(inner),
            });
            inner
                .qp
                .post_send(SendWr::new(
                    wr_id,
                    SendOp::SendInline {
                        data: buf,
                        imm: None,
                    },
                ))
                .map_err(|_| UcrError::EndpointFailed)?;
            rt.tracer.instant(
                Layer::Ucr,
                "am_send_rndv",
                rt.node,
                Track::Endpoint(inner.id),
                wr_id,
                ident.1 as u64,
                sim.now(),
            );
        }
        rt.stats.messages_sent.inc();
        Ok(())
    }

    /// Fire-and-forget variant usable from inside (synchronous) completion
    /// handlers: spawns the send on the runtime's executor.
    pub fn post_message(&self, msg_id: u16, hdr: Vec<u8>, data: Vec<u8>, opts: SendOptions) {
        let ep = self.clone();
        if let Some(rt) = self.inner.rt.upgrade() {
            rt.sim.clone().spawn(async move {
                let _ = ep.send_message_owned(msg_id, &hdr, data, opts).await;
            });
        }
    }

    pub(crate) fn runtime(&self) -> Result<crate::runtime::UcrRuntime, UcrError> {
        self.inner
            .rt
            .upgrade()
            .map(crate::runtime::UcrRuntime::from_inner)
            .ok_or(UcrError::RuntimeGone)
    }

    pub(crate) fn downgrade(&self) -> Weak<EpInner> {
        Rc::downgrade(&self.inner)
    }

    pub(crate) fn qp_ref(&self) -> &QueuePair {
        &self.inner.qp
    }

    /// Closes the endpoint. The peer's sends will fail over to its error
    /// path; this runtime drops the QP immediately.
    pub fn close(&self) {
        if let Some(rt) = self.inner.rt.upgrade() {
            rt.drop_endpoint(self.inner.qp.qpn());
        }
        self.inner.qp.close();
        self.inner.failed.set(true);
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.inner.id)
            .field("peer", &self.inner.peer)
            .field("failed", &self.inner.failed.get())
            .finish()
    }
}
