//! The UCR runtime: progress engine, buffer pool, endpoint establishment.
//!
//! One [`UcrRuntime`] exists per process (node). It owns a protection
//! domain, one completion queue for all endpoint traffic, a shared receive
//! queue stocked with 8 KB network buffers (the MVAPICH-derived buffer
//! management the paper reuses, §I refs [10][11]), the handler and counter
//! registries, and a progress task that reaps completions and dispatches
//! active messages.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::{Rc, Weak};

use simnet::profiles::{ClusterProfile, UCR_EAGER_THRESHOLD};
use simnet::trace::{Layer, Track};
use simnet::{NodeId, Sim, SimDuration, Tracer};
use verbs::{
    Access, Cq, Hca, IbFabric, Mr, MrSlice, Pd, QpType, QueuePair, SendOp, SendWr, Srq, Wc,
    WcOpcode,
};

use crate::counter::{Counter, CtrInner};
use crate::endpoint::{Endpoint, EpInner};
use crate::handler::{AmData, AmDest, AmHandler};
use crate::wire::{PacketHeader, PacketKind, PACKET_HEADER_BYTES};
use crate::UcrError;

/// Number of 8 KB network buffers kept posted on the SRQ.
const RECV_POOL_DEPTH: usize = 128;

/// Default capacity of the rendezvous registration cache (entries per
/// runtime, across all endpoints).
const MR_CACHE_CAPACITY: usize = 64;

/// Runtime statistics (diagnostics and tests), built on the
/// [`simnet::metrics`] counter primitive so they surface verbatim in
/// `stats`-style reports.
#[derive(Default)]
pub struct RtStats {
    /// Active messages sent (eager + rendezvous).
    pub messages_sent: simnet::metrics::Counter,
    /// Eager messages delivered.
    pub eager_delivered: simnet::metrics::Counter,
    /// Rendezvous transfers completed (RDMA reads).
    pub rndv_delivered: simnet::metrics::Counter,
    /// Internal (Fin) messages sent.
    pub fins_sent: simnet::metrics::Counter,
    /// Messages dropped for an unregistered msg_id.
    pub unknown_msg_dropped: simnet::metrics::Counter,
    /// Send-side failures observed (endpoint faults).
    pub send_failures: simnet::metrics::Counter,
    /// Rendezvous registration-cache hits: the source buffer's MR was
    /// reused instead of registered afresh.
    pub mr_cache_hits: simnet::metrics::Counter,
    /// Rendezvous registration-cache misses (fresh registration).
    pub mr_cache_misses: simnet::metrics::Counter,
    /// Payload bytes moved into the HCA's gather list on the owned eager
    /// send path instead of being staged through an extra copy.
    pub eager_copy_saved_bytes: simnet::metrics::Counter,
    /// Payload bytes registered in place (buffer moved into the MR) on
    /// the owned rendezvous send path instead of being copied.
    pub rndv_copy_saved_bytes: simnet::metrics::Counter,
    /// Eager receive buffers recycled from the free list instead of
    /// freshly registered.
    pub recv_bufs_recycled: simnet::metrics::Counter,
    /// Progress-engine wakeups; each services a whole CQ backlog batch.
    pub progress_wakes: simnet::metrics::Counter,
    /// Completions serviced by the progress engine across all wakeups.
    pub progress_completions: simnet::metrics::Counter,
    /// Bypass gets served by a client-direct RDMA read of server slab
    /// memory (zero remote CPU involvement).
    pub bypass_reads: simnet::metrics::Counter,
    /// Bypass reads that observed a seqlock version skew (a concurrent
    /// writer) and were retried with a fresh descriptor.
    pub bypass_retries: simnet::metrics::Counter,
    /// Bypass gets that gave up on the one-sided path and fell back to
    /// the AM get (descriptor miss, retry budget exhausted, read error).
    pub bypass_fallbacks: simnet::metrics::Counter,
    /// Rendezvous registrations evicted through
    /// [`UcrRuntime::invalidate_registration`] (the pin-down-cache
    /// munmap/free hook).
    pub mr_cache_invalidations: simnet::metrics::Counter,
}

impl RtStats {
    /// Renders the counters as `stats`-style `(name, value)` pairs.
    pub fn report(&self) -> Vec<(String, String)> {
        [
            ("ucr_messages_sent", self.messages_sent.get()),
            ("ucr_eager_delivered", self.eager_delivered.get()),
            ("ucr_rndv_delivered", self.rndv_delivered.get()),
            ("ucr_fins_sent", self.fins_sent.get()),
            ("ucr_unknown_msg_dropped", self.unknown_msg_dropped.get()),
            ("ucr_send_failures", self.send_failures.get()),
            ("ucr_mr_cache_hits", self.mr_cache_hits.get()),
            ("ucr_mr_cache_misses", self.mr_cache_misses.get()),
            (
                "ucr_eager_copy_saved_bytes",
                self.eager_copy_saved_bytes.get(),
            ),
            (
                "ucr_rndv_copy_saved_bytes",
                self.rndv_copy_saved_bytes.get(),
            ),
            ("ucr_recv_bufs_recycled", self.recv_bufs_recycled.get()),
            ("ucr_progress_wakes", self.progress_wakes.get()),
            ("ucr_progress_completions", self.progress_completions.get()),
            ("ucr_bypass_reads", self.bypass_reads.get()),
            ("ucr_bypass_retries", self.bypass_retries.get()),
            ("ucr_bypass_fallbacks", self.bypass_fallbacks.get()),
            (
                "ucr_mr_cache_invalidations",
                self.mr_cache_invalidations.get(),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
    }

    /// Zeroes every counter (the server's `stats reset` path). Purely an
    /// accounting restart: runtime behaviour does not read these.
    pub fn reset(&self) {
        self.messages_sent.reset();
        self.eager_delivered.reset();
        self.rndv_delivered.reset();
        self.fins_sent.reset();
        self.unknown_msg_dropped.reset();
        self.send_failures.reset();
        self.mr_cache_hits.reset();
        self.mr_cache_misses.reset();
        self.eager_copy_saved_bytes.reset();
        self.rndv_copy_saved_bytes.reset();
        self.recv_bufs_recycled.reset();
        self.progress_wakes.reset();
        self.progress_completions.reset();
        self.bypass_reads.reset();
        self.bypass_retries.reset();
        self.bypass_fallbacks.reset();
        self.mr_cache_invalidations.reset();
    }
}

pub(crate) enum Pending {
    EagerSend {
        origin: Option<Counter>,
        ep: Weak<EpInner>,
    },
    OneSided {
        done: Option<Counter>,
        ep: Weak<EpInner>,
    },
    CtrlSend {
        ep: Weak<EpInner>,
    },
    RndvRead {
        ep: Weak<EpInner>,
        pkt: PacketHeader,
        hdr: Vec<u8>,
        dest: RndvDest,
    },
}

pub(crate) enum RndvDest {
    Pool(Mr),
    Buffer(MrSlice),
    Discard(Mr),
}

/// One rendezvous registration-cache entry: the region plus an LRU tick.
struct MrCacheEntry {
    mr: Rc<Mr>,
    last_use: u64,
}

/// Live gauge handles in the cluster registry mirroring the hottest
/// [`RtStats`] signals (`ucr.<net>.nodeN.*`). Pre-created so the progress
/// engine can publish after every wake batch without name formatting;
/// samplers and `stats prom` then see runtime health *during* a run, not
/// just at its end.
struct RtGauges {
    mr_cache_hit_rate: Rc<simnet::metrics::Gauge>,
    recv_bufs_recycled: Rc<simnet::metrics::Gauge>,
    progress_wakes: Rc<simnet::metrics::Gauge>,
    progress_completions: Rc<simnet::metrics::Gauge>,
    /// Registry handle + name parts for gauges created on first use.
    metrics: Rc<simnet::Metrics>,
    net: String,
    node: NodeId,
    /// `ucr.<net>.nodeN.bypass_{reads,retries,fallbacks}` — created only
    /// once bypass activity exists, so runs that never use the bypass
    /// path export exactly the same registry as before it was added.
    bypass: RefCell<Option<[Rc<simnet::metrics::Gauge>; 3]>>,
}

impl RtGauges {
    fn new(metrics: &Rc<simnet::Metrics>, net: &str, node: NodeId) -> RtGauges {
        let gauge = |name: &str| metrics.gauge(&format!("ucr.{net}.{node}.{name}"));
        RtGauges {
            mr_cache_hit_rate: gauge("mr_cache_hit_rate"),
            recv_bufs_recycled: gauge("recv_bufs_recycled"),
            progress_wakes: gauge("progress_wakes"),
            progress_completions: gauge("progress_completions"),
            metrics: metrics.clone(),
            net: net.to_string(),
            node,
            bypass: RefCell::new(None),
        }
    }

    /// The bypass gauge trio, created on first call.
    fn bypass(&self) -> [Rc<simnet::metrics::Gauge>; 3] {
        self.bypass
            .borrow_mut()
            .get_or_insert_with(|| {
                let g = |name: &str| {
                    self.metrics
                        .gauge(&format!("ucr.{}.{}.{name}", self.net, self.node))
                };
                [
                    g("bypass_reads"),
                    g("bypass_retries"),
                    g("bypass_fallbacks"),
                ]
            })
            .clone()
    }
}

pub(crate) struct RtInner {
    pub node: NodeId,
    pub sim: Sim,
    pub hca: Hca,
    pub pd: Pd,
    pub cq: Cq,
    pub srq: Srq,
    pub eager_threshold: std::cell::Cell<usize>,
    profile: ClusterProfile,
    handlers: RefCell<HashMap<u16, Rc<dyn AmHandler>>>,
    counters: RefCell<HashMap<u64, Weak<CtrInner>>>,
    eps: RefCell<HashMap<u32, Rc<EpInner>>>,
    pending: RefCell<HashMap<u64, Pending>>,
    rndv_src: RefCell<HashMap<u64, Rc<Mr>>>,
    onesided_src: RefCell<HashMap<u64, Mr>>,
    recv_bufs: RefCell<HashMap<u64, Mr>>,
    /// Rendezvous registration cache: MRs keyed by `(endpoint, source
    /// buffer address, length)`, bounded LRU (the MPICH2-lineage pin-down
    /// cache; see [`RtInner::rndv_mr_for`]).
    mr_cache: RefCell<HashMap<(u64, usize, usize), MrCacheEntry>>,
    mr_cache_cap: Cell<usize>,
    mr_cache_tick: Cell<u64>,
    /// Retired eager receive buffers awaiting re-posting (registration
    /// reuse instead of a fresh MR per message).
    recv_free: RefCell<Vec<Mr>>,
    ud_qp: RefCell<Option<QueuePair>>,
    ud_eps: RefCell<HashMap<(u32, u32), Rc<EpInner>>>,
    next_wr: Cell<u64>,
    next_ctr: Cell<u64>,
    next_token: Cell<u64>,
    next_ep: Cell<u64>,
    shutdown: Cell<bool>,
    pub stats: RtStats,
    pub(crate) tracer: Rc<Tracer>,
    gauges: RtGauges,
}

/// The Unified Communication Runtime for one node.
#[derive(Clone)]
pub struct UcrRuntime {
    inner: Rc<RtInner>,
}

impl UcrRuntime {
    pub(crate) fn from_inner(inner: Rc<RtInner>) -> UcrRuntime {
        UcrRuntime { inner }
    }
}

/// Accepts inbound UCR endpoint connections on a service port.
pub struct EpListener {
    listener: verbs::Listener,
    rt: Rc<RtInner>,
}

impl UcrRuntime {
    /// Brings up UCR on `node`: allocates verbs resources, stocks the
    /// receive pool, and starts the progress engine.
    pub fn new(fabric: &IbFabric, node: NodeId) -> UcrRuntime {
        let hca = fabric.open(node);
        let pd = hca.alloc_pd();
        let cq = hca.create_cq();
        let srq = Srq::new();
        let sim = hca.sim();
        let profile = fabric.cluster().profile().clone();
        let tracer = fabric.cluster().tracer().clone();
        let net = match fabric.kind() {
            simnet::NetKind::Ib => "ib",
            simnet::NetKind::TenGigE => "roce",
            simnet::NetKind::OneGigE => "gige",
        };
        let gauges = RtGauges::new(fabric.cluster().metrics(), net, node);
        let inner = Rc::new(RtInner {
            node,
            sim: sim.clone(),
            hca,
            pd,
            cq,
            srq,
            eager_threshold: std::cell::Cell::new(UCR_EAGER_THRESHOLD),
            profile,
            handlers: RefCell::new(HashMap::new()),
            counters: RefCell::new(HashMap::new()),
            eps: RefCell::new(HashMap::new()),
            pending: RefCell::new(HashMap::new()),
            rndv_src: RefCell::new(HashMap::new()),
            onesided_src: RefCell::new(HashMap::new()),
            recv_bufs: RefCell::new(HashMap::new()),
            mr_cache: RefCell::new(HashMap::new()),
            mr_cache_cap: Cell::new(MR_CACHE_CAPACITY),
            mr_cache_tick: Cell::new(0),
            recv_free: RefCell::new(Vec::new()),
            ud_qp: RefCell::new(None),
            ud_eps: RefCell::new(HashMap::new()),
            next_wr: Cell::new(1),
            next_ctr: Cell::new(1),
            next_token: Cell::new(1),
            next_ep: Cell::new(1),
            shutdown: Cell::new(false),
            stats: RtStats::default(),
            tracer,
            gauges,
        });
        for _ in 0..RECV_POOL_DEPTH {
            inner.post_recv_buffer();
        }
        // Progress engine: holds the runtime weakly so dropping the last
        // UcrRuntime handle lets everything unwind.
        let weak = Rc::downgrade(&inner);
        let cq = inner.cq.clone();
        sim.spawn(async move {
            loop {
                let wc = cq.next().await;
                let Some(rt) = weak.upgrade() else { break };
                if rt.shutdown.get() {
                    break;
                }
                // One wakeup drains the whole CQ backlog before the
                // engine re-arms: every already-reaped completion is
                // serviced in this batch. `Cq::next` on a non-empty queue
                // returns immediately (still charging the same
                // per-completion poll overhead), so batching changes
                // accounting, not virtual time.
                rt.stats.progress_wakes.inc();
                rt.stats.progress_completions.inc();
                rt.handle_completion(wc).await;
                while !rt.shutdown.get() && rt.cq.backlog() > 0 {
                    let wc = rt.cq.next().await;
                    rt.stats.progress_completions.inc();
                    rt.handle_completion(wc).await;
                }
                rt.publish_gauges();
            }
        });
        UcrRuntime { inner }
    }

    /// The node this runtime serves.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The simulation world.
    pub fn sim(&self) -> Sim {
        self.inner.sim.clone()
    }

    /// Creates a fresh counter registered with this runtime.
    pub fn counter(&self) -> Counter {
        let id = self.inner.next_ctr.get();
        self.inner.next_ctr.set(id + 1);
        let c = Counter::new(
            id,
            self.inner.sim.clone(),
            self.inner.tracer.clone(),
            self.inner.node,
        );
        let mut counters = self.inner.counters.borrow_mut();
        // Periodically drop entries whose counters have been released so
        // long-running clients (one counter per request) stay bounded.
        if id.is_multiple_of(1024) {
            counters.retain(|_, w| w.strong_count() > 0);
        }
        counters.insert(id, Rc::downgrade(&c.inner));
        c
    }

    /// Registers the handler for `msg_id`, replacing any previous one.
    pub fn register_handler(&self, msg_id: u16, handler: impl AmHandler + 'static) {
        self.inner
            .handlers
            .borrow_mut()
            .insert(msg_id, Rc::new(handler));
    }

    /// Binds a UCR service port for inbound endpoints.
    pub fn listen(&self, port: u16) -> Result<EpListener, UcrError> {
        let listener = self
            .inner
            .hca
            .listen(port)
            .map_err(|_| UcrError::PortInUse)?;
        Ok(EpListener {
            listener,
            rt: self.inner.clone(),
        })
    }

    /// Establishes an endpoint to a listening runtime at `(dst, port)`.
    pub async fn connect(
        &self,
        dst: NodeId,
        port: u16,
        timeout: SimDuration,
    ) -> Result<Endpoint, UcrError> {
        let rt = &self.inner;
        let qp = verbs::connect(
            &rt.hca,
            &rt.pd,
            &rt.cq,
            &rt.cq,
            Some(&rt.srq),
            dst,
            port,
            timeout,
        )
        .await
        .map_err(|e| match e {
            verbs::VerbsError::ConnectionTimeout => UcrError::Timeout,
            _ => UcrError::ConnectionRefused,
        })?;
        Ok(rt.make_endpoint(qp, dst))
    }

    /// Tears the runtime down: the progress engine stops and all endpoints
    /// fail. Models a process exit.
    pub fn shutdown(&self) {
        self.inner.shutdown.set(true);
        for ep in self.inner.eps.borrow().values() {
            ep.failed.set(true);
            ep.qp.close();
        }
        self.inner.eps.borrow_mut().clear();
        self.inner.hca.kill();
    }

    /// Binds this runtime's shared UD queue pair and returns its QP
    /// number — the address clients use for unreliable endpoints. One UD
    /// QP serves every unreliable client of the runtime, which is the
    /// memory-scaling property the paper's SVII future work targets
    /// (versus one RC QP per client).
    pub fn ud_bind(&self) -> u32 {
        self.inner.ud_bound_qp().qpn()
    }

    /// The bound UD QP number, if [`ud_bind`](Self::ud_bind) has run.
    pub fn ud_qpn(&self) -> Option<u32> {
        self.inner.ud_qp.borrow().as_ref().map(|q| q.qpn())
    }

    /// Creates an unreliable endpoint addressing `(node, qpn)` — the
    /// peer's UD QP number learned out of band (e.g. from a directory or
    /// an RC bootstrap exchange). No handshake: UD is connectionless.
    pub fn ud_endpoint(&self, node: NodeId, qpn: u32) -> Endpoint {
        self.ud_bind();
        self.inner.ud_endpoint_for(node, qpn)
    }

    /// Number of queue pairs this runtime holds open (RC endpoints plus
    /// at most one shared UD QP) — the server-side memory metric of the
    /// UD scaling study.
    pub fn qp_count(&self) -> usize {
        self.inner.eps.borrow().len() + usize::from(self.inner.ud_qp.borrow().is_some())
    }

    /// Adjusts the eager/rendezvous switch point (ablation studies; the
    /// paper fixes it at the 8 KB network buffer). Capped at the receive
    /// pool's buffer size.
    pub fn set_eager_threshold(&self, bytes: usize) {
        assert!(
            bytes <= UCR_EAGER_THRESHOLD,
            "eager threshold cannot exceed the {UCR_EAGER_THRESHOLD}-byte network buffers"
        );
        self.inner.eager_threshold.set(bytes);
    }

    /// The current eager/rendezvous switch point.
    pub fn eager_threshold(&self) -> usize {
        self.inner.eager_threshold.get()
    }

    /// Runtime statistics.
    pub fn stats(&self) -> &RtStats {
        &self.inner.stats
    }

    /// Refreshes the live `ucr.<net>.nodeN.*` gauges from the current
    /// [`RtStats`] right now, rather than waiting for the next progress
    /// wake (used by `stats prom` so an export reflects the latest state).
    pub fn publish_gauges(&self) {
        self.inner.publish_gauges();
    }

    /// Adjusts the rendezvous registration-cache capacity (entries per
    /// runtime; 0 disables caching — the ablation baseline). Shrinking
    /// evicts least-recently-used entries immediately.
    pub fn set_mr_cache_capacity(&self, cap: usize) {
        self.inner.mr_cache_cap.set(cap);
        let mut cache = self.inner.mr_cache.borrow_mut();
        while cache.len() > cap {
            let oldest = cache
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(k) = oldest else { break };
            cache.remove(&k);
        }
    }

    /// Current number of cached rendezvous registrations.
    pub fn mr_cache_len(&self) -> usize {
        self.inner.mr_cache.borrow().len()
    }

    /// Buffer-free / `munmap` hook for the rendezvous registration cache
    /// (the classic pin-down-cache invalidation problem): evicts — and
    /// thereby deregisters — every cached MR covering the buffer identity
    /// `(addr, len)`, across all endpoints. An application that frees or
    /// unmaps a buffer it previously sent from MUST call this before the
    /// address can be reused, otherwise a peer holding the stale rkey
    /// would keep reading the old pinned pages. Returns the number of
    /// registrations dropped.
    pub fn invalidate_registration(&self, addr: usize, len: usize) -> usize {
        let mut cache = self.inner.mr_cache.borrow_mut();
        let before = cache.len();
        cache.retain(|(_, a, l), _| !(*a == addr && *l == len));
        let dropped = before - cache.len();
        if dropped > 0 {
            self.inner.stats.mr_cache_invalidations.add(dropped as u64);
            self.inner.tracer.instant(
                simnet::trace::Layer::Ucr,
                "mr_cache_invalidate",
                self.inner.node,
                simnet::trace::Track::Main,
                addr as u64,
                dropped as u64,
                self.inner.sim.now(),
            );
        }
        dropped
    }

    /// Number of live endpoints.
    pub fn endpoints(&self) -> usize {
        self.inner.eps.borrow().len()
    }

    pub(crate) fn pd_ref(&self) -> &Pd {
        &self.inner.pd
    }

    pub(crate) fn alloc_pending(&self, p: Pending) -> u64 {
        self.inner.alloc_wr(p)
    }

    pub(crate) fn stash_onesided_src(&self, wr_id: u64, mr: Mr) {
        self.inner.onesided_src.borrow_mut().insert(wr_id, mr);
    }
}

impl EpListener {
    /// Accepts one inbound endpoint.
    pub async fn accept(&self) -> Result<Endpoint, UcrError> {
        let qp = self
            .listener
            .accept(&self.rt.pd, &self.rt.cq, &self.rt.cq, Some(&self.rt.srq))
            .await
            .map_err(|_| UcrError::ConnectionRefused)?;
        let Some((peer, _)) = qp.remote() else {
            // A QP handed back by accept() should always carry its peer;
            // if it does not, the connection state is torn — report it
            // through the endpoint-failure model rather than aborting.
            self.rt
                .tracer
                .fault("accepted QP has no peer address; refusing connection");
            return Err(UcrError::ConnectionRefused);
        };
        Ok(self.rt.make_endpoint(qp, peer))
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.listener.port()
    }
}

impl RtInner {
    /// Refreshes the live `ucr.<net>.nodeN.*` gauges from [`RtStats`].
    /// Called by the progress engine after each wake batch; pure host-side
    /// work (no virtual time).
    pub(crate) fn publish_gauges(&self) {
        let hits = self.stats.mr_cache_hits.get();
        let misses = self.stats.mr_cache_misses.get();
        let lookups = hits + misses;
        self.gauges.mr_cache_hit_rate.set(if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        });
        self.gauges
            .recv_bufs_recycled
            .set(self.stats.recv_bufs_recycled.get() as f64);
        self.gauges
            .progress_wakes
            .set(self.stats.progress_wakes.get() as f64);
        self.gauges
            .progress_completions
            .set(self.stats.progress_completions.get() as f64);
        // Bypass gauges materialize only once the path is exercised, so
        // non-bypass runs keep a byte-identical registry export.
        let reads = self.stats.bypass_reads.get();
        let retries = self.stats.bypass_retries.get();
        let fallbacks = self.stats.bypass_fallbacks.get();
        if reads + retries + fallbacks > 0 {
            let [g_reads, g_retries, g_fallbacks] = self.gauges.bypass();
            g_reads.set(reads as f64);
            g_retries.set(retries as f64);
            g_fallbacks.set(fallbacks as f64);
        }
    }

    pub(crate) fn alloc_wr(&self, p: Pending) -> u64 {
        let id = self.next_wr.get();
        self.next_wr.set(id + 1);
        self.pending.borrow_mut().insert(id, p);
        id
    }

    pub(crate) fn stash_rndv_src(&self, mr: Rc<Mr>) -> u64 {
        let token = self.next_token.get();
        self.next_token.set(token + 1);
        self.rndv_src.borrow_mut().insert(token, mr);
        token
    }

    /// Looks up (or registers) the rendezvous source MR for a buffer
    /// advertised to endpoint `ep_id`. The cache key is the source
    /// buffer's identity (`ident` = address + length) per destination —
    /// the MPICH2-lineage registration cache the paper's UCR derives
    /// from. Only *borrowed* sends participate: the caller keeps the
    /// buffer alive, so its address is a stable identity. Owned payloads
    /// free their heap allocation when the MR drops, so keying on their
    /// address would track host-allocator reuse (nondeterministic across
    /// machines and runs), not the simulation — they always register
    /// afresh, with the buffer moved in (zero copy).
    ///
    /// On a hit the region's contents are refreshed from `data` — but
    /// only when the registration is idle. A strong count above the
    /// cache's own reference means a previous send from this buffer
    /// still holds its advertise token (the target's RDMA read may be
    /// in flight), and rewriting the region would corrupt that
    /// transfer's payload; such busy entries are replaced by a fresh
    /// registration (counted as a miss), while the displaced MR lives on
    /// via its token until the Fin drops it. On a miss the least
    /// recently used entry beyond capacity is evicted. Cached MRs stay
    /// registered across the Fin that releases the per-send token; only
    /// eviction (or endpoint teardown) deregisters them.
    pub(crate) fn rndv_mr_for(
        &self,
        ep_id: u64,
        ident: (usize, usize),
        data: Vec<u8>,
        owned: bool,
    ) -> Rc<Mr> {
        let cap = self.mr_cache_cap.get();
        let tick = self.mr_cache_tick.get() + 1;
        self.mr_cache_tick.set(tick);
        let cacheable = cap > 0 && !owned;
        let key = (ep_id, ident.0, ident.1);
        if cacheable {
            if let Some(entry) = self.mr_cache.borrow_mut().get_mut(&key) {
                if Rc::strong_count(&entry.mr) == 1 {
                    entry.mr.write_at(0, &data);
                    entry.last_use = tick;
                    self.stats.mr_cache_hits.inc();
                    return entry.mr.clone();
                }
            }
        }
        self.stats.mr_cache_misses.inc();
        if owned {
            self.stats.rndv_copy_saved_bytes.add(data.len() as u64);
        }
        let mr = Rc::new(self.pd.register_with(data, Access::REMOTE_READ));
        if cacheable {
            let mut cache = self.mr_cache.borrow_mut();
            cache.insert(
                key,
                MrCacheEntry {
                    mr: mr.clone(),
                    last_use: tick,
                },
            );
            while cache.len() > cap {
                let oldest = cache
                    .iter()
                    .min_by_key(|(_, e)| e.last_use)
                    .map(|(k, _)| *k);
                let Some(k) = oldest else { break };
                cache.remove(&k);
            }
        }
        mr
    }

    pub(crate) fn drop_endpoint(&self, qpn: u32) {
        let ep = self.eps.borrow_mut().remove(&qpn);
        if let Some(ep) = ep {
            // Pinned registrations advertised to this endpoint are no
            // longer reachable; release them.
            self.mr_cache
                .borrow_mut()
                .retain(|(id, _, _), _| *id != ep.id);
        }
    }

    /// Largest UD payload (UCR packet header + app header + data) that
    /// fits one datagram on this fabric.
    pub(crate) fn ud_payload_limit(&self) -> usize {
        // The verbs layer enforces payload <= path MTU.
        self.hca.net_mtu() as usize
    }

    /// The shared UD queue pair, binding it on first use. Idempotent:
    /// repeated calls return the same QP.
    fn ud_bound_qp(&self) -> QueuePair {
        if let Some(qp) = self.ud_qp.borrow().as_ref() {
            return qp.clone();
        }
        let qp = self
            .pd
            .create_qp(QpType::Ud, &self.cq, &self.cq, Some(&self.srq));
        *self.ud_qp.borrow_mut() = Some(qp.clone());
        qp
    }

    fn ud_endpoint_for(self: &Rc<Self>, node: NodeId, qpn: u32) -> Endpoint {
        if let Some(ep) = self.ud_eps.borrow().get(&(node.0, qpn)) {
            return Endpoint { inner: ep.clone() };
        }
        // Binding is lazy: every live caller has already bound (the
        // public path via ud_endpoint(), the recv path by matching the
        // bound QPN), so this never creates in practice.
        let qp = self.ud_bound_qp();
        let id = self.next_ep.get();
        self.next_ep.set(id + 1);
        let inner = Rc::new(EpInner {
            id,
            qp,
            peer: node,
            rt: Rc::downgrade(self),
            failed: Cell::new(false),
            ud_dest: Some((node, qpn)),
        });
        self.ud_eps
            .borrow_mut()
            .insert((node.0, qpn), inner.clone());
        Endpoint { inner }
    }

    /// Cost of staging `bytes` through a communication buffer on one side
    /// of the eager path: memcpy plus the calibrated per-KB host share.
    pub(crate) fn stage_cost(&self, bytes: usize) -> SimDuration {
        let copy = SimDuration::for_bytes_at(bytes as u64, self.profile.host.copy_bw_bps);
        copy + self.profile.ucr_eager_cost(bytes as u64) / 2
    }

    fn make_endpoint(self: &Rc<Self>, qp: verbs::QueuePair, peer: NodeId) -> Endpoint {
        let id = self.next_ep.get();
        self.next_ep.set(id + 1);
        let inner = Rc::new(EpInner {
            id,
            qp,
            peer,
            rt: Rc::downgrade(self),
            failed: Cell::new(false),
            ud_dest: None,
        });
        self.eps.borrow_mut().insert(inner.qp.qpn(), inner.clone());
        Endpoint { inner }
    }

    fn post_recv_buffer(&self) {
        // Recycle a retired buffer when one is available: the
        // registration (and rkey) is reused instead of paid per message.
        let recycled = self.recv_free.borrow_mut().pop();
        let mr = match recycled {
            Some(mr) => {
                self.stats.recv_bufs_recycled.inc();
                mr
            }
            None => self.pd.register(
                PACKET_HEADER_BYTES + UCR_EAGER_THRESHOLD,
                Access::LOCAL_WRITE,
            ),
        };
        let wr_id = self.next_wr.get();
        self.next_wr.set(wr_id + 1);
        self.srq.post_recv(wr_id, mr.full());
        self.recv_bufs.borrow_mut().insert(wr_id, mr);
    }

    /// Returns a consumed eager receive buffer to the free list, bounded
    /// by the pool depth (overflow is dropped, i.e. deregistered).
    fn retire_recv_buffer(&self, mr: Mr) {
        let mut free = self.recv_free.borrow_mut();
        if free.len() < RECV_POOL_DEPTH {
            free.push(mr);
        }
    }

    fn bump_counter(&self, id: u64) {
        if id == 0 {
            return;
        }
        let ctr = self.counters.borrow().get(&id).and_then(Weak::upgrade);
        if let Some(c) = ctr {
            c.bump();
            self.tracer.instant(
                Layer::Ucr,
                "counter_bump",
                self.node,
                Track::Main,
                id,
                0,
                self.sim.now(),
            );
        }
    }

    async fn handle_completion(self: &Rc<Self>, wc: Wc) {
        match wc.opcode {
            WcOpcode::Recv | WcOpcode::RecvRdmaImm => self.handle_recv(wc).await,
            _ => self.handle_send_completion(wc).await,
        }
    }

    async fn handle_recv(self: &Rc<Self>, wc: Wc) {
        // Reclaim the network buffer and immediately restock the SRQ so
        // the pool depth stays constant (flow control by replenishment).
        let buf = self.recv_bufs.borrow_mut().remove(&wc.wr_id);
        self.post_recv_buffer();
        let Some(buf) = buf else { return };
        if !wc.status.is_ok() {
            self.retire_recv_buffer(buf);
            return;
        }
        let len = wc.byte_len as usize;
        let head = buf.read_at(0, PACKET_HEADER_BYTES.min(len));
        let Some(pkt) = PacketHeader::decode(&head) else {
            self.retire_recv_buffer(buf);
            return;
        };
        let ud_qpn = self.ud_qp.borrow().as_ref().map(|q| q.qpn());
        let ep = if ud_qpn == Some(wc.qp_num) {
            // Arrived on the shared UD QP: the endpoint is identified by
            // the datagram's source address handle.
            let Some((src_node, src_qpn)) = wc.src else {
                self.retire_recv_buffer(buf);
                return;
            };
            self.ud_endpoint_for(src_node, src_qpn)
        } else {
            let ep = self.eps.borrow().get(&wc.qp_num).cloned();
            let Some(ep) = ep else {
                self.retire_recv_buffer(buf);
                return;
            };
            Endpoint { inner: ep }
        };

        match pkt.kind {
            PacketKind::Eager => {
                let hdr_end = PACKET_HEADER_BYTES + pkt.hdr_len as usize;
                let data_end = hdr_end + pkt.data_len as usize;
                if len < data_end {
                    self.retire_recv_buffer(buf);
                    return;
                }
                // Dispatch + copy off the network buffer.
                self.sim
                    .sleep(self.profile.host.am_dispatch + self.stage_cost(pkt.data_len as usize))
                    .await;
                let hdr = buf.read_at(PACKET_HEADER_BYTES, pkt.hdr_len as usize);
                let handler = self.handlers.borrow().get(&pkt.msg_id).cloned();
                let Some(handler) = handler else {
                    self.stats.unknown_msg_dropped.inc();
                    self.retire_recv_buffer(buf);
                    return;
                };
                let track = Track::Endpoint(ep.id());
                self.tracer.begin(
                    Layer::Ucr,
                    "header_handler",
                    self.node,
                    track,
                    wc.wr_id,
                    pkt.data_len,
                    self.sim.now(),
                );
                let dest = handler.on_header(&ep, &hdr, pkt.data_len as usize);
                self.tracer.end(
                    Layer::Ucr,
                    "header_handler",
                    self.node,
                    track,
                    wc.wr_id,
                    pkt.data_len,
                    self.sim.now(),
                );
                let am_data = match dest {
                    // Single copy: the payload moves straight off the
                    // network buffer into its owned destination
                    // (previously the whole packet was read into a
                    // scratch Vec and the data range copied out again).
                    AmDest::Pool => AmData::Pool(buf.read_at(hdr_end, pkt.data_len as usize)),
                    AmDest::Buffer(slice) => {
                        let n = (pkt.data_len as usize).min(slice.len());
                        // Copy into the caller's registered destination.
                        let _ = slice_write(&slice, &buf.read_at(hdr_end, n));
                        AmData::Placed(n)
                    }
                    AmDest::Discard => AmData::Discarded,
                };
                self.retire_recv_buffer(buf);
                self.tracer.begin(
                    Layer::Ucr,
                    "completion_handler",
                    self.node,
                    track,
                    wc.wr_id,
                    pkt.data_len,
                    self.sim.now(),
                );
                handler.on_complete(&ep, &hdr, am_data);
                self.tracer.end(
                    Layer::Ucr,
                    "completion_handler",
                    self.node,
                    track,
                    wc.wr_id,
                    pkt.data_len,
                    self.sim.now(),
                );
                self.stats.eager_delivered.inc();
                self.bump_counter(pkt.target_ctr);
                if pkt.completion_ctr != 0 {
                    self.send_fin(&ep, 0, pkt.completion_ctr, 0);
                }
            }
            PacketKind::RndvReq => {
                if ep.is_unreliable() {
                    // RDMA read needs a connection; a rendezvous header on
                    // UD is a protocol violation — drop it.
                    self.stats.unknown_msg_dropped.inc();
                    self.retire_recv_buffer(buf);
                    return;
                }
                self.sim.sleep(self.profile.host.am_dispatch).await;
                let hdr_end = PACKET_HEADER_BYTES + pkt.hdr_len as usize;
                if len < hdr_end {
                    self.retire_recv_buffer(buf);
                    return;
                }
                let hdr = buf.read_at(PACKET_HEADER_BYTES, pkt.hdr_len as usize);
                self.retire_recv_buffer(buf);
                let handler = self.handlers.borrow().get(&pkt.msg_id).cloned();
                let Some(handler) = handler else {
                    self.stats.unknown_msg_dropped.inc();
                    return;
                };
                let track = Track::Endpoint(ep.id());
                self.tracer.begin(
                    Layer::Ucr,
                    "header_handler",
                    self.node,
                    track,
                    wc.wr_id,
                    pkt.data_len,
                    self.sim.now(),
                );
                let on_header = handler.on_header(&ep, &hdr, pkt.data_len as usize);
                self.tracer.end(
                    Layer::Ucr,
                    "header_handler",
                    self.node,
                    track,
                    wc.wr_id,
                    pkt.data_len,
                    self.sim.now(),
                );
                let dest = match on_header {
                    AmDest::Pool => {
                        RndvDest::Pool(self.pd.register(pkt.data_len as usize, Access::LOCAL_WRITE))
                    }
                    AmDest::Buffer(slice) => RndvDest::Buffer(slice),
                    AmDest::Discard => RndvDest::Discard(
                        self.pd.register(pkt.data_len as usize, Access::LOCAL_WRITE),
                    ),
                };
                let local = match &dest {
                    RndvDest::Pool(mr) | RndvDest::Discard(mr) => mr.full(),
                    RndvDest::Buffer(s) => s.clone(),
                };
                let remote = verbs::RemoteMemory {
                    node: ep.peer(),
                    rkey: pkt.rkey,
                    offset: pkt.offset,
                    len: pkt.data_len,
                };
                let data_len = pkt.data_len;
                let wr_id = self.alloc_wr(Pending::RndvRead {
                    ep: Rc::downgrade(&ep.inner),
                    pkt,
                    hdr,
                    dest,
                });
                // The rendezvous window: open when the target posts its
                // RDMA read, closed when the pulled data has been
                // dispatched (`handle_send_completion`).
                self.tracer.begin(
                    Layer::Ucr,
                    "rndv_window",
                    self.node,
                    track,
                    wr_id,
                    data_len,
                    self.sim.now(),
                );
                if ep
                    .inner
                    .qp
                    .post_send(SendWr::new(wr_id, SendOp::RdmaRead { local, remote }))
                    .is_err()
                {
                    self.pending.borrow_mut().remove(&wr_id);
                    self.tracer.end(
                        Layer::Ucr,
                        "rndv_window",
                        self.node,
                        track,
                        wr_id,
                        0,
                        self.sim.now(),
                    );
                    ep.inner.failed.set(true);
                }
            }
            PacketKind::Fin => {
                self.retire_recv_buffer(buf);
                self.bump_counter(pkt.origin_ctr);
                self.bump_counter(pkt.completion_ctr);
                if pkt.token != 0 {
                    self.rndv_src.borrow_mut().remove(&pkt.token);
                }
            }
        }
    }

    async fn handle_send_completion(self: &Rc<Self>, wc: Wc) {
        let pending = self.pending.borrow_mut().remove(&wc.wr_id);
        let Some(pending) = pending else { return };
        match pending {
            Pending::OneSided { done, ep } => {
                self.onesided_src.borrow_mut().remove(&wc.wr_id);
                if !crate::onesided::complete_onesided(done, &ep, wc.status) {
                    self.stats.send_failures.inc();
                }
            }
            Pending::EagerSend { origin, ep } => {
                if wc.status.is_ok() {
                    if let Some(c) = origin {
                        // Local completion: the application buffer is
                        // reusable (no extra message needed for eager).
                        c.bump();
                    }
                } else {
                    self.fail_ep(&ep);
                }
            }
            Pending::CtrlSend { ep } => {
                if !wc.status.is_ok() {
                    self.fail_ep(&ep);
                }
            }
            Pending::RndvRead { ep, pkt, hdr, dest } => {
                let Some(ep_rc) = ep.upgrade() else { return };
                let ep = Endpoint { inner: ep_rc };
                let track = Track::Endpoint(ep.id());
                if !wc.status.is_ok() {
                    self.tracer.end(
                        Layer::Ucr,
                        "rndv_window",
                        self.node,
                        track,
                        wc.wr_id,
                        0,
                        self.sim.now(),
                    );
                    self.fail_ep(&Rc::downgrade(&ep.inner));
                    return;
                }
                // Zero-copy path: only the calibrated host cost, no copy.
                self.sim
                    .sleep(self.profile.host.am_dispatch + self.profile.ucr_rdma_cost(pkt.data_len))
                    .await;
                let handler = self.handlers.borrow().get(&pkt.msg_id).cloned();
                if let Some(handler) = handler {
                    let am_data = match dest {
                        RndvDest::Pool(mr) => AmData::Pool(mr.read_at(0, pkt.data_len as usize)),
                        RndvDest::Buffer(_) => AmData::Placed(pkt.data_len as usize),
                        RndvDest::Discard(_) => AmData::Discarded,
                    };
                    self.tracer.begin(
                        Layer::Ucr,
                        "completion_handler",
                        self.node,
                        track,
                        wc.wr_id,
                        pkt.data_len,
                        self.sim.now(),
                    );
                    handler.on_complete(&ep, &hdr, am_data);
                    self.tracer.end(
                        Layer::Ucr,
                        "completion_handler",
                        self.node,
                        track,
                        wc.wr_id,
                        pkt.data_len,
                        self.sim.now(),
                    );
                }
                self.tracer.end(
                    Layer::Ucr,
                    "rndv_window",
                    self.node,
                    track,
                    wc.wr_id,
                    pkt.data_len,
                    self.sim.now(),
                );
                self.stats.rndv_delivered.inc();
                self.bump_counter(pkt.target_ctr);
                // Fin always returns for rendezvous: it releases the
                // origin's source buffer and carries any counter updates.
                self.send_fin(&ep, pkt.origin_ctr, pkt.completion_ctr, pkt.token);
            }
        }
    }

    fn fail_ep(&self, ep: &Weak<EpInner>) {
        self.stats.send_failures.inc();
        if let Some(ep) = ep.upgrade() {
            ep.failed.set(true);
            self.eps.borrow_mut().remove(&ep.qp.qpn());
            self.tracer.instant(
                Layer::Ucr,
                "ep_failed",
                self.node,
                Track::Endpoint(ep.id),
                ep.id,
                0,
                self.sim.now(),
            );
            self.tracer.fault(&format!(
                "endpoint {} on {} to {} failed (send error)",
                ep.id, self.node, ep.peer
            ));
        }
    }

    fn send_fin(self: &Rc<Self>, ep: &Endpoint, origin_ctr: u64, completion_ctr: u64, token: u64) {
        let mut pkt = PacketHeader::new(PacketKind::Fin, 0);
        pkt.origin_ctr = origin_ctr;
        pkt.completion_ctr = completion_ctr;
        pkt.token = token;
        let wr_id = self.alloc_wr(Pending::CtrlSend {
            ep: Rc::downgrade(&ep.inner),
        });
        let _ = ep.inner.qp.post_send(SendWr::new(
            wr_id,
            SendOp::SendInline {
                data: pkt.encode().to_vec(),
                imm: None,
            },
        ));
        self.stats.fins_sent.inc();
    }
}

/// Writes into an MrSlice from plain bytes (helper for the eager path).
fn slice_write(slice: &MrSlice, data: &[u8]) -> Result<(), ()> {
    // MrSlice::read exists for reading; writing goes through the DMA path
    // used by verbs internally. Reuse the public surface: the slice's
    // region was registered with LOCAL_WRITE, so a recv-style placement is
    // legitimate here.
    slice.write_prefix(data).map_err(|_| ())
}
