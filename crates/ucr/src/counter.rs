//! Active-message counters (paper §IV-C).
//!
//! Counters are monotonically increasing objects used to track active-
//! message progress. Three roles exist:
//!
//! * **origin counter** — bumped at the origin when the message's buffers
//!   are reusable (local completion for eager; an internal message after
//!   the target's RDMA read for rendezvous);
//! * **target counter** — bumped at the target when the data has fully
//!   arrived and the completion handler has run;
//! * **completion counter** — bumped at the origin when the target's
//!   completion handler has finished (via an internal message).
//!
//! Any of the three may be omitted (NULL in the paper's C API; `None`
//! here), which suppresses the associated internal message. Waiting is
//! always **bounded by a timeout** — the data-center requirement (§IV-A)
//! that lets a Memcached client decide a server has died instead of
//! hanging the job, MPI-style.

use std::cell::Cell;
use std::rc::Rc;

use simnet::sync::{timeout, Notify};
use simnet::trace::{Layer, Track};
use simnet::{NodeId, Sim, SimDuration, Tracer};

use crate::UcrError;

pub(crate) struct CtrInner {
    pub id: u64,
    pub value: Cell<u64>,
    pub notify: Rc<Notify>,
}

impl CtrInner {
    /// The one sanctioned mutation: increment, then wake waiters. All
    /// bump paths (local and remote, see `Runtime::bump_counter`) must
    /// go through here so the monotonic value/notify ordering holds.
    pub(crate) fn bump(&self) {
        self.value.set(self.value.get() + 1);
        self.notify.notify_all();
    }
}

/// A monotonically increasing progress counter.
#[derive(Clone)]
pub struct Counter {
    pub(crate) inner: Rc<CtrInner>,
    pub(crate) sim: Sim,
    pub(crate) tracer: Rc<Tracer>,
    pub(crate) node: NodeId,
}

impl Counter {
    pub(crate) fn new(id: u64, sim: Sim, tracer: Rc<Tracer>, node: NodeId) -> Counter {
        Counter {
            inner: Rc::new(CtrInner {
                id,
                value: Cell::new(0),
                notify: Rc::new(Notify::new()),
            }),
            sim,
            tracer,
            node,
        }
    }

    /// The runtime-unique identifier carried on the wire.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.inner.value.get()
    }

    pub(crate) fn bump(&self) {
        self.inner.bump();
        self.tracer.instant(
            Layer::Ucr,
            "counter_bump",
            self.node,
            Track::Main,
            self.inner.id,
            0,
            self.sim.now(),
        );
    }

    /// Waits until the counter reaches at least `target`, or until
    /// `deadline` elapses. The blocking-with-timeout primitive Memcached
    /// uses after issuing a request (paper §V-B).
    pub async fn wait_for(&self, target: u64, deadline: SimDuration) -> Result<(), UcrError> {
        let inner = self.inner.clone();
        if inner.value.get() >= target {
            return Ok(());
        }
        let notify = inner.notify.clone();
        let inner2 = inner.clone();
        let wait = notify.wait_until(move || inner2.value.get() >= target);
        match timeout(&self.sim, deadline, wait).await {
            Ok(()) => Ok(()),
            Err(_) => {
                // Sync timeout: dump the flight recorder so the failure
                // carries the event tail that led up to it.
                self.tracer.instant(
                    Layer::Ucr,
                    "counter_timeout",
                    self.node,
                    Track::Main,
                    self.inner.id,
                    0,
                    self.sim.now(),
                );
                self.tracer.fault(&format!(
                    "counter {} on {} timed out waiting for {} (value {})",
                    self.inner.id,
                    self.node,
                    target,
                    self.inner.value.get()
                ));
                Err(UcrError::Timeout)
            }
        }
    }

    /// Waits for the counter to advance by `n` from `from`.
    pub async fn wait_past(
        &self,
        from: u64,
        n: u64,
        deadline: SimDuration,
    ) -> Result<(), UcrError> {
        self.wait_for(from + n, deadline).await
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter(id={}, value={})", self.id(), self.value())
    }
}
