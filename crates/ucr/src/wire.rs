//! UCR packet framing.
//!
//! Every UCR message starts with a fixed 64-byte packet header followed by
//! the application's active-message header and, on the eager path, the
//! data. Counter identifiers travel in the packet header — this is how a
//! Memcached client can name the counter it waits on in AM 1 and have the
//! server's AM 2 target that same counter (paper §V-B/§V-C).

/// Packet kinds on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// Header + data in one network buffer (≤ the 8 KB eager threshold).
    Eager,
    /// Rendezvous request: header only; data advertised for RDMA read.
    RndvReq,
    /// Internal message: counter updates / rendezvous completion.
    Fin,
}

impl PacketKind {
    fn to_u8(self) -> u8 {
        match self {
            PacketKind::Eager => 1,
            PacketKind::RndvReq => 2,
            PacketKind::Fin => 3,
        }
    }

    fn from_u8(v: u8) -> Option<PacketKind> {
        match v {
            1 => Some(PacketKind::Eager),
            2 => Some(PacketKind::RndvReq),
            3 => Some(PacketKind::Fin),
            _ => None,
        }
    }
}

/// The fixed-size packet header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketHeader {
    /// What follows this header.
    pub kind: PacketKind,
    /// Active-message id selecting the target-side handler.
    pub msg_id: u16,
    /// Length of the application header that follows.
    pub hdr_len: u32,
    /// Length of the data (inline for Eager, advertised for RndvReq).
    pub data_len: u64,
    /// Target-side counter to bump on completion (0 = none).
    pub target_ctr: u64,
    /// Origin-side counter to bump when buffers are reusable (0 = none).
    pub origin_ctr: u64,
    /// Origin-side counter to bump when the target's completion handler
    /// has run (0 = none).
    pub completion_ctr: u64,
    /// Rendezvous: rkey of the advertised source region.
    pub rkey: u32,
    /// Rendezvous: offset within the advertised region.
    pub offset: u64,
    /// Origin-side token identifying in-flight rendezvous state.
    pub token: u64,
}

/// Size of the encoded packet header.
pub const PACKET_HEADER_BYTES: usize = 64;

impl PacketHeader {
    /// A zeroed header of the given kind.
    pub fn new(kind: PacketKind, msg_id: u16) -> PacketHeader {
        PacketHeader {
            kind,
            msg_id,
            hdr_len: 0,
            data_len: 0,
            target_ctr: 0,
            origin_ctr: 0,
            completion_ctr: 0,
            rkey: 0,
            offset: 0,
            token: 0,
        }
    }

    /// Encodes into the fixed wire layout.
    pub fn encode(&self) -> [u8; PACKET_HEADER_BYTES] {
        let mut b = [0u8; PACKET_HEADER_BYTES];
        b[0] = self.kind.to_u8();
        b[2..4].copy_from_slice(&self.msg_id.to_le_bytes());
        b[4..8].copy_from_slice(&self.hdr_len.to_le_bytes());
        b[8..16].copy_from_slice(&self.data_len.to_le_bytes());
        b[16..24].copy_from_slice(&self.target_ctr.to_le_bytes());
        b[24..32].copy_from_slice(&self.origin_ctr.to_le_bytes());
        b[32..40].copy_from_slice(&self.completion_ctr.to_le_bytes());
        b[40..44].copy_from_slice(&self.rkey.to_le_bytes());
        b[44..52].copy_from_slice(&self.offset.to_le_bytes());
        b[52..60].copy_from_slice(&self.token.to_le_bytes());
        b
    }

    /// Decodes from the wire; `None` on a malformed header.
    pub fn decode(b: &[u8]) -> Option<PacketHeader> {
        if b.len() < PACKET_HEADER_BYTES {
            return None;
        }
        let kind = PacketKind::from_u8(b[0])?;
        // Length is pre-checked above; fixed-offset reads below are in
        // bounds by construction, no fallible conversion needed.
        let le16 = |at: usize| u16::from_le_bytes([b[at], b[at + 1]]);
        let le32 = |at: usize| {
            let mut w = [0u8; 4];
            w.copy_from_slice(&b[at..at + 4]);
            u32::from_le_bytes(w)
        };
        let le64 = |at: usize| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[at..at + 8]);
            u64::from_le_bytes(w)
        };
        Some(PacketHeader {
            kind,
            msg_id: le16(2),
            hdr_len: le32(4),
            data_len: le64(8),
            target_ctr: le64(16),
            origin_ctr: le64(24),
            completion_ctr: le64(32),
            rkey: le32(40),
            offset: le64(44),
            token: le64(52),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_fields() {
        let h = PacketHeader {
            kind: PacketKind::RndvReq,
            msg_id: 0xbeef,
            hdr_len: 123,
            data_len: 1 << 40,
            target_ctr: 7,
            origin_ctr: 8,
            completion_ctr: 9,
            rkey: 0xdead_beef,
            offset: 4096,
            token: u64::MAX,
        };
        let enc = h.encode();
        assert_eq!(PacketHeader::decode(&enc), Some(h));
    }

    #[test]
    fn truncated_or_garbage_rejected() {
        assert_eq!(PacketHeader::decode(&[1, 2, 3]), None);
        let mut bad = PacketHeader::new(PacketKind::Eager, 1).encode();
        bad[0] = 99; // unknown kind
        assert_eq!(PacketHeader::decode(&bad), None);
    }

    #[test]
    fn header_is_64_bytes() {
        assert_eq!(PACKET_HEADER_BYTES, 64);
        assert_eq!(PacketHeader::new(PacketKind::Fin, 0).encode().len(), 64);
    }
}
