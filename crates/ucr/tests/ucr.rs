//! Integration tests for UCR: active-message delivery (eager and
//! rendezvous), counter semantics, handler destinations, fault isolation,
//! and the latency behaviour the Memcached design depends on.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::{Cluster, NodeId, SimDuration};
use ucr::{AmData, AmDest, AmHandler, Endpoint, FnHandler, SendOptions, UcrError, UcrRuntime};
use verbs::{Access, IbFabric};

const PORT: u16 = 11211;
const ECHO: u16 = 1;
const SINK: u16 = 2;

fn world(cluster_b: bool, nodes: u32) -> (Rc<Cluster>, IbFabric) {
    let cluster = Rc::new(if cluster_b {
        Cluster::cluster_b(21, nodes)
    } else {
        Cluster::cluster_a(21, nodes)
    });
    let fabric = IbFabric::new(cluster.clone());
    (cluster, fabric)
}

/// An echo service: replies to msg ECHO with the same header and data,
/// targeting the counter id named in the first 8 header bytes.
struct EchoHandler;

impl AmHandler for EchoHandler {
    fn on_complete(&self, ep: &Endpoint, hdr: &[u8], data: AmData) {
        let ctr_id = u64::from_le_bytes(hdr[..8].try_into().unwrap());
        let payload = match data {
            AmData::Pool(v) => v,
            _ => Vec::new(),
        };
        ep.post_message(
            ECHO + 100,
            hdr.to_vec(),
            payload,
            SendOptions {
                target_ctr: ctr_id,
                ..Default::default()
            },
        );
    }
}

/// Sets up a server runtime with the echo handler and accepts `n` clients.
fn start_echo_server(fabric: &IbFabric, node: NodeId, clients: usize) -> UcrRuntime {
    let rt = UcrRuntime::new(fabric, node);
    rt.register_handler(ECHO, EchoHandler);
    let listener = rt.listen(PORT).unwrap();
    rt.sim().spawn(async move {
        for _ in 0..clients {
            if listener.accept().await.is_err() {
                break;
            }
        }
    });
    rt
}

/// One echoed round trip from a fresh client; returns (latency, reply).
async fn echo_once(
    client: &UcrRuntime,
    server_node: NodeId,
    data: Vec<u8>,
) -> (SimDuration, Vec<u8>) {
    let sim = client.sim();
    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let got2 = got.clone();
    client.register_handler(
        ECHO + 100,
        FnHandler(move |_ep: &Endpoint, _hdr: &[u8], data: AmData| {
            *got2.borrow_mut() = data.into_vec().unwrap_or_default();
        }),
    );
    let ep = client
        .connect(server_node, PORT, SimDuration::from_millis(100))
        .await
        .unwrap();
    let ctr = client.counter();
    let t0 = sim.now();
    let hdr = ctr.id().to_le_bytes().to_vec();
    ep.send_message(ECHO, &hdr, &data, SendOptions::default())
        .await
        .unwrap();
    ctr.wait_for(1, SimDuration::from_millis(500))
        .await
        .unwrap();
    let dt = sim.now() - t0;
    let reply = got.borrow().clone();
    (dt, reply)
}

#[test]
fn eager_round_trip_delivers_data_and_counter() {
    let (cluster, fabric) = world(false, 2);
    let _server = start_echo_server(&fabric, NodeId(1), 1);
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let payload: Vec<u8> = (0..2048u32).map(|i| (i * 7) as u8).collect();
    let p2 = payload.clone();
    let (dt, reply) = cluster
        .sim()
        .block_on(async move { echo_once(&client, NodeId(1), p2).await });
    assert_eq!(reply, payload);
    assert!(dt.as_micros_f64() > 1.0, "RTT {dt} suspiciously fast");
}

#[test]
fn rendezvous_moves_large_payloads() {
    let (cluster, fabric) = world(false, 2);
    let server = start_echo_server(&fabric, NodeId(1), 1);
    let client = UcrRuntime::new(&fabric, NodeId(0));
    // 64 KB: far past the 8 KB eager threshold in both directions.
    let payload: Vec<u8> = (0..65536u32).map(|i| (i % 251) as u8).collect();
    let p2 = payload.clone();
    let client2 = client.clone();
    let (_dt, reply) = cluster
        .sim()
        .block_on(async move { echo_once(&client2, NodeId(1), p2).await });
    assert_eq!(reply, payload);
    // Both directions used the rendezvous path.
    assert!(server.stats().rndv_delivered.get() >= 1);
    assert!(client.stats().rndv_delivered.get() >= 1);
    assert_eq!(server.stats().unknown_msg_dropped.get(), 0);
}

#[test]
fn eager_and_rendezvous_deliver_identical_bytes() {
    // Same content through both paths must be byte-identical.
    for size in [64usize, 8 * 1024 - 200, 8 * 1024 + 1, 100_000] {
        let (cluster, fabric) = world(true, 2);
        let _server = start_echo_server(&fabric, NodeId(1), 1);
        let client = UcrRuntime::new(&fabric, NodeId(0));
        let payload: Vec<u8> = (0..size).map(|i| (i % 253) as u8).collect();
        let p2 = payload.clone();
        let (_, reply) = cluster
            .sim()
            .block_on(async move { echo_once(&client, NodeId(1), p2).await });
        assert_eq!(reply, payload, "size {size}");
    }
}

#[test]
fn origin_counter_bumps_on_local_completion() {
    let (cluster, fabric) = world(false, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    server.register_handler(SINK, FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}));
    let listener = server.listen(PORT).unwrap();
    server.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let client = UcrRuntime::new(&fabric, NodeId(0));
    cluster.sim().block_on(async move {
        let ep = client
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        let origin = client.counter();
        ep.send_message(
            SINK,
            b"hdr",
            &vec![1u8; 256],
            SendOptions {
                origin: Some(origin.clone()),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        origin
            .wait_for(1, SimDuration::from_millis(100))
            .await
            .unwrap();
        assert_eq!(origin.value(), 1);
    });
}

#[test]
fn origin_counter_bumps_for_rendezvous_via_fin() {
    let (cluster, fabric) = world(false, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    server.register_handler(SINK, FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}));
    let listener = server.listen(PORT).unwrap();
    server.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let client2 = client.clone();
    cluster.sim().block_on(async move {
        let ep = client2
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        let origin = client2.counter();
        ep.send_message(
            SINK,
            b"hdr",
            &vec![9u8; 50_000],
            SendOptions {
                origin: Some(origin.clone()),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        origin
            .wait_for(1, SimDuration::from_millis(100))
            .await
            .unwrap();
    });
    assert!(server.stats().fins_sent.get() >= 1);
}

#[test]
fn completion_counter_requires_internal_message() {
    let (cluster, fabric) = world(false, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    server.register_handler(SINK, FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}));
    let listener = server.listen(PORT).unwrap();
    server.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let server2 = server.clone();
    cluster.sim().block_on(async move {
        let ep = client
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        let fins_before = server2.stats().fins_sent.get();

        // Without a completion counter: no internal message for eager.
        ep.send_message(SINK, b"h", b"data", SendOptions::default())
            .await
            .unwrap();
        client
            .sim()
            .run_until(client.sim().now() + SimDuration::from_millis(1));
        assert_eq!(server2.stats().fins_sent.get(), fins_before);

        // With one: the target sends Fin and the counter fires.
        let completion = client.counter();
        ep.send_message(
            SINK,
            b"h",
            b"data",
            SendOptions {
                completion: Some(completion.clone()),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        completion
            .wait_for(1, SimDuration::from_millis(100))
            .await
            .unwrap();
        assert_eq!(server2.stats().fins_sent.get(), fins_before + 1);
    });
}

#[test]
fn header_handler_can_place_into_registered_buffer() {
    struct IntoBuffer {
        mr: Rc<RefCell<Option<verbs::Mr>>>,
        pd: verbs::Pd,
        placed: Rc<std::cell::Cell<usize>>,
    }
    impl AmHandler for IntoBuffer {
        fn on_header(&self, _ep: &Endpoint, _hdr: &[u8], data_len: usize) -> AmDest {
            // Allocate exactly data_len, as a Memcached client does once
            // the item length is known (paper §V-C).
            let mr = self.pd.register(data_len, Access::LOCAL_WRITE);
            let slice = mr.full();
            *self.mr.borrow_mut() = Some(mr);
            AmDest::Buffer(slice)
        }
        fn on_complete(&self, _ep: &Endpoint, _hdr: &[u8], data: AmData) {
            if let AmData::Placed(n) = data {
                self.placed.set(n);
            }
        }
    }

    let (cluster, fabric) = world(false, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    let mr_cell = Rc::new(RefCell::new(None));
    let placed = Rc::new(std::cell::Cell::new(0usize));
    server.register_handler(
        SINK,
        IntoBuffer {
            mr: mr_cell.clone(),
            pd: {
                let f2 = IbFabric::new(cluster.clone());
                let _ = f2;
                fabric.open(NodeId(1)).alloc_pd()
            },
            placed: placed.clone(),
        },
    );
    let listener = server.listen(PORT).unwrap();
    server.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let payload: Vec<u8> = (0..3000).map(|i| (i % 7) as u8).collect();
    let p2 = payload.clone();
    cluster.sim().block_on(async move {
        let ep = client
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        let origin = client.counter();
        ep.send_message(
            SINK,
            b"h",
            &p2,
            SendOptions {
                origin: Some(origin.clone()),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        origin
            .wait_for(1, SimDuration::from_millis(100))
            .await
            .unwrap();
    });
    cluster.sim().run();
    assert_eq!(placed.get(), payload.len());
    let mr = mr_cell.borrow_mut().take().unwrap();
    assert_eq!(mr.read_at(0, payload.len()), payload);
}

#[test]
fn unknown_msg_id_is_counted_and_dropped() {
    let (cluster, fabric) = world(false, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    let listener = server.listen(PORT).unwrap();
    server.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let server2 = server.clone();
    cluster.sim().block_on(async move {
        let ep = client
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        ep.send_message(999, b"h", b"d", SendOptions::default())
            .await
            .unwrap();
        client
            .sim()
            .run_until(client.sim().now() + SimDuration::from_millis(1));
        assert_eq!(server2.stats().unknown_msg_dropped.get(), 1);
    });
}

#[test]
fn counter_wait_times_out_when_server_dies() {
    let (cluster, fabric) = world(false, 3);
    let server = start_echo_server(&fabric, NodeId(1), 1);
    let client = UcrRuntime::new(&fabric, NodeId(0));
    cluster.sim().block_on(async move {
        let ep = client
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        // Server dies before the request.
        server.shutdown();
        let ctr = client.counter();
        let hdr = ctr.id().to_le_bytes().to_vec();
        // The send itself may succeed (fire into the void) or fail fast.
        let _ = ep
            .send_message(ECHO, &hdr, b"x", SendOptions::default())
            .await;
        let err = ctr
            .wait_for(1, SimDuration::from_millis(5))
            .await
            .unwrap_err();
        assert_eq!(err, UcrError::Timeout);
        // The endpoint eventually observes the failure.
        client
            .sim()
            .run_until(client.sim().now() + SimDuration::from_millis(5));
        let err2 = ep
            .send_message(ECHO, &hdr, b"y", SendOptions::default())
            .await
            .map(|_| ());
        // Either already failed, or will fail on completion; both accepted.
        let _ = err2;
    });
}

#[test]
fn one_failing_endpoint_does_not_break_others() {
    let (cluster, fabric) = world(false, 4);
    // Two servers; one will die.
    let dying = start_echo_server(&fabric, NodeId(1), 1);
    let healthy = {
        let rt = UcrRuntime::new(&fabric, NodeId(2));
        rt.register_handler(ECHO, EchoHandler);
        let l = rt.listen(PORT).unwrap();
        rt.sim().spawn(async move {
            let _ = l.accept().await;
        });
        rt
    };
    let _ = healthy;
    let client = UcrRuntime::new(&fabric, NodeId(0));
    cluster.sim().block_on(async move {
        let ep_dying = client
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        dying.shutdown();
        let ctr = client.counter();
        let hdr = ctr.id().to_le_bytes().to_vec();
        let _ = ep_dying
            .send_message(ECHO, &hdr, b"x", SendOptions::default())
            .await;
        assert!(ctr.wait_for(1, SimDuration::from_millis(5)).await.is_err());

        // The same client runtime still works against the healthy server.
        let (dt, reply) = echo_once(&client, NodeId(2), b"still-alive".to_vec()).await;
        assert_eq!(reply, b"still-alive");
        assert!(dt.as_micros_f64() < 100.0);
    });
}

#[test]
fn connect_times_out_against_dead_node() {
    let (cluster, fabric) = world(false, 3);
    // Node 1 never opens a runtime; its HCA is never brought up.
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let err = cluster.sim().block_on(async move {
        client
            .connect(NodeId(1), PORT, SimDuration::from_millis(2))
            .await
            .unwrap_err()
    });
    assert!(matches!(
        err,
        UcrError::Timeout | UcrError::ConnectionRefused
    ));
}

#[test]
fn am_latency_bands_match_the_papers_order_of_magnitude() {
    // Small AM round trip should be single-digit microseconds. The 4 KB
    // echo carries data in BOTH directions, so it lands near twice the
    // per-direction data cost of the paper's Memcached get (20 us DDR /
    // 12 us QDR, which carry data one way): expect roughly 26-44 us DDR
    // and 14-28 us QDR, with QDR strictly faster.
    fn round_trip(cluster_b: bool, bytes: usize) -> f64 {
        let (cluster, fabric) = world(cluster_b, 2);
        let _server = start_echo_server(&fabric, NodeId(1), 1);
        let client = UcrRuntime::new(&fabric, NodeId(0));
        let (dt, _) = cluster
            .sim()
            .block_on(async move { echo_once(&client, NodeId(1), vec![7u8; bytes]).await });
        dt.as_micros_f64()
    }
    let small_ddr = round_trip(false, 4);
    let small_qdr = round_trip(true, 4);
    let big_ddr = round_trip(false, 4096);
    let big_qdr = round_trip(true, 4096);
    assert!(small_qdr < small_ddr, "QDR {small_qdr} vs DDR {small_ddr}");
    assert!(big_qdr < big_ddr, "QDR 4K {big_qdr} vs DDR 4K {big_ddr}");
    assert!(small_ddr < 10.0, "small DDR AM RTT {small_ddr} us too slow");
    assert!((26.0..44.0).contains(&big_ddr), "4K DDR echo {big_ddr} us");
    assert!((14.0..28.0).contains(&big_qdr), "4K QDR echo {big_qdr} us");
}

// ---------------------------------------------------------------------
// Unreliable (UD) endpoints — the paper's §VII scaling direction
// ---------------------------------------------------------------------

#[test]
fn ud_endpoints_round_trip_with_counters() {
    let (cluster, fabric) = world(true, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    server.register_handler(ECHO, EchoHandler);
    let server_qpn = server.ud_bind();

    let client = UcrRuntime::new(&fabric, NodeId(0));
    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let got2 = got.clone();
    client.register_handler(
        ECHO + 100,
        FnHandler(move |_ep: &Endpoint, _hdr: &[u8], data: AmData| {
            *got2.borrow_mut() = data.into_vec().unwrap_or_default();
        }),
    );
    cluster.sim().block_on({
        let client = client.clone();
        async move {
            let ep = client.ud_endpoint(NodeId(1), server_qpn);
            assert!(ep.is_unreliable());
            let ctr = client.counter();
            let hdr = ctr.id().to_le_bytes().to_vec();
            ep.send_message(ECHO, &hdr, b"dgram-payload", SendOptions::default())
                .await
                .unwrap();
            ctr.wait_for(1, SimDuration::from_millis(50)).await.unwrap();
        }
    });
    assert_eq!(*got.borrow(), b"dgram-payload");
    // The whole exchange used exactly one QP on each side.
    assert_eq!(server.qp_count(), 1);
    assert_eq!(client.qp_count(), 1);
}

#[test]
fn ud_rejects_messages_beyond_one_mtu() {
    let (cluster, fabric) = world(false, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    let qpn = server.ud_bind();
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let mtu = cluster.profile().ib.mtu as usize;
    cluster.sim().block_on(async move {
        let ep = client.ud_endpoint(NodeId(1), qpn);
        let err = ep
            .send_message(SINK, b"h", &vec![0u8; mtu + 1], SendOptions::default())
            .await
            .unwrap_err();
        assert_eq!(err, UcrError::MessageTooLarge);
    });
}

#[test]
fn ud_loss_is_detected_by_counter_timeout() {
    let (cluster, fabric) = world(false, 3);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    server.register_handler(ECHO, EchoHandler);
    let qpn = server.ud_bind();
    let client = UcrRuntime::new(&fabric, NodeId(0));
    cluster.sim().block_on(async move {
        let ep = client.ud_endpoint(NodeId(1), qpn);
        // Kill the server's HCA: datagrams now vanish silently — no
        // RetryExceeded on UD, only the counter timeout notices.
        server.shutdown();
        let ctr = client.counter();
        let hdr = ctr.id().to_le_bytes().to_vec();
        ep.send_message(ECHO, &hdr, b"lost", SendOptions::default())
            .await
            .unwrap();
        let err = ctr
            .wait_for(1, SimDuration::from_millis(5))
            .await
            .unwrap_err();
        assert_eq!(err, UcrError::Timeout);
    });
}

#[test]
fn many_ud_clients_share_one_server_qp() {
    let (cluster, fabric) = world(true, 10);
    let server = UcrRuntime::new(&fabric, NodeId(0));
    server.register_handler(ECHO, EchoHandler);
    let qpn = server.ud_bind();
    let sim = cluster.sim().clone();
    let mut joins = Vec::new();
    for c in 1..10u32 {
        let client = UcrRuntime::new(&fabric, NodeId(c));
        client.register_handler(
            ECHO + 100,
            FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}),
        );
        joins.push(sim.spawn(async move {
            let ep = client.ud_endpoint(NodeId(0), qpn);
            for _ in 0..20 {
                let ctr = client.counter();
                let hdr = ctr.id().to_le_bytes().to_vec();
                ep.send_message(ECHO, &hdr, b"ping", SendOptions::default())
                    .await
                    .unwrap();
                ctr.wait_for(1, SimDuration::from_millis(50)).await.unwrap();
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    // Nine clients, still one server QP — the SVII scaling claim. RC
    // would hold nine.
    assert_eq!(server.qp_count(), 1);
    assert_eq!(server.stats().eager_delivered.get(), 9 * 20);
}

// ---------------------------------------------------------------------
// One-sided put/get (paper §IV-B: "UCR provides interfaces for Active
// Messages as well as one-sided put/get operations")
// ---------------------------------------------------------------------

#[test]
fn one_sided_put_and_get_move_bytes_without_remote_handlers() {
    let (cluster, fabric) = world(true, 2);
    // The "server" registers memory and otherwise runs NO handlers: pure
    // one-sided access.
    let server = UcrRuntime::new(&fabric, NodeId(1));
    let region = server.register_memory(4096);
    region.write(0, b"initial-content!");
    let desc_all = region.descriptor(0, 4096);
    let desc_head = region.descriptor(0, 16);

    let listener = server.listen(PORT).unwrap();
    server.sim().spawn(async move {
        let _ = listener.accept().await;
    });

    let client = UcrRuntime::new(&fabric, NodeId(0));
    let client2 = client.clone();
    cluster.sim().block_on(async move {
        let ep = client2
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();

        // get: pull the head of the region.
        let local = client2.register_memory(4096);
        let done = client2.counter();
        ep.get(&local, 0, desc_head, Some(done.clone())).unwrap();
        done.wait_for(1, SimDuration::from_millis(50))
            .await
            .unwrap();
        assert_eq!(local.read(0, 16), b"initial-content!");

        // put: write into the middle of the region.
        let done = client2.counter();
        ep.put(
            region_window(&desc_all, 100, 11),
            b"put-payload",
            Some(done.clone()),
        )
        .unwrap();
        done.wait_for(1, SimDuration::from_millis(50))
            .await
            .unwrap();
    });
    assert_eq!(region.read(100, 11), b"put-payload");
    // No active messages were dispatched for any of this.
    assert_eq!(server.stats().eager_delivered.get(), 0);
    assert_eq!(server.stats().rndv_delivered.get(), 0);
}

/// Narrows a descriptor to a sub-window (helper: descriptors are plain
/// data, so arithmetic on them is the application's business).
fn region_window(d: &ucr::MemoryDescriptor, offset: u64, len: u64) -> ucr::MemoryDescriptor {
    ucr::MemoryDescriptor {
        node: d.node,
        rkey: d.rkey,
        offset: d.offset + offset,
        len,
    }
}

#[test]
fn one_sided_ops_rejected_on_unreliable_endpoints() {
    let (cluster, fabric) = world(false, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    let region = server.register_memory(64);
    let desc = region.descriptor(0, 64);
    let qpn = server.ud_bind();
    let client = UcrRuntime::new(&fabric, NodeId(0));
    cluster.sim().block_on(async move {
        let ep = client.ud_endpoint(NodeId(1), qpn);
        let local = client.register_memory(64);
        assert!(ep.put(desc, b"x", None).is_err());
        assert!(ep.get(&local, 0, desc, None).is_err());
    });
}

#[test]
fn one_sided_get_latency_is_a_pure_round_trip() {
    // A one-sided get should cost less than an active-message echo: no
    // handler dispatch, no worker, no reply message.
    let (cluster, fabric) = world(true, 2);
    let server = UcrRuntime::new(&fabric, NodeId(1));
    let region = server.register_memory(4096);
    let desc = region.descriptor(0, 4096);
    let listener = server.listen(PORT).unwrap();
    server.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let dt = cluster.sim().block_on(async move {
        let ep = client
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        let local = client.register_memory(4096);
        // Warm.
        let done = client.counter();
        ep.get(&local, 0, desc, Some(done.clone())).unwrap();
        done.wait_for(1, SimDuration::from_millis(50))
            .await
            .unwrap();
        let sim = client.sim();
        let t0 = sim.now();
        let done = client.counter();
        ep.get(&local, 0, desc, Some(done.clone())).unwrap();
        done.wait_for(1, SimDuration::from_millis(50))
            .await
            .unwrap();
        (sim.now() - t0).as_micros_f64()
    });
    assert!(
        dt < 12.0,
        "4 KB one-sided get on QDR took {dt} us; should beat the 12 us AM get"
    );
}

// ---------------------------------------------------------------------
// Property: exactly-once, in-order delivery across arbitrary size mixes
// ---------------------------------------------------------------------

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any sequence of message sizes (spanning eager and rendezvous)
        /// arrives exactly once with intact bytes. Ordering holds within
        /// each protocol path (eager stream; rendezvous stream) but not
        /// across them — a small eager message can legally overtake an
        /// in-flight rendezvous transfer, exactly as in GASNet-style
        /// active-message runtimes.
        #[test]
        fn messages_arrive_exactly_once_in_order(
            sizes in proptest::collection::vec(0usize..20_000, 1..12),
            seed in 0u64..1000,
        ) {
            let cluster = Rc::new(Cluster::cluster_b(seed, 2));
            let fabric = IbFabric::new(cluster.clone());
            let server = UcrRuntime::new(&fabric, NodeId(1));
            let received: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
            let received2 = received.clone();
            server.register_handler(
                SINK,
                FnHandler(move |_: &Endpoint, _: &[u8], data: AmData| {
                    received2.borrow_mut().push(data.into_vec().unwrap_or_default());
                }),
            );
            let listener = server.listen(PORT).unwrap();
            server.sim().spawn(async move {
                let _ = listener.accept().await;
            });

            let client = UcrRuntime::new(&fabric, NodeId(0));
            let expected: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| (0..n).map(|j| ((i * 31 + j) % 251) as u8).collect())
                .collect();
            let exp2 = expected.clone();
            cluster.sim().block_on(async move {
                let ep = client
                    .connect(NodeId(1), PORT, SimDuration::from_millis(100))
                    .await
                    .unwrap();
                let origin = client.counter();
                for msg in &exp2 {
                    ep.send_message(
                        SINK,
                        b"h",
                        msg,
                        SendOptions {
                            origin: Some(origin.clone()),
                            ..Default::default()
                        },
                    )
                    .await
                    .unwrap();
                }
                origin
                    .wait_for(exp2.len() as u64, SimDuration::from_millis(500))
                    .await
                    .unwrap();
            });
            cluster.sim().run();
            let received = received.borrow().clone();
            // Exactly once: multiset equality.
            let mut a = received.clone();
            let mut b = expected.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
            // In order within each protocol path. The eager threshold
            // applies to the payload (app header, 1 byte here, + data);
            // the 64-byte packet header rides in the receive buffers'
            // extra headroom.
            // payload = 1 + m.len() <= 8192, i.e. m.len() < 8192.
            let is_eager = |m: &Vec<u8>| m.len() < 8192;
            let eager_sent: Vec<&Vec<u8>> = expected.iter().filter(|m| is_eager(m)).collect();
            let eager_recv: Vec<&Vec<u8>> = received.iter().filter(|m| is_eager(m)).collect();
            prop_assert_eq!(eager_sent, eager_recv);
            let rndv_sent: Vec<&Vec<u8>> = expected.iter().filter(|m| !is_eager(m)).collect();
            let rndv_recv: Vec<&Vec<u8>> = received.iter().filter(|m| !is_eager(m)).collect();
            prop_assert_eq!(rndv_sent, rndv_recv);
        }
    }
}

// ---------------------------------------------------------------------
// Eager/rendezvous boundary semantics
// ---------------------------------------------------------------------

/// Sends one message of exactly `payload` bytes (empty app header) at
/// eager threshold `thr` and reports what the receiver saw:
/// `(eager_delivered, rndv_delivered, fabric_messages)`.
fn boundary_probe(payload: usize, thr: usize) -> (u64, u64, usize) {
    let (cluster, fabric) = world(false, 2);
    let receiver = UcrRuntime::new(&fabric, NodeId(1));
    receiver.register_handler(SINK, FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}));
    let listener = receiver.listen(PORT).unwrap();
    cluster.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let sender = UcrRuntime::new(&fabric, NodeId(0));
    sender.set_eager_threshold(thr);
    let recorder = simnet::TraceRecorder::new();
    let data = vec![0xabu8; payload];
    let cluster2 = cluster.clone();
    let rec2 = recorder.clone();
    let sender2 = sender.clone();
    cluster.sim().block_on(async move {
        let ep = sender2
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        // Count only the message itself (not connection setup).
        cluster2.set_subscriber(Some(rec2));
        let done = sender2.counter();
        ep.send_message(
            SINK,
            &[],
            &data,
            SendOptions {
                completion: Some(done.clone()),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        done.wait_for(1, SimDuration::from_millis(500))
            .await
            .unwrap();
        cluster2.set_subscriber(None);
    });
    (
        receiver.stats().eager_delivered.get(),
        receiver.stats().rndv_delivered.get(),
        recorder.wire_messages(),
    )
}

#[test]
fn eager_boundary_applies_to_payload_bytes() {
    let thr = 4096;
    // thr-1 and exactly thr ride the eager path: the payload plus the
    // 64-byte packet header still fits the receive buffers, which are
    // sized `PACKET_HEADER_BYTES + threshold`. One eager message plus
    // the completion Fin = 2 fabric messages.
    for payload in [thr - 1, thr] {
        let (eager, rndv, msgs) = boundary_probe(payload, thr);
        assert_eq!((eager, rndv), (1, 0), "payload {payload} must be eager");
        assert_eq!(msgs, 2, "eager send = message + Fin, payload {payload}");
    }
    // One byte past the threshold switches to rendezvous: RndvReq +
    // RDMA read request + read response + Fin = 4 fabric messages.
    let (eager, rndv, msgs) = boundary_probe(thr + 1, thr);
    assert_eq!(
        (eager, rndv),
        (0, 1),
        "payload past threshold must rendezvous"
    );
    assert_eq!(msgs, 4, "rendezvous = RndvReq + read req/resp + Fin");
}

#[test]
fn paper_8kb_payload_rides_eager_at_default_threshold() {
    // §IV-C: the design point is an 8 KB eager threshold. A payload of
    // exactly 8 KB must go eagerly — 2 fabric messages, not the
    // rendezvous 4.
    let thr = 8192;
    let (eager, rndv, msgs) = boundary_probe(thr, thr);
    assert_eq!((eager, rndv), (1, 0));
    assert_eq!(msgs, 2);
}

// ---------------------------------------------------------------------
// Counter edge cases
// ---------------------------------------------------------------------

#[test]
fn counter_wait_for_zero_on_fresh_counter_is_immediate() {
    let (cluster, fabric) = world(false, 2);
    let rt = UcrRuntime::new(&fabric, NodeId(0));
    cluster.sim().block_on(async move {
        let ctr = rt.counter();
        let t0 = rt.sim().now();
        // A fresh counter already satisfies target 0: no suspension, no
        // virtual time consumed, even with a zero deadline.
        ctr.wait_for(0, SimDuration::ZERO).await.unwrap();
        assert_eq!(rt.sim().now(), t0);
        assert_eq!(ctr.value(), 0);
    });
}

#[test]
fn counter_wait_past_tracks_concurrent_bumps() {
    let (cluster, fabric) = world(false, 2);
    let receiver = UcrRuntime::new(&fabric, NodeId(1));
    receiver.register_handler(SINK, FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}));
    let listener = receiver.listen(PORT).unwrap();
    cluster.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let sender = UcrRuntime::new(&fabric, NodeId(0));
    let ctr = receiver.counter();
    let ctr_id = ctr.id();
    let sim = cluster.sim().clone();
    // A sender task streams 5 messages at the counter while the main
    // task is already waiting.
    sim.spawn(async move {
        let ep = sender
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        for _ in 0..5 {
            ep.send_message(
                SINK,
                &[],
                b"bump",
                SendOptions {
                    target_ctr: ctr_id,
                    ..Default::default()
                },
            )
            .await
            .unwrap();
        }
    });
    cluster.sim().block_on(async move {
        ctr.wait_past(0, 3, SimDuration::from_millis(500))
            .await
            .unwrap();
        let seen = ctr.value();
        assert!(seen >= 3, "waited past 3, saw {seen}");
        // Wait for the remainder relative to the live snapshot.
        ctr.wait_past(seen, 5 - seen, SimDuration::from_millis(500))
            .await
            .unwrap();
        assert_eq!(ctr.value(), 5);
    });
}

#[test]
fn counter_timeout_then_late_bump_does_not_stale_notify() {
    let (cluster, fabric) = world(false, 2);
    let receiver = UcrRuntime::new(&fabric, NodeId(1));
    receiver.register_handler(SINK, FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}));
    let listener = receiver.listen(PORT).unwrap();
    cluster.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let sender = UcrRuntime::new(&fabric, NodeId(0));
    let ctr = receiver.counter();
    cluster.sim().block_on(async move {
        let ep = sender
            .connect(NodeId(1), PORT, SimDuration::from_millis(100))
            .await
            .unwrap();
        // Nothing in flight: the wait must time out.
        assert!(matches!(
            ctr.wait_for(1, SimDuration::from_micros(50)).await,
            Err(UcrError::Timeout)
        ));
        // The bump arrives after the waiter gave up.
        ep.send_message(
            SINK,
            &[],
            b"late",
            SendOptions {
                target_ctr: ctr.id(),
                ..Default::default()
            },
        )
        .await
        .unwrap();
        ctr.wait_for(1, SimDuration::from_millis(100))
            .await
            .unwrap();
        assert_eq!(ctr.value(), 1);
        // The late bump's notification must not satisfy a *new* waiter
        // whose target is still ahead of the counter.
        assert!(matches!(
            ctr.wait_for(2, SimDuration::from_millis(1)).await,
            Err(UcrError::Timeout)
        ));
        assert_eq!(ctr.value(), 1, "no phantom bump from a stale notify");
    });
}
