//! Integration tests for the verbs layer: SEND/RECV, RDMA read/write,
//! access control, SRQ fan-in, UD semantics, the connection manager, and
//! failure behaviour.

use std::rc::Rc;

use simnet::{Cluster, NodeId, SimDuration};
use verbs::{
    connect, Access, Cq, Hca, IbFabric, Pd, QpType, QueuePair, SendOp, SendWr, Srq, VerbsError,
    WcOpcode, WcStatus, DEFAULT_CONNECT_TIMEOUT,
};

struct Side {
    hca: Hca,
    pd: Pd,
    cq: Cq,
}

fn pair(cluster_b: bool) -> (Rc<Cluster>, Side, Side) {
    let cluster = Rc::new(if cluster_b {
        Cluster::cluster_b(11, 4)
    } else {
        Cluster::cluster_a(11, 4)
    });
    let fabric = IbFabric::new(cluster.clone());
    let mk = |n: u32| {
        let hca = fabric.open(NodeId(n));
        let pd = hca.alloc_pd();
        let cq = hca.create_cq();
        Side { hca, pd, cq }
    };
    (cluster, mk(0), mk(1))
}

fn connected_qps(a: &Side, b: &Side) -> (QueuePair, QueuePair) {
    let qa = a.pd.create_qp(QpType::Rc, &a.cq, &a.cq, None);
    let qb = b.pd.create_qp(QpType::Rc, &b.cq, &b.cq, None);
    qa.connect_to(b.hca.node(), qb.qpn()).unwrap();
    qb.connect_to(a.hca.node(), qa.qpn()).unwrap();
    (qa, qb)
}

#[test]
fn send_recv_moves_real_bytes() {
    let (cluster, a, b) = pair(false);
    let (qa, _qb_keepalive) = {
        let (qa, qb) = connected_qps(&a, &b);
        (qa, qb)
    };
    let dst = b.pd.register(1024, Access::LOCAL_WRITE);
    _qb_keepalive.post_recv(7, dst.full());

    let payload: Vec<u8> = (0..=255u8).collect();
    let src = a.pd.register_with(payload.clone(), Access::default());
    qa.post_send(SendWr::new(
        1,
        SendOp::Send {
            local: src.full(),
            imm: Some(0xfeed),
        },
    ))
    .unwrap();

    let bcq = b.cq.clone();
    let wc = cluster.sim().block_on(async move { bcq.next().await });
    assert_eq!(wc.wr_id, 7);
    assert_eq!(wc.opcode, WcOpcode::Recv);
    assert!(wc.status.is_ok());
    assert_eq!(wc.byte_len, 256);
    assert_eq!(wc.imm, Some(0xfeed));
    assert_eq!(dst.read_at(0, 256), payload);
}

#[test]
fn sender_gets_a_send_completion() {
    let (cluster, a, b) = pair(false);
    let (qa, qb) = connected_qps(&a, &b);
    let dst = b.pd.register(64, Access::LOCAL_WRITE);
    qb.post_recv(1, dst.full());
    qa.post_send(SendWr::new(
        42,
        SendOp::SendInline {
            data: b"x".to_vec(),
            imm: None,
        },
    ))
    .unwrap();
    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert_eq!(wc.wr_id, 42);
    assert_eq!(wc.opcode, WcOpcode::Send);
    assert!(wc.status.is_ok());
}

#[test]
fn message_larger_than_recv_buffer_errors() {
    let (cluster, a, b) = pair(false);
    let (qa, qb) = connected_qps(&a, &b);
    let small = b.pd.register(4, Access::LOCAL_WRITE);
    qb.post_recv(1, small.full());
    qa.post_send(SendWr::new(
        2,
        SendOp::SendInline {
            data: vec![0u8; 100],
            imm: None,
        },
    ))
    .unwrap();
    let bcq = b.cq.clone();
    let wc = cluster.sim().block_on(async move { bcq.next().await });
    assert_eq!(wc.status, WcStatus::LocalLengthError);
}

#[test]
fn rdma_write_lands_without_target_cpu() {
    let (cluster, a, b) = pair(false);
    let (qa, _qb) = connected_qps(&a, &b);
    let target =
        b.pd.register(4096, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
    let data = vec![0xabu8; 512];
    let src = a.pd.register_with(data.clone(), Access::default());

    qa.post_send(SendWr::new(
        1,
        SendOp::RdmaWrite {
            local: src.full(),
            remote: target.remote(128, 512),
            imm: None,
        },
    ))
    .unwrap();

    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert_eq!(wc.opcode, WcOpcode::RdmaWrite);
    assert!(wc.status.is_ok());
    assert_eq!(target.read_at(128, 512), data);
    // No receive was consumed, no target completion: one-sided.
    assert_eq!(b.cq.backlog(), 0);
}

#[test]
fn rdma_write_with_imm_consumes_receive() {
    let (cluster, a, b) = pair(false);
    let (qa, qb) = connected_qps(&a, &b);
    let target =
        b.pd.register(256, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
    let notice = b.pd.register(0, Access::LOCAL_WRITE);
    qb.post_recv(9, notice.full());

    let src = a.pd.register_with(vec![1, 2, 3], Access::default());
    qa.post_send(SendWr::new(
        1,
        SendOp::RdmaWrite {
            local: src.full(),
            remote: target.remote(0, 3),
            imm: Some(77),
        },
    ))
    .unwrap();

    let bcq = b.cq.clone();
    let wc = cluster.sim().block_on(async move { bcq.next().await });
    assert_eq!(wc.wr_id, 9);
    assert_eq!(wc.opcode, WcOpcode::RecvRdmaImm);
    assert_eq!(wc.imm, Some(77));
    assert_eq!(target.read_at(0, 3), vec![1, 2, 3]);
}

#[test]
fn rdma_read_pulls_remote_bytes() {
    let (cluster, a, b) = pair(true);
    let (qa, _qb) = connected_qps(&a, &b);
    let secret: Vec<u8> = (0..64).map(|i| i as u8 ^ 0x5a).collect();
    let remote_mr =
        b.pd.register_with(secret.clone(), Access::REMOTE_READ | Access::LOCAL_WRITE);
    let local = a.pd.register(64, Access::LOCAL_WRITE);

    qa.post_send(SendWr::new(
        5,
        SendOp::RdmaRead {
            local: local.full(),
            remote: remote_mr.remote(0, 64),
        },
    ))
    .unwrap();

    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert_eq!(wc.opcode, WcOpcode::RdmaRead);
    assert!(wc.status.is_ok());
    assert_eq!(wc.byte_len, 64);
    assert_eq!(local.read_at(0, 64), secret);
}

#[test]
fn rdma_read_without_permission_is_refused() {
    let (cluster, a, b) = pair(false);
    let (qa, _qb) = connected_qps(&a, &b);
    // Region lacks REMOTE_READ.
    let remote_mr = b.pd.register(64, Access::LOCAL_WRITE);
    let local = a.pd.register(64, Access::LOCAL_WRITE);
    qa.post_send(SendWr::new(
        5,
        SendOp::RdmaRead {
            local: local.full(),
            remote: remote_mr.remote(0, 64),
        },
    ))
    .unwrap();
    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert_eq!(wc.status, WcStatus::RemoteAccessError);
}

#[test]
fn deregistered_rkey_is_refused() {
    let (cluster, a, b) = pair(false);
    let (qa, _qb) = connected_qps(&a, &b);
    let remote_desc = {
        let mr = b.pd.register(64, Access::REMOTE_READ | Access::LOCAL_WRITE);
        mr.remote(0, 64)
        // mr drops here: deregistered.
    };
    let local = a.pd.register(64, Access::LOCAL_WRITE);
    qa.post_send(SendWr::new(
        1,
        SendOp::RdmaRead {
            local: local.full(),
            remote: remote_desc,
        },
    ))
    .unwrap();
    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert_eq!(wc.status, WcStatus::RemoteAccessError);
}

#[test]
fn pd_mismatch_is_rejected_synchronously() {
    let (_cluster, a, b) = pair(false);
    let (qa, _qb) = connected_qps(&a, &b);
    let other_pd = a.hca.alloc_pd();
    let foreign = other_pd.register(16, Access::default());
    let err = qa
        .post_send(SendWr::new(
            1,
            SendOp::Send {
                local: foreign.full(),
                imm: None,
            },
        ))
        .unwrap_err();
    assert!(matches!(err, VerbsError::AccessViolation(_)));
}

#[test]
fn srq_fans_in_many_qps() {
    let (cluster, a, b) = pair(false);
    let fabric = IbFabric::new(cluster.clone());
    let _ = fabric; // sides already built on their own fabric view
    let srq = Srq::new();
    // Four receive buffers in the shared pool.
    let bufs: Vec<_> = (0..4)
        .map(|i| {
            let mr = b.pd.register(64, Access::LOCAL_WRITE);
            srq.post_recv(100 + i, mr.full());
            mr
        })
        .collect();

    // Two client QPs share the server's SRQ-backed QPs.
    let mut client_qps = Vec::new();
    for _ in 0..2 {
        let qa = a.pd.create_qp(QpType::Rc, &a.cq, &a.cq, None);
        let qb = b.pd.create_qp(QpType::Rc, &b.cq, &b.cq, Some(&srq));
        qa.connect_to(b.hca.node(), qb.qpn()).unwrap();
        qb.connect_to(a.hca.node(), qa.qpn()).unwrap();
        client_qps.push((qa, qb));
    }

    for (i, (qa, _)) in client_qps.iter().enumerate() {
        qa.post_send(SendWr::new(
            i as u64,
            SendOp::SendInline {
                data: vec![i as u8; 8],
                imm: None,
            },
        ))
        .unwrap();
    }

    let bcq = b.cq.clone();
    let (wc1, wc2) = cluster.sim().block_on(async move {
        let w1 = bcq.next().await;
        let w2 = bcq.next().await;
        (w1, w2)
    });
    assert!(wc1.status.is_ok() && wc2.status.is_ok());
    // Both consumed SRQ buffers, in order.
    assert_eq!(wc1.wr_id, 100);
    assert_eq!(wc2.wr_id, 101);
    // Completions identify the arrival QP.
    assert_ne!(wc1.qp_num, wc2.qp_num);
    assert_eq!(srq.available(), 2);
    drop(bufs);
}

#[test]
fn ud_send_completes_locally_and_can_drop() {
    let (cluster, a, b) = pair(false);
    let qa = a.pd.create_qp(QpType::Ud, &a.cq, &a.cq, None);
    let qb = b.pd.create_qp(QpType::Ud, &b.cq, &b.cq, None);

    // No receive posted at b: datagram is dropped, sender still completes.
    let mut wr = SendWr::new(
        1,
        SendOp::SendInline {
            data: b"dgram".to_vec(),
            imm: None,
        },
    );
    wr.ud_dest = Some((b.hca.node(), qb.qpn()));
    qa.post_send(wr).unwrap();

    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert!(wc.status.is_ok());
    cluster.sim().run();
    assert_eq!(b.cq.backlog(), 0, "dropped datagram must not complete");

    // With a receive posted it is delivered.
    let dst = b.pd.register(64, Access::LOCAL_WRITE);
    qb.post_recv(3, dst.full());
    let mut wr = SendWr::new(
        2,
        SendOp::SendInline {
            data: b"dgram2".to_vec(),
            imm: None,
        },
    );
    wr.ud_dest = Some((b.hca.node(), qb.qpn()));
    qa.post_send(wr).unwrap();
    let bcq = b.cq.clone();
    let wc = cluster.sim().block_on(async move { bcq.next().await });
    assert_eq!(wc.wr_id, 3);
    assert_eq!(dst.read_at(0, 6), b"dgram2");
}

#[test]
fn ud_payload_capped_at_mtu() {
    let (cluster, a, b) = pair(false);
    let qa = a.pd.create_qp(QpType::Ud, &a.cq, &a.cq, None);
    let mtu = cluster.profile().ib.mtu as usize;
    let mut wr = SendWr::new(
        1,
        SendOp::SendInline {
            data: vec![0u8; mtu + 1],
            imm: None,
        },
    );
    wr.ud_dest = Some((b.hca.node(), 1));
    assert!(matches!(
        qa.post_send(wr),
        Err(VerbsError::AccessViolation(_))
    ));
}

#[test]
fn cm_handshake_connects_both_sides() {
    let (cluster, a, b) = pair(false);
    let listener = b.hca.listen(4000).unwrap();
    let sim = cluster.sim().clone();

    // Server side: accept then echo-receive.
    let bcq = b.cq.clone();
    let b_pd = b.pd;
    let b_hca = b.hca.clone();
    let server = sim.spawn(async move {
        let b_cq2 = b_hca.create_cq();
        let _ = b_cq2;
        let qp = listener.accept(&b_pd, &bcq, &bcq, None).await.unwrap();
        let mr = b_pd.register(64, Access::LOCAL_WRITE);
        qp.post_recv(1, mr.full());
        let wc = bcq.next().await;
        (wc, mr.read_at(0, 5))
    });

    let a_pd = a.pd;
    let a_cq = a.cq.clone();
    let a_hca = a.hca.clone();
    let dstn = b.hca.node();
    let client = sim.spawn(async move {
        let qp = connect(
            &a_hca,
            &a_pd,
            &a_cq,
            &a_cq,
            None,
            dstn,
            4000,
            DEFAULT_CONNECT_TIMEOUT,
        )
        .await
        .unwrap();
        qp.post_send(SendWr::new(
            1,
            SendOp::SendInline {
                data: b"hello".to_vec(),
                imm: None,
            },
        ))
        .unwrap();
        a_cq.next().await
    });

    let ((wc_srv, data), wc_cli) = sim.block_on(async move { (server.await, client.await) });
    assert!(wc_srv.status.is_ok());
    assert!(wc_cli.status.is_ok());
    assert_eq!(data, b"hello");
}

#[test]
fn connect_to_missing_listener_is_refused() {
    let (cluster, a, b) = pair(false);
    // Open b's HCA so the node is routable but has no listener on the port.
    let _ = &b;
    let sim = cluster.sim().clone();
    let a_pd = a.pd;
    let a_cq = a.cq.clone();
    let a_hca = a.hca.clone();
    let dstn = b.hca.node();
    let err = sim.block_on(async move {
        connect(
            &a_hca,
            &a_pd,
            &a_cq,
            &a_cq,
            None,
            dstn,
            4999,
            DEFAULT_CONNECT_TIMEOUT,
        )
        .await
        .unwrap_err()
    });
    assert_eq!(err, VerbsError::ConnectionRefused);
}

#[test]
fn send_to_killed_hca_reports_retry_exceeded() {
    let (cluster, a, b) = pair(false);
    let (qa, qb) = connected_qps(&a, &b);
    let _ = qb;
    b.hca.kill();
    qa.post_send(SendWr::new(
        1,
        SendOp::SendInline {
            data: b"lost".to_vec(),
            imm: None,
        },
    ))
    .unwrap();
    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert_eq!(wc.status, WcStatus::RetryExceeded);
}

#[test]
fn timing_qdr_send_is_faster_than_ddr() {
    fn one_way(cluster_b: bool, bytes: usize) -> SimDuration {
        let (cluster, a, b) = pair(cluster_b);
        let (qa, qb) = connected_qps(&a, &b);
        let dst = b.pd.register(bytes.max(1), Access::LOCAL_WRITE);
        qb.post_recv(1, dst.full());
        let t0 = cluster.sim().now();
        qa.post_send(SendWr::new(
            1,
            SendOp::SendInline {
                data: vec![0u8; bytes],
                imm: None,
            },
        ))
        .unwrap();
        let bcq = b.cq.clone();
        cluster.sim().block_on(async move {
            bcq.next().await;
        });
        cluster.sim().now() - t0
    }
    let ddr = one_way(false, 4096);
    let qdr = one_way(true, 4096);
    assert!(qdr < ddr, "QDR {qdr} should beat DDR {ddr}");
    // Small verbs message should be in the 1-3 us band the paper quotes
    // for verbs-level one-way latency.
    let small = one_way(true, 8);
    assert!(
        small.as_micros_f64() > 0.5 && small.as_micros_f64() < 3.0,
        "one-way small verbs latency {small} outside the expected band"
    );
}

// ---------------------------------------------------------------------
// Additional coverage: state machine, addressing, error paths
// ---------------------------------------------------------------------

#[test]
fn rc_qp_state_machine_is_enforced() {
    let (_cluster, a, b) = pair(false);
    let qa = a.pd.create_qp(QpType::Rc, &a.cq, &a.cq, None);
    // Send before connect: invalid state.
    let err = qa
        .post_send(SendWr::new(
            1,
            SendOp::SendInline {
                data: b"x".to_vec(),
                imm: None,
            },
        ))
        .unwrap_err();
    assert!(matches!(err, VerbsError::InvalidState(_)));
    // Double connect: invalid.
    qa.connect_to(b.hca.node(), 99).unwrap();
    assert!(qa.connect_to(b.hca.node(), 100).is_err());
    // UD QPs cannot use connect_to.
    let qu = a.pd.create_qp(QpType::Ud, &a.cq, &a.cq, None);
    assert!(qu.connect_to(b.hca.node(), 1).is_err());
}

#[test]
fn closed_qp_rejects_sends_and_peers_fail() {
    let (cluster, a, b) = pair(false);
    let (qa, qb) = connected_qps(&a, &b);
    qb.close();
    qa.post_send(SendWr::new(
        5,
        SendOp::SendInline {
            data: b"into-the-void".to_vec(),
            imm: None,
        },
    ))
    .unwrap();
    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert_eq!(wc.status, WcStatus::RetryExceeded);
    // The closed QP itself refuses new work.
    assert!(qb
        .post_send(SendWr::new(
            6,
            SendOp::SendInline {
                data: b"x".to_vec(),
                imm: None
            }
        ))
        .is_err());
}

#[test]
fn recv_completions_carry_source_addressing() {
    let (cluster, a, b) = pair(false);
    let (qa, qb) = connected_qps(&a, &b);
    let mr = b.pd.register(64, Access::LOCAL_WRITE);
    qb.post_recv(1, mr.full());
    qa.post_send(SendWr::new(
        2,
        SendOp::SendInline {
            data: b"hi".to_vec(),
            imm: None,
        },
    ))
    .unwrap();
    let bcq = b.cq.clone();
    let wc = cluster.sim().block_on(async move { bcq.next().await });
    assert_eq!(wc.src, Some((a.hca.node(), qa.qpn())));
    assert_eq!(wc.qp_num, qb.qpn());
}

#[test]
fn rdma_write_exceeding_window_fails_synchronously() {
    let (_cluster, a, b) = pair(false);
    let (qa, _qb) = connected_qps(&a, &b);
    let target =
        b.pd.register(64, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
    let src = a.pd.register(128, Access::default());
    let err = qa
        .post_send(SendWr::new(
            1,
            SendOp::RdmaWrite {
                local: src.full(),
                remote: target.remote(0, 64), // 128 bytes into a 64-byte window
                imm: None,
            },
        ))
        .unwrap_err();
    assert!(matches!(err, VerbsError::AccessViolation(_)));
}

#[test]
fn rdma_read_against_killed_peer_retries_out() {
    let (cluster, a, b) = pair(false);
    let (qa, _qb) = connected_qps(&a, &b);
    let remote_mr = b.pd.register(64, Access::REMOTE_READ | Access::LOCAL_WRITE);
    let desc = remote_mr.remote(0, 64);
    let local = a.pd.register(64, Access::LOCAL_WRITE);
    b.hca.kill();
    qa.post_send(SendWr::new(
        1,
        SendOp::RdmaRead {
            local: local.full(),
            remote: desc,
        },
    ))
    .unwrap();
    let acq = a.cq.clone();
    let wc = cluster.sim().block_on(async move { acq.next().await });
    assert_eq!(wc.status, WcStatus::RetryExceeded);
}

#[test]
fn listener_port_collision_and_release() {
    let (_cluster, a, _b) = pair(false);
    let l1 = a.hca.listen(7000).unwrap();
    assert!(a.hca.listen(7000).is_err(), "port must be exclusive");
    drop(l1);
    // Dropping the listener frees the port.
    assert!(a.hca.listen(7000).is_ok());
}

#[test]
fn messages_on_one_qp_arrive_in_order() {
    let (cluster, a, b) = pair(true);
    let (qa, qb) = connected_qps(&a, &b);
    let mut bufs = Vec::new();
    for i in 0..16u64 {
        let mr = b.pd.register(16, Access::LOCAL_WRITE);
        qb.post_recv(i, mr.full());
        bufs.push(mr);
    }
    for i in 0..16u8 {
        qa.post_send(SendWr::new(
            100 + i as u64,
            SendOp::SendInline {
                data: vec![i; 8],
                imm: None,
            },
        ))
        .unwrap();
    }
    let bcq = b.cq.clone();
    let order = cluster.sim().block_on(async move {
        let mut got = Vec::new();
        for _ in 0..16 {
            got.push(bcq.next().await.wr_id);
        }
        got
    });
    assert_eq!(order, (0..16u64).collect::<Vec<_>>(), "RC is ordered");
    for (i, mr) in bufs.iter().enumerate() {
        assert_eq!(mr.read_at(0, 8), vec![i as u8; 8]);
    }
}

#[test]
fn mr_register_with_initial_data_and_bounds() {
    let (_cluster, a, _b) = pair(false);
    let mr = a.pd.register_with(vec![1, 2, 3, 4], Access::REMOTE_READ);
    assert_eq!(mr.len(), 4);
    assert!(!mr.is_empty());
    assert_eq!(mr.read_at(1, 2), vec![2, 3]);
    mr.write_at(0, &[9]);
    assert_eq!(mr.read_at(0, 1), vec![9]);
    let slice = mr.slice(1, 3);
    assert_eq!(slice.len(), 3);
    assert_eq!(slice.read(2), vec![2, 3]);
}

#[test]
#[should_panic(expected = "slice out of bounds")]
fn mr_slice_bounds_checked() {
    let (_cluster, a, _b) = pair(false);
    let mr = a.pd.register(8, Access::default());
    let _ = mr.slice(4, 8);
}
