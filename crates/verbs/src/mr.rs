//! Protection domains and registered memory regions.
//!
//! Registration pins a buffer and hands out an `lkey` (local use) and an
//! `rkey` (advertised to peers for one-sided access). The simulation keeps
//! each region as a byte vector behind `Rc<RefCell<..>>`; inbound RDMA
//! resolves the rkey through the owning HCA's region table, checks access
//! and bounds, and then actually moves the bytes — so data integrity is
//! end-to-end observable in tests.

use std::cell::RefCell;
use std::rc::{Rc, Weak};

use crate::types::{Access, RemoteMemory, VerbsError};
use simnet::NodeId;

pub(crate) struct MrInner {
    pub rkey: u32,
    pub pd_id: u32,
    pub access: Access,
    pub buf: RefCell<Vec<u8>>,
}

/// A protection domain: the allocation scope for memory regions and queue
/// pairs. Regions registered in one PD are usable by QPs of the same PD.
/// Holds its HCA strongly — a PD is an explicit adapter resource, so the
/// adapter state outlives it by construction (no fallible upgrade on the
/// registration path). The HCA only holds PDs' *products* weakly (MRs) or
/// without back-references, so this creates no cycle.
pub struct Pd {
    pub(crate) node: NodeId,
    pub(crate) pd_id: u32,
    pub(crate) hca: Rc<crate::fabric::HcaInner>,
}

/// A registered memory region.
pub struct Mr {
    pub(crate) inner: Rc<MrInner>,
    pub(crate) node: NodeId,
    pub(crate) hca: Weak<crate::fabric::HcaInner>,
}

/// A borrowable window into a registered region, used as the local buffer
/// of work requests. Cheap to clone.
#[derive(Clone)]
pub struct MrSlice {
    pub(crate) inner: Rc<MrInner>,
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl Pd {
    /// Registers a fresh zero-filled region of `len` bytes.
    pub fn register(&self, len: usize, access: Access) -> Mr {
        self.register_with(vec![0u8; len], access)
    }

    /// Registers a region initialized with `data`.
    pub fn register_with(&self, data: Vec<u8>, access: Access) -> Mr {
        let hca = &self.hca;
        let rkey = hca.next_key();
        let inner = Rc::new(MrInner {
            rkey,
            pd_id: self.pd_id,
            access,
            buf: RefCell::new(data),
        });
        hca.mrs.borrow_mut().insert(rkey, Rc::downgrade(&inner));
        Mr {
            inner,
            node: self.node,
            hca: Rc::downgrade(hca),
        }
    }
}

impl Mr {
    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.inner.buf.borrow().len()
    }

    /// True if the region is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The steering key peers use to target this region.
    pub fn rkey(&self) -> u32 {
        self.inner.rkey
    }

    /// Copies `data` into the region at `offset` (application-side write,
    /// e.g. staging a value before a send).
    pub fn write_at(&self, offset: usize, data: &[u8]) {
        let mut buf = self.inner.buf.borrow_mut();
        assert!(
            offset + data.len() <= buf.len(),
            "write_at out of bounds: {}+{} > {}",
            offset,
            data.len(),
            buf.len()
        );
        buf[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Copies bytes out of the region (application-side read).
    pub fn read_at(&self, offset: usize, len: usize) -> Vec<u8> {
        let buf = self.inner.buf.borrow();
        assert!(offset + len <= buf.len(), "read_at out of bounds");
        buf[offset..offset + len].to_vec()
    }

    /// A window over `[offset, offset+len)` usable in work requests.
    pub fn slice(&self, offset: usize, len: usize) -> MrSlice {
        assert!(
            offset + len <= self.len(),
            "slice out of bounds: {}+{} > {}",
            offset,
            len,
            self.len()
        );
        MrSlice {
            inner: self.inner.clone(),
            offset,
            len,
        }
    }

    /// The whole region as a slice.
    pub fn full(&self) -> MrSlice {
        self.slice(0, self.len())
    }

    /// A descriptor a peer can use to RDMA into/out of this window.
    pub fn remote(&self, offset: usize, len: usize) -> RemoteMemory {
        assert!(offset + len <= self.len(), "remote window out of bounds");
        RemoteMemory {
            node: self.node,
            rkey: self.inner.rkey,
            offset: offset as u64,
            len: len as u64,
        }
    }
}

impl Drop for Mr {
    fn drop(&mut self) {
        // Deregister: peers holding a stale rkey get RemoteAccessError.
        if let Some(hca) = self.hca.upgrade() {
            hca.mrs.borrow_mut().remove(&self.inner.rkey);
        }
    }
}

impl MrSlice {
    /// Window length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the window's bytes out (models the HCA DMA-reading them).
    pub(crate) fn dma_read(&self) -> Vec<u8> {
        let buf = self.inner.buf.borrow();
        buf[self.offset..self.offset + self.len].to_vec()
    }

    /// Writes `data` into the window's prefix (models HCA DMA delivery).
    /// Fails if `data` is longer than the window or the region lacks
    /// LOCAL_WRITE.
    pub(crate) fn dma_write(&self, data: &[u8]) -> Result<(), VerbsError> {
        if !self.inner.access.allows(Access::LOCAL_WRITE) {
            return Err(VerbsError::AccessViolation("region lacks LOCAL_WRITE"));
        }
        if data.len() > self.len {
            return Err(VerbsError::AccessViolation("inbound data exceeds buffer"));
        }
        let mut buf = self.inner.buf.borrow_mut();
        buf[self.offset..self.offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Writes `data` into the window's prefix (application-side write into
    /// its own registered memory; requires LOCAL_WRITE, like a recv).
    pub fn write_prefix(&self, data: &[u8]) -> Result<(), VerbsError> {
        self.dma_write(data)
    }

    /// Application-level view of the received bytes.
    pub fn read(&self, len: usize) -> Vec<u8> {
        assert!(len <= self.len, "read beyond slice");
        let buf = self.inner.buf.borrow();
        buf[self.offset..self.offset + len].to_vec()
    }
}

/// Resolves an inbound one-sided access against an HCA's region table.
/// Returns the region and checked byte range.
pub(crate) fn resolve_remote(
    hca: &crate::fabric::HcaInner,
    mem: &RemoteMemory,
    need: Access,
    len: u64,
) -> Result<(Rc<MrInner>, usize), VerbsError> {
    let mr = hca
        .mrs
        .borrow()
        .get(&mem.rkey)
        .and_then(Weak::upgrade)
        .ok_or(VerbsError::AccessViolation("unknown or deregistered rkey"))?;
    if !mr.access.allows(need) {
        return Err(VerbsError::AccessViolation("permission denied"));
    }
    let end = mem
        .offset
        .checked_add(len)
        .ok_or(VerbsError::AccessViolation("window overflow"))?;
    if len > mem.len || end as usize > mr.buf.borrow().len() {
        return Err(VerbsError::AccessViolation("window out of bounds"));
    }
    Ok((mr, mem.offset as usize))
}
