//! Common verbs types: access flags, work completions, errors.

use std::fmt;

use simnet::NodeId;

/// Memory-region access permissions (a miniature of `ibv_access_flags`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Access(u8);

impl Access {
    /// Local read only (registration always implies local read).
    pub const LOCAL_READ: Access = Access(0);
    /// The HCA may write inbound data into this region (recv, RDMA write
    /// target).
    pub const LOCAL_WRITE: Access = Access(1);
    /// Remote peers may RDMA-read this region.
    pub const REMOTE_READ: Access = Access(2);
    /// Remote peers may RDMA-write this region.
    pub const REMOTE_WRITE: Access = Access(4);

    /// Everything: local write + remote read + remote write.
    pub const ALL: Access = Access(1 | 2 | 4);

    /// True if `self` grants every permission in `other`.
    pub fn allows(self, other: Access) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for Access {
    type Output = Access;
    fn bitor(self, rhs: Access) -> Access {
        Access(self.0 | rhs.0)
    }
}

/// Operation type recorded in a completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WcOpcode {
    /// A SEND completed locally (ack received).
    Send,
    /// An RDMA write completed locally.
    RdmaWrite,
    /// An RDMA read completed locally (data has landed).
    RdmaRead,
    /// An inbound SEND consumed a posted receive.
    Recv,
    /// An inbound RDMA-write-with-immediate consumed a posted receive.
    RecvRdmaImm,
}

/// Completion status (subset of `ibv_wc_status`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WcStatus {
    /// Operation completed successfully.
    Success,
    /// Inbound message longer than the posted receive buffer.
    LocalLengthError,
    /// Remote side rejected the access (bad rkey, permissions, bounds).
    RemoteAccessError,
    /// The queue pair is not in a state that can carry traffic.
    QpStateError,
    /// The remote endpoint is gone (simulated node/process failure).
    RetryExceeded,
}

impl WcStatus {
    /// Success?
    pub fn is_ok(self) -> bool {
        matches!(self, WcStatus::Success)
    }
}

/// A work completion, as reaped from a completion queue.
#[derive(Clone, Debug)]
pub struct Wc {
    /// Caller-chosen identifier from the work request.
    pub wr_id: u64,
    /// What finished.
    pub opcode: WcOpcode,
    /// Outcome.
    pub status: WcStatus,
    /// Bytes transferred (payload length for recv completions).
    pub byte_len: u32,
    /// Immediate data carried by SEND/WRITE-with-imm, if any.
    pub imm: Option<u32>,
    /// For recv completions: the queue-pair number the message arrived on
    /// (lets one CQ serve many QPs, as with SRQ).
    pub qp_num: u32,
    /// For recv completions: the sender's (node, QP number) — the address
    /// handle information UD consumers need to reply (`slid`/`src_qp` of
    /// a real work completion). Also populated for RC receives.
    pub src: Option<(NodeId, u32)>,
}

/// Describes remote memory that can be targeted by one-sided operations —
/// what an application exchanges instead of pointers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteMemory {
    /// Node that owns the memory.
    pub node: NodeId,
    /// Steering key naming the registered region.
    pub rkey: u32,
    /// Offset within the region.
    pub offset: u64,
    /// Length of the addressable window.
    pub len: u64,
}

/// Errors surfaced synchronously by verbs calls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerbsError {
    /// QP is not connected / wrong state for the operation.
    InvalidState(&'static str),
    /// MR slice out of bounds or permission missing.
    AccessViolation(&'static str),
    /// Connection manager could not reach or match a listener.
    ConnectionRefused,
    /// CM handshake timed out.
    ConnectionTimeout,
    /// The referenced object (QP, listener, node) does not exist.
    NotFound(&'static str),
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::InvalidState(s) => write!(f, "invalid queue-pair state: {s}"),
            VerbsError::AccessViolation(s) => write!(f, "memory access violation: {s}"),
            VerbsError::ConnectionRefused => write!(f, "connection refused"),
            VerbsError::ConnectionTimeout => write!(f, "connection timed out"),
            VerbsError::NotFound(s) => write!(f, "not found: {s}"),
        }
    }
}

impl std::error::Error for VerbsError {}

/// Bytes of transport header added to every message on the wire (RC
/// transport framing, roughly LRH+BTH+ICRC).
pub const WIRE_HEADER_BYTES: u64 = 30;

/// Extra bytes of GRH prepended to UD datagrams.
pub const UD_GRH_BYTES: u64 = 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_allows() {
        let rw = Access::REMOTE_READ | Access::REMOTE_WRITE;
        assert!(rw.allows(Access::REMOTE_READ));
        assert!(rw.allows(Access::REMOTE_WRITE));
        assert!(!rw.allows(Access::LOCAL_WRITE));
        assert!(Access::ALL.allows(rw));
        // LOCAL_READ is the empty set of extra permissions.
        assert!(Access::default().allows(Access::LOCAL_READ));
    }

    #[test]
    fn status_predicate() {
        assert!(WcStatus::Success.is_ok());
        assert!(!WcStatus::RemoteAccessError.is_ok());
    }
}
