//! Connection manager: rendezvous for RC queue pairs.
//!
//! InfiniBand RC requires both sides to learn each other's QP number before
//! traffic can flow; real deployments use the RDMA CM (or sockets) for this
//! exchange. Here a listener binds a service port on a node; a client's
//! [`connect`] sends a small CM request over the fabric, the acceptor
//! creates a passive QP and replies, and both QPs transition to RTS. UCR's
//! endpoint establishment (paper §IV-A) is built directly on this.

use simnet::sync::{self, timeout};
use simnet::trace::{Layer, Track};
use simnet::{NodeId, SimDuration};

use crate::cq::Cq;
use crate::fabric::Hca;
use crate::mr::Pd;
use crate::qp::{QpType, QueuePair, Srq};
use crate::types::VerbsError;

/// Size of CM control messages on the wire.
const CM_MSG_BYTES: u64 = 64;

/// Fixed CM software processing per handshake step (connection setup is
/// not on the benchmarked fast path; real CM is far slower than this).
const CM_STEP_COST: SimDuration = SimDuration::from_micros(5);

/// Default handshake timeout.
pub const DEFAULT_CONNECT_TIMEOUT: SimDuration = SimDuration::from_millis(100);

/// Messages the CM exchanges (crate-internal).
#[derive(Clone)]
pub struct CmMessage {
    /// Connection attempt id, echoed in the reply.
    pub conn_id: u64,
    /// Requesting node.
    pub src_node: NodeId,
    /// Requesting QP number.
    pub src_qpn: u32,
    /// Target service port.
    pub port: u16,
}

/// A bound service port accepting RC connections.
pub struct Listener {
    hca: Hca,
    port: u16,
    rx: sync::Receiver<CmMessage>,
}

impl Hca {
    /// Binds `port` and returns a listener. Fails if the port is taken.
    pub fn listen(&self, port: u16) -> Result<Listener, VerbsError> {
        let mut listeners = self.inner.listeners.borrow_mut();
        if listeners.contains_key(&port) {
            return Err(VerbsError::InvalidState("port already bound"));
        }
        let (tx, rx) = sync::channel();
        listeners.insert(port, tx);
        Ok(Listener {
            hca: self.clone(),
            port,
            rx,
        })
    }
}

impl Listener {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Accepts one inbound connection: creates a passive RC QP with the
    /// given resources, replies to the requester, and returns the QP ready
    /// to send.
    pub async fn accept(
        &self,
        pd: &Pd,
        send_cq: &Cq,
        recv_cq: &Cq,
        srq: Option<&Srq>,
    ) -> Result<QueuePair, VerbsError> {
        let req = self
            .rx
            .recv()
            .await
            .map_err(|_| VerbsError::InvalidState("listener closed"))?;
        let sim = self.hca.sim();
        sim.sleep(CM_STEP_COST).await;

        let qp = pd.create_qp(QpType::Rc, send_cq, recv_cq, srq);
        qp.connect_to(req.src_node, req.src_qpn)?;

        // Reply with our QP number.
        let inner = &self.hca.inner;
        let fabric = inner
            .fabric
            .upgrade()
            .ok_or(VerbsError::NotFound("fabric"))?;
        let dst = req.src_node;
        let conn_id = req.conn_id;
        let qpn = qp.qpn();
        let fabric_weak = inner.fabric.clone();
        inner
            .net
            .clone()
            .transmit(&sim, inner.node, dst, CM_MSG_BYTES, sim.now(), move || {
                if let Some(f) = fabric_weak.upgrade() {
                    if let Some(rhca) = f.live_hca(dst) {
                        if let Some(tx) = rhca.pending_connects.borrow_mut().remove(&conn_id) {
                            let _ = tx.send(Ok(qpn));
                        }
                    }
                }
            });
        let _ = fabric;
        inner.tracer.instant(
            Layer::Verbs,
            "cm_accept",
            inner.node,
            Track::Qp(qp.qpn()),
            conn_id,
            0,
            sim.now(),
        );
        Ok(qp)
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.hca.inner.listeners.borrow_mut().remove(&self.port);
    }
}

/// Connects an RC QP to a listener at `(dst, port)`, creating the active QP
/// from the supplied resources. Resolves once the handshake completes or
/// `connect_timeout` elapses.
#[allow(clippy::too_many_arguments)] // mirrors the rdma_cm parameter surface
pub async fn connect(
    hca: &Hca,
    pd: &Pd,
    send_cq: &Cq,
    recv_cq: &Cq,
    srq: Option<&Srq>,
    dst: NodeId,
    port: u16,
    connect_timeout: SimDuration,
) -> Result<QueuePair, VerbsError> {
    let sim = hca.sim();
    if dst == hca.node() {
        return Err(VerbsError::InvalidState("CM loopback not modeled"));
    }
    sim.sleep(CM_STEP_COST).await;

    let qp = pd.create_qp(QpType::Rc, send_cq, recv_cq, srq);
    let inner = &hca.inner;
    let conn_id = inner.next_conn();
    let (tx, rx) = sync::oneshot();
    inner.pending_connects.borrow_mut().insert(conn_id, tx);

    let msg = CmMessage {
        conn_id,
        src_node: inner.node,
        src_qpn: qp.qpn(),
        port,
    };
    let fabric_weak = inner.fabric.clone();
    let src = inner.node;
    inner
        .net
        .clone()
        .transmit(&sim, src, dst, CM_MSG_BYTES, sim.now(), move || {
            let Some(f) = fabric_weak.upgrade() else {
                return;
            };
            let reject = match f.live_hca(dst) {
                Some(rhca) => {
                    let delivered = rhca
                        .listeners
                        .borrow()
                        .get(&msg.port)
                        .map(|tx| tx.send(msg.clone()).is_ok())
                        .unwrap_or(false);
                    !delivered
                }
                None => true,
            };
            if reject {
                // Send a reject straight back.
                let sim2 = f.cluster.sim().clone();
                let f2 = fabric_weak.clone();
                if let Some(rhca) = f.hcas.borrow().get(&dst).cloned() {
                    rhca.net.clone().transmit(
                        &sim2,
                        dst,
                        src,
                        CM_MSG_BYTES,
                        sim2.now(),
                        move || {
                            if let Some(f) = f2.upgrade() {
                                if let Some(sh) = f.live_hca(src) {
                                    if let Some(tx) =
                                        sh.pending_connects.borrow_mut().remove(&conn_id)
                                    {
                                        let _ = tx.send(Err(VerbsError::ConnectionRefused));
                                    }
                                }
                            }
                        },
                    );
                }
            }
        });

    let res = match timeout(&sim, connect_timeout, rx).await {
        Ok(Ok(Ok(remote_qpn))) => {
            qp.connect_to(dst, remote_qpn)?;
            Ok(qp)
        }
        Ok(Ok(Err(e))) => {
            qp.close();
            Err(e)
        }
        Ok(Err(_cancelled)) => {
            qp.close();
            Err(VerbsError::ConnectionRefused)
        }
        Err(_elapsed) => {
            inner.pending_connects.borrow_mut().remove(&conn_id);
            qp.close();
            Err(VerbsError::ConnectionTimeout)
        }
    };
    inner.tracer.instant(
        Layer::Verbs,
        if res.is_ok() {
            "cm_connect"
        } else {
            "cm_connect_failed"
        },
        inner.node,
        match &res {
            Ok(qp) => Track::Qp(qp.qpn()),
            Err(_) => Track::Main,
        },
        conn_id,
        0,
        sim.now(),
    );
    res
}
