//! Queue pairs, work requests, shared receive queues.
//!
//! Implements the verbs data path over the simulated fabric:
//!
//! * **SEND/RECV** (two-sided): payload travels with the message; the
//!   receiver must have a receive posted (on the QP or its SRQ). Receive
//!   completions carry immediate data and the arrival QP number.
//! * **RDMA WRITE / WRITE-with-imm** (one-sided): data lands directly in
//!   the target region; no target CPU cost is charged — OS-bypass is the
//!   paper's core mechanism. WRITE-with-imm additionally consumes a
//!   receive and produces a target completion.
//! * **RDMA READ** (one-sided): the requester pulls remote bytes; the
//!   target HCA serves the read without any software involvement. This is
//!   how the UCR server fetches large `set` payloads (paper §V-B).
//!
//! Timing per operation: the poster pays the doorbell cost, the local HCA
//! pipeline is occupied per work request (its reciprocal is the adapter
//! message rate — the Figure 6 ceiling), the fabric moves the bytes, and
//! the remote HCA pipeline is occupied on arrival. Reliability: RC
//! operations targeting a dead or closed endpoint complete locally with
//! `RetryExceeded` after a retry delay; UD sends complete immediately and
//! drop silently on the floor, as real UD does.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::{Rc, Weak};

use simnet::trace::{Layer, Track};
use simnet::{NodeId, SimDuration, SimTime};

use crate::cq::Cq;
use crate::fabric::HcaInner;
use crate::mr::{resolve_remote, MrSlice, Pd};
use crate::types::{
    Access, RemoteMemory, VerbsError, Wc, WcOpcode, WcStatus, UD_GRH_BYTES, WIRE_HEADER_BYTES,
};

/// Transport type of a queue pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QpType {
    /// Reliable Connection: ordered, acknowledged, supports RDMA.
    Rc,
    /// Unreliable Datagram: connectionless, MTU-limited, may drop.
    Ud,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum QpState {
    Init,
    Rts,
    Closed,
}

/// Simulated cost of exhausting RC retries against a dead peer before the
/// HCA reports `RetryExceeded`. (Real stacks take retry_cnt × timeout; we
/// use a compressed constant so fault tests stay fast.)
pub const RETRY_EXCEEDED_DELAY: SimDuration = SimDuration::from_micros(200);

/// A posted receive.
struct RecvWr {
    wr_id: u64,
    buf: MrSlice,
}

/// An inbound two-sided message waiting for receive matching.
struct Inbound {
    payload: Vec<u8>,
    imm: Option<u32>,
    opcode: WcOpcode,
    src: Option<(NodeId, u32)>,
}

/// A shared receive queue: one pool of receives serving many QPs — the
/// MVAPICH scalability design the paper reuses for buffer management.
#[derive(Clone)]
pub struct Srq {
    queue: Rc<RefCell<VecDeque<RecvWr>>>,
}

impl Srq {
    /// Creates an empty SRQ.
    pub fn new() -> Srq {
        Srq {
            queue: Rc::new(RefCell::new(VecDeque::new())),
        }
    }

    /// Posts a receive buffer to the shared pool.
    pub fn post_recv(&self, wr_id: u64, buf: MrSlice) {
        self.queue.borrow_mut().push_back(RecvWr { wr_id, buf });
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.queue.borrow().len()
    }

    fn pop(&self) -> Option<RecvWr> {
        self.queue.borrow_mut().pop_front()
    }
}

impl Default for Srq {
    fn default() -> Self {
        Srq::new()
    }
}

/// The work to perform in a send-side work request.
pub enum SendOp {
    /// Two-sided send of a registered window.
    Send {
        /// Local data to transmit.
        local: MrSlice,
        /// Optional immediate word delivered in the receive completion.
        imm: Option<u32>,
    },
    /// Two-sided send of an inline byte buffer (convenience for small
    /// control messages; real verbs has IBV_SEND_INLINE).
    SendInline {
        /// Bytes to transmit.
        data: Vec<u8>,
        /// Optional immediate word.
        imm: Option<u32>,
    },
    /// Two-sided send of a two-entry gather list: `head` then `data` on
    /// the wire, concatenated by the HCA's DMA engine (a scatter/gather
    /// post). Lets callers hand over an owned payload without staging it
    /// into a contiguous buffer first.
    SendGather {
        /// Control/header bytes transmitted first.
        head: Vec<u8>,
        /// Payload transmitted after `head`, moved from the caller.
        data: Vec<u8>,
        /// Optional immediate word.
        imm: Option<u32>,
    },
    /// One-sided write into remote memory.
    RdmaWrite {
        /// Local source window.
        local: MrSlice,
        /// Remote destination window (rkey-addressed).
        remote: RemoteMemory,
        /// If set, the write consumes a remote receive and completes it
        /// with this immediate (WRITE_WITH_IMM).
        imm: Option<u32>,
    },
    /// One-sided read from remote memory into a local window.
    RdmaRead {
        /// Local destination window.
        local: MrSlice,
        /// Remote source window (rkey-addressed).
        remote: RemoteMemory,
    },
}

/// A send-side work request.
pub struct SendWr {
    /// Caller-chosen id returned in the completion.
    pub wr_id: u64,
    /// The operation.
    pub op: SendOp,
    /// UD only: destination address handle (node, QP number).
    pub ud_dest: Option<(NodeId, u32)>,
}

impl SendWr {
    /// Convenience constructor for RC work requests.
    pub fn new(wr_id: u64, op: SendOp) -> SendWr {
        SendWr {
            wr_id,
            op,
            ud_dest: None,
        }
    }
}

pub(crate) struct QpInner {
    pub qpn: u32,
    pub qp_type: QpType,
    pub pd_id: u32,
    /// Owning node, copied out of the HCA at creation so it stays
    /// readable even after the adapter is torn down.
    pub node: NodeId,
    /// Weak by necessity: the HCA's QP table holds `Rc<QpInner>`.
    pub hca: Weak<HcaInner>,
    pub send_cq: Cq,
    pub recv_cq: Cq,
    srq: Option<Srq>,
    recv_queue: RefCell<VecDeque<RecvWr>>,
    pending_inbound: RefCell<VecDeque<Inbound>>,
    remote: Cell<Option<(NodeId, u32)>>,
    state: Cell<QpState>,
}

/// A queue pair.
#[derive(Clone)]
pub struct QueuePair {
    pub(crate) inner: Rc<QpInner>,
}

impl Pd {
    /// Creates a queue pair in this protection domain. RC QPs must be
    /// connected (via [`QueuePair::connect_to`] or the connection manager)
    /// before posting sends.
    pub fn create_qp(
        &self,
        qp_type: QpType,
        send_cq: &Cq,
        recv_cq: &Cq,
        srq: Option<&Srq>,
    ) -> QueuePair {
        let hca = &self.hca;
        let qpn = hca.next_qpn();
        let inner = Rc::new(QpInner {
            qpn,
            qp_type,
            pd_id: self.pd_id,
            node: hca.node,
            hca: Rc::downgrade(hca),
            send_cq: send_cq.clone(),
            recv_cq: recv_cq.clone(),
            srq: srq.cloned(),
            recv_queue: RefCell::new(VecDeque::new()),
            pending_inbound: RefCell::new(VecDeque::new()),
            remote: Cell::new(None),
            state: Cell::new(if qp_type == QpType::Ud {
                QpState::Rts // UD is usable immediately
            } else {
                QpState::Init
            }),
        });
        hca.qps.borrow_mut().insert(qpn, inner.clone());
        QueuePair { inner }
    }
}

impl QueuePair {
    /// This QP's number (exchange it out of band or via the CM).
    pub fn qpn(&self) -> u32 {
        self.inner.qpn
    }

    /// Transport type.
    pub fn qp_type(&self) -> QpType {
        self.inner.qp_type
    }

    /// The node this QP lives on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Transitions an RC QP to ready-to-send against `(node, qpn)` —
    /// the INIT→RTR→RTS walk collapsed into one call. The peer must do the
    /// same with this QP's coordinates.
    pub fn connect_to(&self, node: NodeId, qpn: u32) -> Result<(), VerbsError> {
        if self.inner.qp_type != QpType::Rc {
            return Err(VerbsError::InvalidState("connect_to is for RC QPs"));
        }
        if self.inner.state.get() != QpState::Init {
            return Err(VerbsError::InvalidState("QP already connected or closed"));
        }
        self.inner.remote.set(Some((node, qpn)));
        self.inner.state.set(QpState::Rts);
        Ok(())
    }

    /// The connected peer, if any.
    pub fn remote(&self) -> Option<(NodeId, u32)> {
        self.inner.remote.get()
    }

    /// Tears the QP down. Peers sending afterwards see `RetryExceeded`.
    pub fn close(&self) {
        self.inner.state.set(QpState::Closed);
        if let Some(hca) = self.inner.hca.upgrade() {
            hca.tracer.instant(
                Layer::Verbs,
                "qp_close",
                hca.node,
                Track::Qp(self.inner.qpn),
                0,
                0,
                hca.sim.now(),
            );
            hca.qps.borrow_mut().remove(&self.inner.qpn);
        }
    }

    /// Posts a receive buffer on this QP. Panics if the QP uses an SRQ
    /// (post to the SRQ instead, as verbs requires) or if the buffer was
    /// registered under a different protection domain.
    pub fn post_recv(&self, wr_id: u64, buf: MrSlice) {
        assert!(
            self.inner.srq.is_none(),
            "QP uses an SRQ; post receives there"
        );
        assert_eq!(
            buf.inner.pd_id, self.inner.pd_id,
            "receive buffer and QP belong to different protection domains"
        );
        if let Some(hca) = self.inner.hca.upgrade() {
            hca.tracer.instant(
                Layer::Verbs,
                "post_recv",
                hca.node,
                Track::Qp(self.inner.qpn),
                wr_id,
                buf.len() as u64,
                hca.sim.now(),
            );
        }
        self.inner
            .recv_queue
            .borrow_mut()
            .push_back(RecvWr { wr_id, buf });
        self.inner.match_pending();
    }

    /// Posts a send-side work request. Returns synchronously; the outcome
    /// arrives on the send CQ.
    pub fn post_send(&self, wr: SendWr) -> Result<(), VerbsError> {
        let inner = &self.inner;
        let hca = inner.hca.upgrade().ok_or(VerbsError::NotFound("HCA"))?;
        if !hca.alive.get() {
            return Err(VerbsError::InvalidState("local HCA is down"));
        }
        if inner.state.get() != QpState::Rts {
            return Err(VerbsError::InvalidState("QP not ready to send"));
        }
        // Span begin for the work request; the matching end fires when its
        // completion lands on the send CQ (`complete_send_now`).
        let (ev_name, ev_bytes) = match &wr.op {
            SendOp::Send { local, .. } => ("send", local.len() as u64),
            SendOp::SendInline { data, .. } => ("send", data.len() as u64),
            SendOp::SendGather { head, data, .. } => ("send", (head.len() + data.len()) as u64),
            SendOp::RdmaWrite { local, .. } => ("rdma_write", local.len() as u64),
            SendOp::RdmaRead { local, .. } => ("rdma_read", local.len() as u64),
        };
        let wr_id = wr.wr_id;
        let res = match inner.qp_type {
            QpType::Rc => self.post_send_rc(&hca, wr),
            QpType::Ud => self.post_send_ud(&hca, wr),
        };
        if res.is_ok() {
            hca.tracer.begin(
                Layer::Verbs,
                ev_name,
                hca.node,
                Track::Qp(inner.qpn),
                wr_id,
                ev_bytes,
                hca.sim.now(),
            );
        }
        res
    }

    fn post_send_rc(&self, hca: &Rc<HcaInner>, wr: SendWr) -> Result<(), VerbsError> {
        let (dst, dqpn) = self
            .inner
            .remote
            .get()
            .ok_or(VerbsError::InvalidState("RC QP has no peer"))?;
        // Local buffers must come from this QP's protection domain.
        let local_pd = match &wr.op {
            SendOp::Send { local, .. }
            | SendOp::RdmaWrite { local, .. }
            | SendOp::RdmaRead { local, .. } => Some(local.inner.pd_id),
            SendOp::SendInline { .. } | SendOp::SendGather { .. } => None,
        };
        if let Some(pd) = local_pd {
            if pd != self.inner.pd_id {
                return Err(VerbsError::AccessViolation(
                    "MR and QP belong to different protection domains",
                ));
            }
        }
        let sim = hca.sim.clone();
        let start = sim.now() + hca.profile.post_overhead;
        let t_hca = hca.hw.hca.occupy_from(start, hca.profile.hca_msg);
        let src = hca.node;
        let this = self.inner.clone();
        let fabric = hca.fabric.clone();
        let prop = hca.net_propagation();

        match wr.op {
            SendOp::Send { local, imm } => {
                let payload = local.dma_read();
                self.launch_two_sided(hca, wr.wr_id, payload, imm, t_hca, src, dst, dqpn)
            }
            SendOp::SendInline { data, imm } => {
                self.launch_two_sided(hca, wr.wr_id, data, imm, t_hca, src, dst, dqpn)
            }
            SendOp::SendGather {
                mut head,
                data,
                imm,
            } => {
                // The gather happens at the DMA engine; on the wire the
                // two entries are one contiguous message.
                head.extend_from_slice(&data);
                self.launch_two_sided(hca, wr.wr_id, head, imm, t_hca, src, dst, dqpn)
            }
            SendOp::RdmaWrite { local, remote, imm } => {
                if remote.node != dst {
                    return Err(VerbsError::AccessViolation(
                        "RDMA target is not the connected peer",
                    ));
                }
                let payload = local.dma_read();
                if payload.len() as u64 > remote.len {
                    return Err(VerbsError::AccessViolation("write exceeds remote window"));
                }
                let wire = payload.len() as u64 + WIRE_HEADER_BYTES;
                let wr_id = wr.wr_id;
                let net = hca.net.clone();
                net.transmit(&sim, src, dst, wire, t_hca, move || {
                    let sim2 = match fabric.upgrade() {
                        Some(f) => f.cluster.sim().clone(),
                        None => return,
                    };
                    let target = fabric.upgrade().and_then(|f| f.live_hca(dst));
                    match target {
                        Some(thca) => {
                            let t = thca
                                .hw
                                .hca
                                .occupy_from(sim2.now(), thca.profile.rdma_target);
                            let this2 = this.clone();
                            sim2.clone().schedule_at(t, move || {
                                let status = match resolve_remote(
                                    &thca,
                                    &remote,
                                    Access::REMOTE_WRITE,
                                    payload.len() as u64,
                                ) {
                                    Ok((mr, off)) => {
                                        mr.buf.borrow_mut()[off..off + payload.len()]
                                            .copy_from_slice(&payload);
                                        if let Some(word) = imm {
                                            // WRITE_WITH_IMM consumes a receive.
                                            if let Some(rqp) = thca.qps.borrow().get(&dqpn).cloned()
                                            {
                                                let sqpn = this2.qpn;
                                                rqp.rx_inbound(Inbound {
                                                    payload: Vec::new(),
                                                    imm: Some(word),
                                                    opcode: WcOpcode::RecvRdmaImm,
                                                    src: Some((src, sqpn)),
                                                });
                                            }
                                        }
                                        WcStatus::Success
                                    }
                                    Err(_) => WcStatus::RemoteAccessError,
                                };
                                // Ack back to the requester.
                                let bytes = payload.len() as u32;
                                this2.complete_send_after(
                                    prop,
                                    wr_id,
                                    WcOpcode::RdmaWrite,
                                    status,
                                    bytes,
                                );
                            });
                        }
                        None => this.complete_send_after(
                            RETRY_EXCEEDED_DELAY,
                            wr_id,
                            WcOpcode::RdmaWrite,
                            WcStatus::RetryExceeded,
                            0,
                        ),
                    }
                });
                Ok(())
            }
            SendOp::RdmaRead { local, remote } => {
                if remote.node != dst {
                    return Err(VerbsError::AccessViolation(
                        "RDMA target is not the connected peer",
                    ));
                }
                let want = local.len() as u64;
                if want > remote.len {
                    return Err(VerbsError::AccessViolation("read exceeds remote window"));
                }
                let wr_id = wr.wr_id;
                let net = hca.net.clone();
                let hca_rc = hca.clone();
                // Request packet to the target.
                net.transmit(&sim, src, dst, WIRE_HEADER_BYTES, t_hca, move || {
                    let fabric2 = fabric.clone();
                    let sim2 = match fabric.upgrade() {
                        Some(f) => f.cluster.sim().clone(),
                        None => return,
                    };
                    let target = fabric2.upgrade().and_then(|f| f.live_hca(dst));
                    match target {
                        Some(thca) => {
                            let t = thca
                                .hw
                                .hca
                                .occupy_from(sim2.now(), thca.profile.rdma_target);
                            let this2 = this.clone();
                            let net2 = thca.net.clone();
                            let sim3 = sim2.clone();
                            sim2.schedule_at(t, move || {
                                match resolve_remote(&thca, &remote, Access::REMOTE_READ, want) {
                                    Ok((mr, off)) => {
                                        let data =
                                            mr.buf.borrow()[off..off + want as usize].to_vec();
                                        // Data response back to the requester.
                                        let wire = want + WIRE_HEADER_BYTES;
                                        let this3 = this2.clone();
                                        let hca3 = hca_rc.clone();
                                        net2.transmit(
                                            &sim3,
                                            dst,
                                            src,
                                            wire,
                                            sim3.now(),
                                            move || {
                                                let simr = hca3.sim.clone();
                                                let t = hca3
                                                    .hw
                                                    .hca
                                                    .occupy_from(simr.now(), hca3.profile.hca_msg);
                                                let this4 = this3.clone();
                                                simr.schedule_at(t, move || {
                                                    let status = match local.dma_write(&data) {
                                                        Ok(()) => WcStatus::Success,
                                                        Err(_) => WcStatus::LocalLengthError,
                                                    };
                                                    this4.complete_send_now(
                                                        wr_id,
                                                        WcOpcode::RdmaRead,
                                                        status,
                                                        data.len() as u32,
                                                    );
                                                });
                                            },
                                        );
                                    }
                                    Err(_) => {
                                        // NAK travels back; requester errors out.
                                        this2.complete_send_after(
                                            thca.net_propagation(),
                                            wr_id,
                                            WcOpcode::RdmaRead,
                                            WcStatus::RemoteAccessError,
                                            0,
                                        );
                                    }
                                }
                            });
                        }
                        None => this.complete_send_after(
                            RETRY_EXCEEDED_DELAY,
                            wr_id,
                            WcOpcode::RdmaRead,
                            WcStatus::RetryExceeded,
                            0,
                        ),
                    }
                });
                Ok(())
            }
        }
    }

    /// Common two-sided launch for Send / SendInline.
    #[allow(clippy::too_many_arguments)]
    fn launch_two_sided(
        &self,
        hca: &Rc<HcaInner>,
        wr_id: u64,
        payload: Vec<u8>,
        imm: Option<u32>,
        t_hca: SimTime,
        src: NodeId,
        dst: NodeId,
        dqpn: u32,
    ) -> Result<(), VerbsError> {
        let sim = hca.sim.clone();
        let fabric = hca.fabric.clone();
        let this = self.inner.clone();
        let prop = hca.net_propagation();
        let wire = payload.len() as u64 + WIRE_HEADER_BYTES;
        hca.net
            .clone()
            .transmit(&sim, src, dst, wire, t_hca, move || {
                let sim2 = match fabric.upgrade() {
                    Some(f) => f.cluster.sim().clone(),
                    None => return,
                };
                let target = fabric.upgrade().and_then(|f| f.live_hca(dst));
                let rqp = target
                    .as_ref()
                    .and_then(|t| t.qps.borrow().get(&dqpn).cloned());
                match (target, rqp) {
                    (Some(thca), Some(rqp)) if rqp.state.get() != QpState::Closed => {
                        let t = thca.hw.hca.occupy_from(sim2.now(), thca.profile.hca_msg);
                        let bytes = payload.len() as u32;
                        let this2 = this.clone();
                        sim2.schedule_at(t, move || {
                            let sqpn = this2.qpn;
                            rqp.rx_inbound(Inbound {
                                payload,
                                imm,
                                opcode: WcOpcode::Recv,
                                src: Some((src, sqpn)),
                            });
                            // RC ack: local send completion one propagation later.
                            this2.complete_send_after(
                                prop,
                                wr_id,
                                WcOpcode::Send,
                                WcStatus::Success,
                                bytes,
                            );
                        });
                    }
                    _ => this.complete_send_after(
                        RETRY_EXCEEDED_DELAY,
                        wr_id,
                        WcOpcode::Send,
                        WcStatus::RetryExceeded,
                        0,
                    ),
                }
            });
        Ok(())
    }

    fn post_send_ud(&self, hca: &Rc<HcaInner>, wr: SendWr) -> Result<(), VerbsError> {
        let (dst, dqpn) = wr
            .ud_dest
            .ok_or(VerbsError::InvalidState("UD send needs ud_dest"))?;
        let data = match wr.op {
            SendOp::Send { local, imm } => (local.dma_read(), imm),
            SendOp::SendInline { data, imm } => (data, imm),
            SendOp::SendGather {
                mut head,
                data,
                imm,
            } => {
                head.extend_from_slice(&data);
                (head, imm)
            }
            _ => return Err(VerbsError::InvalidState("UD supports only SEND")),
        };
        let (payload, imm) = data;
        if payload.len() as u64 > hca.net.mtu() as u64 {
            return Err(VerbsError::AccessViolation("UD payload exceeds path MTU"));
        }
        let sim = hca.sim.clone();
        let start = sim.now() + hca.profile.post_overhead;
        let t_hca = hca.hw.hca.occupy_from(start, hca.profile.hca_msg);
        let src = hca.node;
        let sender_qpn = self.inner.qpn;
        let fabric = hca.fabric.clone();
        let wire = payload.len() as u64 + WIRE_HEADER_BYTES + UD_GRH_BYTES;
        let bytes = payload.len() as u32;
        if dst == src {
            return Err(VerbsError::InvalidState("UD loopback not modeled"));
        }
        hca.net
            .clone()
            .transmit(&sim, src, dst, wire, t_hca, move || {
                // Unreliable: deliver if possible, else drop on the floor.
                if let Some(f) = fabric.upgrade() {
                    if let Some(thca) = f.live_hca(dst) {
                        let sim2 = f.cluster.sim().clone();
                        let t = thca.hw.hca.occupy_from(sim2.now(), thca.profile.hca_msg);
                        if let Some(rqp) = thca.qps.borrow().get(&dqpn).cloned() {
                            if rqp.qp_type == QpType::Ud {
                                sim2.schedule_at(t, move || {
                                    // UD with no posted receive drops the datagram.
                                    if rqp.has_recv_available() {
                                        rqp.rx_inbound(Inbound {
                                            payload,
                                            imm,
                                            opcode: WcOpcode::Recv,
                                            src: Some((src, sender_qpn)),
                                        });
                                    }
                                });
                            }
                        }
                    }
                }
            });
        // UD send completes locally as soon as the HCA has it.
        self.inner
            .complete_send_at(t_hca, wr.wr_id, WcOpcode::Send, WcStatus::Success, bytes);
        Ok(())
    }
}

impl QpInner {
    fn has_recv_available(&self) -> bool {
        match &self.srq {
            Some(s) => s.available() > 0,
            None => !self.recv_queue.borrow().is_empty(),
        }
    }

    fn pop_recv(&self) -> Option<RecvWr> {
        match &self.srq {
            Some(s) => s.pop(),
            None => self.recv_queue.borrow_mut().pop_front(),
        }
    }

    /// Handles an inbound two-sided message (or WRITE_WITH_IMM notification).
    fn rx_inbound(self: &Rc<Self>, msg: Inbound) {
        match self.pop_recv() {
            Some(rwr) => self.complete_recv(rwr, msg),
            None => {
                // RC would RNR-NAK and retry; we park the message until a
                // receive shows up (bounded by test discipline, not modeled
                // as a resource).
                self.pending_inbound.borrow_mut().push_back(msg);
            }
        }
    }

    fn match_pending(self: &Rc<Self>) {
        loop {
            let Some(msg) = self.pending_inbound.borrow_mut().pop_front() else {
                break;
            };
            let Some(rwr) = self.pop_recv() else {
                // No receive posted after all (an SRQ sibling may have
                // drained it between the check and the pop): re-park the
                // message at the front and wait for the next post.
                self.pending_inbound.borrow_mut().push_front(msg);
                break;
            };
            self.complete_recv(rwr, msg);
        }
    }

    fn complete_recv(&self, rwr: RecvWr, msg: Inbound) {
        let (status, byte_len) = if msg.payload.len() > rwr.buf.len() {
            (WcStatus::LocalLengthError, 0)
        } else {
            match rwr.buf.dma_write(&msg.payload) {
                Ok(()) => (WcStatus::Success, msg.payload.len() as u32),
                Err(_) => (WcStatus::LocalLengthError, 0),
            }
        };
        if let Some(hca) = self.hca.upgrade() {
            hca.tracer.instant(
                Layer::Verbs,
                "recv_complete",
                hca.node,
                Track::Qp(self.qpn),
                rwr.wr_id,
                byte_len as u64,
                hca.sim.now(),
            );
        }
        self.recv_cq.push(Wc {
            wr_id: rwr.wr_id,
            opcode: msg.opcode,
            status,
            byte_len,
            imm: msg.imm,
            qp_num: self.qpn,
            src: msg.src,
        });
    }

    fn complete_send_now(&self, wr_id: u64, opcode: WcOpcode, status: WcStatus, byte_len: u32) {
        if let Some(hca) = self.hca.upgrade() {
            let name = match opcode {
                WcOpcode::RdmaWrite => "rdma_write",
                WcOpcode::RdmaRead => "rdma_read",
                _ => "send",
            };
            if status != WcStatus::Success {
                hca.tracer.instant(
                    Layer::Verbs,
                    "wc_error",
                    hca.node,
                    Track::Qp(self.qpn),
                    wr_id,
                    0,
                    hca.sim.now(),
                );
            }
            hca.tracer.end(
                Layer::Verbs,
                name,
                hca.node,
                Track::Qp(self.qpn),
                wr_id,
                byte_len as u64,
                hca.sim.now(),
            );
        }
        self.send_cq.push(Wc {
            wr_id,
            opcode,
            status,
            byte_len,
            imm: None,
            qp_num: self.qpn,
            src: None,
        });
    }

    fn complete_send_after(
        self: &Rc<Self>,
        delay: SimDuration,
        wr_id: u64,
        opcode: WcOpcode,
        status: WcStatus,
        byte_len: u32,
    ) {
        let hca = match self.hca.upgrade() {
            Some(h) => h,
            None => return,
        };
        let at = hca.sim.now() + delay;
        self.complete_send_at(at, wr_id, opcode, status, byte_len);
    }

    fn complete_send_at(
        self: &Rc<Self>,
        at: SimTime,
        wr_id: u64,
        opcode: WcOpcode,
        status: WcStatus,
        byte_len: u32,
    ) {
        let hca = match self.hca.upgrade() {
            Some(h) => h,
            None => return,
        };
        let this = self.clone();
        hca.sim.clone().schedule_at(at, move || {
            this.complete_send_now(wr_id, opcode, status, byte_len);
        });
    }
}

impl HcaInner {
    fn net_propagation(&self) -> SimDuration {
        // Ack/NAK return path: one propagation delay (acks are tiny and
        // coalesced; their serialization is negligible).
        self.net.ser_time(0) + self.prop()
    }

    fn prop(&self) -> SimDuration {
        // LinkProfile propagation is not directly reachable from Network;
        // approximate with the known profile value via a zero-byte transit.
        // Network exposes ser_time; propagation is a field of the cluster
        // profile, so fetch it from there.
        match self.fabric.upgrade() {
            Some(f) => f
                .cluster
                .profile()
                .link(f.net_kind)
                .map(|l| l.propagation)
                .unwrap_or(SimDuration::ZERO),
            None => SimDuration::ZERO,
        }
    }
}

impl std::fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuePair")
            .field("qpn", &self.inner.qpn)
            .field("type", &self.inner.qp_type)
            .field("remote", &self.inner.remote.get())
            .finish()
    }
}
