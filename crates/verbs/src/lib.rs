//! # verbs — an InfiniBand-verbs-like API over the simulated fabric
//!
//! The lowest access layer of the paper's stack (§II-A1): queue pairs,
//! completion queues, registered memory with lkeys/rkeys, two-sided
//! SEND/RECV, one-sided RDMA READ/WRITE, shared receive queues, and a
//! connection manager. The UCR runtime (`ucr` crate) is written against
//! this API exactly as it would be against OpenFabrics libibverbs; the
//! byte-stream transports (`socksim`) deliberately do *not* use it, so the
//! OS-bypass advantage appears only where the paper says it should.
//!
//! ```
//! use std::rc::Rc;
//! use simnet::{Cluster, NodeId};
//! use verbs::{Access, IbFabric, QpType, SendOp, SendWr};
//!
//! let cluster = Rc::new(Cluster::cluster_a(7, 2));
//! let sim = cluster.sim().clone();
//! let fabric = IbFabric::new(cluster);
//! let (a, b) = (fabric.open(NodeId(0)), fabric.open(NodeId(1)));
//!
//! // Wire two RC QPs together directly (tests); real users go through
//! // `listen`/`connect`.
//! let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
//! let (cqa, cqb) = (a.create_cq(), b.create_cq());
//! let qa = pda.create_qp(QpType::Rc, &cqa, &cqa, None);
//! let qb = pdb.create_qp(QpType::Rc, &cqb, &cqb, None);
//! qa.connect_to(b.node(), qb.qpn()).unwrap();
//! qb.connect_to(a.node(), qa.qpn()).unwrap();
//!
//! let mr = pdb.register(64, Access::LOCAL_WRITE);
//! qb.post_recv(1, mr.full());
//! qa.post_send(SendWr::new(2, SendOp::SendInline { data: b"ping".to_vec(), imm: None }))
//!     .unwrap();
//!
//! let wc = sim.block_on({ let cqb = cqb.clone(); async move { cqb.next().await } });
//! assert!(wc.status.is_ok());
//! assert_eq!(mr.read_at(0, 4), b"ping");
//! ```

#![warn(missing_docs)]

mod cm;
mod cq;
mod fabric;
mod mr;
mod qp;
mod types;

pub use cm::{connect, Listener, DEFAULT_CONNECT_TIMEOUT};
pub use cq::Cq;
pub use fabric::{Hca, IbFabric};
pub use mr::{Mr, MrSlice, Pd};
pub use qp::{QpType, QueuePair, SendOp, SendWr, Srq, RETRY_EXCEEDED_DELAY};
pub use types::{
    Access, RemoteMemory, VerbsError, Wc, WcOpcode, WcStatus, UD_GRH_BYTES, WIRE_HEADER_BYTES,
};
