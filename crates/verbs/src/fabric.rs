//! The InfiniBand fabric view and per-node HCA handles.
//!
//! [`IbFabric`] owns one [`Hca`] per node and the routing needed for
//! cross-node delivery (a send must find the destination node's QP table).
//! An HCA can be [`killed`](Hca::kill) to simulate a node/process failure:
//! in-flight and future messages to it complete with `RetryExceeded`, which
//! is what UCR's timeout model (paper §IV-A) turns into an endpoint error
//! rather than a whole-runtime failure.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::{Rc, Weak};

use simnet::profiles::VerbsProfile;
use simnet::sync;
use simnet::{Cluster, NetKind, Network, NodeId, Sim, Tracer};

use crate::cm::CmMessage;
use crate::cq::Cq;
use crate::mr::{MrInner, Pd};
use crate::qp::QpInner;
use crate::types::VerbsError;

pub(crate) struct IbFabricInner {
    pub cluster: Rc<Cluster>,
    pub net_kind: NetKind,
    /// The physical network, resolved once at fabric creation so `open`
    /// never has to re-derive it fallibly.
    pub net: Rc<Network>,
    /// The RDMA cost model for that network, resolved likewise.
    pub verbs: VerbsProfile,
    pub hcas: RefCell<HashMap<NodeId, Rc<HcaInner>>>,
}

/// Handle to the whole InfiniBand fabric of a cluster.
#[derive(Clone)]
pub struct IbFabric {
    pub(crate) inner: Rc<IbFabricInner>,
}

pub(crate) struct HcaInner {
    pub node: NodeId,
    pub sim: Sim,
    pub net: Rc<Network>,
    pub hw: Rc<simnet::Node>,
    pub profile: VerbsProfile,
    pub fabric: Weak<IbFabricInner>,
    pub mrs: RefCell<HashMap<u32, Weak<MrInner>>>,
    pub qps: RefCell<HashMap<u32, Rc<QpInner>>>,
    pub listeners: RefCell<HashMap<u16, sync::Sender<CmMessage>>>,
    pub pending_connects: RefCell<HashMap<u64, sync::OneSender<Result<u32, VerbsError>>>>,
    pub tracer: Rc<Tracer>,
    pub alive: Cell<bool>,
    next_key: Cell<u32>,
    next_qpn: Cell<u32>,
    next_pd: Cell<u32>,
    next_conn: Cell<u64>,
}

/// A node's host channel adapter. Holding an `Hca` keeps the whole fabric
/// view alive (routing tables are shared fabric state).
#[derive(Clone)]
pub struct Hca {
    pub(crate) inner: Rc<HcaInner>,
    _keepalive: Rc<IbFabricInner>,
}

impl IbFabric {
    /// Creates the fabric view over a cluster's native IB network. Native
    /// IB is unconditionally modeled (the verbs profile and the IB
    /// network exist in every cluster), so unlike [`new_on`](IbFabric::new_on)
    /// this cannot fail.
    pub fn new(cluster: Rc<Cluster>) -> IbFabric {
        let verbs = cluster.profile().verbs;
        let net = cluster.ib().clone();
        IbFabric {
            inner: Rc::new(IbFabricInner {
                cluster,
                net_kind: NetKind::Ib,
                net,
                verbs,
                hcas: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// Creates a verbs fabric over an arbitrary physical network — RoCE
    /// when pointed at converged Ethernet adapters (paper SVII). `None`
    /// when the cluster's adapters on that network have no RDMA engine.
    pub fn new_on(cluster: Rc<Cluster>, net: NetKind) -> Option<IbFabric> {
        let verbs = cluster.profile().verbs_for(net)?;
        let network = cluster.network(net)?.clone();
        Some(IbFabric {
            inner: Rc::new(IbFabricInner {
                cluster,
                net_kind: net,
                net: network,
                verbs,
                hcas: RefCell::new(HashMap::new()),
            }),
        })
    }

    /// Opens (or returns the already-open) HCA of `node`.
    pub fn open(&self, node: NodeId) -> Hca {
        if let Some(h) = self.inner.hcas.borrow().get(&node) {
            return Hca {
                inner: h.clone(),
                _keepalive: self.inner.clone(),
            };
        }
        let cluster = &self.inner.cluster;
        assert!(
            node.0 < cluster.len(),
            "node {node} outside cluster of {} nodes",
            cluster.len()
        );
        let inner = Rc::new(HcaInner {
            node,
            sim: cluster.sim().clone(),
            net: self.inner.net.clone(),
            hw: cluster.node(node).clone(),
            profile: self.inner.verbs,
            fabric: Rc::downgrade(&self.inner),
            mrs: RefCell::new(HashMap::new()),
            qps: RefCell::new(HashMap::new()),
            listeners: RefCell::new(HashMap::new()),
            pending_connects: RefCell::new(HashMap::new()),
            tracer: cluster.tracer().clone(),
            alive: Cell::new(true),
            next_key: Cell::new(1),
            next_qpn: Cell::new(1),
            next_pd: Cell::new(1),
            next_conn: Cell::new(1),
        });
        self.inner.hcas.borrow_mut().insert(node, inner.clone());
        Hca {
            inner,
            _keepalive: self.inner.clone(),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Rc<Cluster> {
        &self.inner.cluster
    }

    /// The physical network this fabric view runs over ([`NetKind::Ib`]
    /// native, or converged Ethernet for RoCE).
    pub fn kind(&self) -> NetKind {
        self.inner.net_kind
    }
}

impl IbFabricInner {
    /// Routing lookup: the HCA of `node`, if opened and alive.
    pub(crate) fn live_hca(&self, node: NodeId) -> Option<Rc<HcaInner>> {
        self.hcas
            .borrow()
            .get(&node)
            .filter(|h| h.alive.get())
            .cloned()
    }
}

impl HcaInner {
    pub(crate) fn next_key(&self) -> u32 {
        let k = self.next_key.get();
        self.next_key.set(k + 1);
        k
    }

    pub(crate) fn next_qpn(&self) -> u32 {
        let k = self.next_qpn.get();
        self.next_qpn.set(k + 1);
        k
    }

    pub(crate) fn next_conn(&self) -> u64 {
        let k = self.next_conn.get();
        self.next_conn.set(k + 1);
        k
    }
}

impl Hca {
    /// The node this adapter belongs to.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The simulation world.
    pub fn sim(&self) -> Sim {
        self.inner.sim.clone()
    }

    /// The verbs cost profile in force.
    pub fn profile(&self) -> VerbsProfile {
        self.inner.profile
    }

    /// Path MTU of the underlying fabric (UD datagram payload ceiling).
    pub fn net_mtu(&self) -> u32 {
        self.inner.net.mtu()
    }

    /// Allocates a protection domain.
    pub fn alloc_pd(&self) -> Pd {
        let id = self.inner.next_pd.get();
        self.inner.next_pd.set(id + 1);
        Pd {
            node: self.inner.node,
            pd_id: id,
            hca: self.inner.clone(),
        }
    }

    /// Creates a completion queue bound to this adapter.
    pub fn create_cq(&self) -> Cq {
        Cq::new(self.inner.sim.clone(), self.inner.profile.poll_overhead)
    }

    /// Simulates the node's IB stack dying (process crash, cable pull).
    /// Subsequent traffic to or from this HCA fails with `RetryExceeded`.
    pub fn kill(&self) {
        self.inner.alive.set(false);
        // Fail anyone mid-handshake immediately.
        for (_, tx) in self.inner.pending_connects.borrow_mut().drain() {
            let _ = tx.send(Err(VerbsError::ConnectionRefused));
        }
    }

    /// True while the adapter is operational.
    pub fn is_alive(&self) -> bool {
        self.inner.alive.get()
    }
}
