//! Completion queues.
//!
//! Work completions land here; consumers either poll (non-blocking, the
//! lowest-latency mode, §II-A1 of the paper) or await the next completion.
//! Awaiting charges the profile's poll overhead on the consuming task when
//! a completion is reaped, so a worker thread that dispatches N completions
//! is busy for N × poll-cost of simulated time — which is exactly how the
//! polling cost shows up in the real system's latency and throughput.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use simnet::sync::Notify;
use simnet::{Sim, SimDuration};

use crate::types::Wc;

pub(crate) struct CqInner {
    pub queue: RefCell<VecDeque<Wc>>,
    pub notify: Rc<Notify>,
}

/// A completion queue. Clone freely; clones share the queue.
#[derive(Clone)]
pub struct Cq {
    pub(crate) inner: Rc<CqInner>,
    sim: Sim,
    poll_overhead: SimDuration,
}

impl Cq {
    pub(crate) fn new(sim: Sim, poll_overhead: SimDuration) -> Cq {
        Cq {
            inner: Rc::new(CqInner {
                queue: RefCell::new(VecDeque::new()),
                notify: Rc::new(Notify::new()),
            }),
            sim,
            poll_overhead,
        }
    }

    pub(crate) fn push(&self, wc: Wc) {
        self.inner.queue.borrow_mut().push_back(wc);
        self.inner.notify.notify_all();
    }

    /// Non-blocking poll: pops one completion if present. Does not charge
    /// CPU time (callers batching polls charge it themselves).
    pub fn poll(&self) -> Option<Wc> {
        self.inner.queue.borrow_mut().pop_front()
    }

    /// Number of completions waiting.
    pub fn backlog(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    /// Awaits the next completion, charging the poll overhead once it is
    /// reaped (busy-polling model — the paper's design polls for lowest
    /// latency rather than sleeping on interrupts).
    pub async fn next(&self) -> Wc {
        loop {
            let popped = self.inner.queue.borrow_mut().pop_front();
            if let Some(wc) = popped {
                self.sim.sleep(self.poll_overhead).await;
                return wc;
            }
            let notify = self.inner.notify.clone();
            let inner = self.inner.clone();
            notify
                .wait_until(move || !inner.queue.borrow().is_empty())
                .await;
        }
    }
}
