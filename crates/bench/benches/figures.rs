//! Criterion benches: one group per paper figure.
//!
//! Criterion measures host wall-clock, so what these benches time is the
//! cost of *regenerating* each figure's data points (simulation included);
//! the figures' own numbers — simulated latency/throughput — come from the
//! `fig*` binaries. Keeping both views matters: the binaries answer "does
//! the reproduction match the paper", these benches answer "how fast is
//! the harness" and catch performance regressions in the simulator and
//! protocol stacks themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmc::Transport;
use rmc_bench::{measure_latency, measure_throughput, ClusterKind, Mix};
use simnet::Stack;

fn fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_latency_cluster_a");
    g.sample_size(10);
    for (name, transport) in [
        ("ucr", Transport::Ucr),
        ("sdp", Transport::Sockets(Stack::Sdp)),
        ("toe", Transport::Sockets(Stack::TenGigEToe)),
    ] {
        for size in [64usize, 4096] {
            g.bench_with_input(BenchmarkId::new(name, size), &size, |b, &size| {
                b.iter(|| measure_latency(ClusterKind::A, transport, Mix::GetOnly, size, 50, 3))
            });
        }
    }
    g.finish();
}

fn fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_latency_cluster_b");
    g.sample_size(10);
    for (name, transport) in [
        ("ucr", Transport::Ucr),
        ("ipoib", Transport::Sockets(Stack::Ipoib)),
    ] {
        for size in [64usize, 4096] {
            g.bench_with_input(BenchmarkId::new(name, size), &size, |b, &size| {
                b.iter(|| measure_latency(ClusterKind::B, transport, Mix::GetOnly, size, 50, 4))
            });
        }
    }
    g.finish();
}

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_mixed_workloads");
    g.sample_size(10);
    for (name, mix) in [
        ("non_interleaved", Mix::NonInterleaved),
        ("interleaved", Mix::Interleaved),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| measure_latency(ClusterKind::A, Transport::Ucr, mix, 1024, 50, 5))
        });
    }
    g.finish();
}

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_throughput");
    g.sample_size(10);
    for (name, transport) in [
        ("ucr", Transport::Ucr),
        ("sdp", Transport::Sockets(Stack::Sdp)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| measure_throughput(ClusterKind::B, transport, 8, 4, 300, 6))
        });
    }
    g.finish();
}

criterion_group!(figures, fig3, fig4, fig5, fig6);
criterion_main!(figures);
