//! Criterion benches for the storage engine itself — real wall-clock
//! data-structure performance, independent of the network simulation.
//! Includes the slab growth-factor ablation called out in DESIGN.md §6
//! and a multi-threaded sharded-store bench driven by real threads.

use std::time::Instant; // lint:allow(R1) criterion harness: measures real host time, not virtual time

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcstore::{SetOutcome, ShardedStore, SlabConfig, Store, StoreConfig};

fn bench_set_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_ops");
    g.throughput(Throughput::Elements(1));
    g.bench_function("set_1k", |b| {
        let mut s = Store::with_defaults();
        let value = vec![7u8; 1024];
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key-{}", i % 100_000);
            i += 1;
            assert_eq!(s.set(key.as_bytes(), &value, 0, 0, 1), SetOutcome::Stored);
        });
    });
    g.bench_function("get_hit_1k", |b| {
        let mut s = Store::with_defaults();
        let value = vec![7u8; 1024];
        for i in 0..10_000u64 {
            s.set(format!("key-{i}").as_bytes(), &value, 0, 0, 1);
        }
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key-{}", i % 10_000);
            i += 1;
            assert!(s.get(key.as_bytes(), 1).is_some());
        });
    });
    g.bench_function("get_miss", |b| {
        let mut s = Store::with_defaults();
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("absent-{i}");
            i += 1;
            assert!(s.get(key.as_bytes(), 1).is_none());
        });
    });
    g.finish();
}

/// DESIGN.md §6 ablation: memcached's 1.25 growth factor vs alternatives.
/// A smaller factor wastes less memory per item (more classes, tighter
/// fit) but touches more distinct classes; a larger factor does the
/// opposite. Throughput of a mixed-size fill measures the net effect.
fn bench_growth_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("slab_growth_factor");
    g.sample_size(10);
    for factor in [1.1f64, 1.25, 1.5, 2.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(factor),
            &factor,
            |b, &factor| {
                b.iter(|| {
                    let mut s = Store::new(StoreConfig {
                        slab: SlabConfig {
                            mem_limit: 32 << 20,
                            growth_factor: factor,
                            ..SlabConfig::default()
                        },
                        ..StoreConfig::default()
                    });
                    // Mixed sizes spanning many classes.
                    for i in 0..20_000u64 {
                        let size = 64 + (i * 37) % 4000;
                        let key = format!("k{i}");
                        s.set(key.as_bytes(), &vec![1u8; size as usize], 0, 0, 1);
                    }
                    s.curr_items()
                });
            },
        );
    }
    g.finish();
}

fn bench_sharded_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_store_parallel");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let s = ShardedStore::new(StoreConfig::default(), 16);
                    let per_thread = (iters as usize).max(1000);
                    let start = Instant::now(); // lint:allow(R1) wall-clock is the measurand here
                    crossbeam::scope(|scope| {
                        for t in 0..threads {
                            let s = &s;
                            scope.spawn(move |_| {
                                let value = vec![5u8; 256];
                                for i in 0..per_thread {
                                    let key = format!("t{t}-{}", i % 5_000);
                                    if i % 10 == 0 {
                                        s.set(key.as_bytes(), &value, 0, 0, 1);
                                    } else {
                                        let _ = s.get(key.as_bytes(), 1);
                                    }
                                }
                            });
                        }
                    })
                    .unwrap();
                    start.elapsed()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    store,
    bench_set_get,
    bench_growth_factor,
    bench_sharded_parallel
);
criterion_main!(store);
