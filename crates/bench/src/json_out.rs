//! Machine-readable benchmark output.
//!
//! Every bench bin prints a human-readable table to stdout (captured into
//! `results/<bin>.txt` by the harness) and, through this module, writes a
//! structured JSON twin to `results/<bin>.json` so plots and regression
//! checks never have to re-parse the tables. The serializer is hand-rolled
//! — the workspace is offline and carries no serde.
//!
//! Shape:
//!
//! ```json
//! {
//!   "bench": "fig3_latency_a",
//!   "records": [
//!     {"op": "set", "transport": "UCR IB", "cluster": "Cluster A (DDR)",
//!      "size": 4096, "mean_us": 11.9},
//!     ...
//!   ]
//! }
//! ```
//!
//! Records are flat string/number maps; each bin picks the fields that
//! describe its sweep (op, transport, cluster, message size, mean/p50/p99
//! latency, throughput, ...).

use std::io::Write as _;
use std::path::PathBuf;

/// One field value: a string or a finite number.
#[derive(Clone, Debug)]
enum Field {
    Str(String),
    Num(f64),
    Int(u64),
}

/// One flat record of a benchmark result file.
#[derive(Clone, Debug, Default)]
pub struct Record {
    fields: Vec<(String, Field)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Record {
        Record::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: impl Into<String>) -> Record {
        self.fields
            .push((key.to_string(), Field::Str(value.into())));
        self
    }

    /// Adds a float field. Non-finite values serialize as `null`.
    pub fn num(mut self, key: &str, value: f64) -> Record {
        self.fields.push((key.to_string(), Field::Num(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Record {
        self.fields.push((key.to_string(), Field::Int(value)));
        self
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the result document (also used by tests; [`write`] puts this
/// on disk).
pub fn render(bench: &str, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": ");
    escape(bench, &mut out);
    out.push_str(",\n  \"records\": [\n");
    for (i, rec) in records.iter().enumerate() {
        out.push_str("    {");
        for (j, (k, v)) in rec.fields.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            escape(k, &mut out);
            out.push_str(": ");
            match v {
                Field::Str(s) => escape(s, &mut out),
                Field::Num(n) if n.is_finite() => out.push_str(&format!("{n}")),
                Field::Num(_) => out.push_str("null"),
                Field::Int(n) => out.push_str(&format!("{n}")),
            }
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `results/<bench>.json` (relative to the working directory,
/// creating `results/` if needed) and reports where it landed on stderr,
/// keeping stdout clean for the human-readable tables. IO failures are
/// reported, not fatal — a read-only checkout still runs the bench.
pub fn write(bench: &str, records: &[Record]) {
    let dir = PathBuf::from("results");
    let path = dir.join(format!("{bench}.json"));
    let doc = render(bench, records);
    let res = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::File::create(&path))
        .and_then(|mut f| f.write_all(doc.as_bytes()));
    match res {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_parseable_json() {
        let recs = vec![
            Record::new()
                .str("op", "get")
                .str("transport", "UCR IB")
                .int("size", 4096)
                .num("mean_us", 11.875),
            Record::new().str("op", "set").num("bad", f64::NAN),
        ];
        let doc = render("fig3_latency_a", &recs);
        let parsed = simnet::trace_export::parse_json(&doc).expect("valid JSON");
        assert_eq!(
            parsed.get("bench").and_then(|b| b.as_str()),
            Some("fig3_latency_a")
        );
        let records = parsed
            .get("records")
            .and_then(|r| r.as_arr())
            .expect("records array");
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].get("mean_us").and_then(|v| v.as_f64()),
            Some(11.875)
        );
        assert_eq!(
            records[0].get("size").and_then(|v| v.as_f64()),
            Some(4096.0)
        );
        // Non-finite numbers degrade to null, keeping the file parseable.
        assert!(records[1].get("bad").is_some());
        assert!(records[1].get("bad").and_then(|v| v.as_f64()).is_none());
    }

    #[test]
    fn escapes_strings() {
        let recs = vec![Record::new().str("name", "a\"b\\c\nd")];
        let doc = render("x", &recs);
        let parsed = simnet::trace_export::parse_json(&doc).expect("valid JSON");
        let rec = &parsed.get("records").and_then(|r| r.as_arr()).unwrap()[0];
        assert_eq!(rec.get("name").and_then(|v| v.as_str()), Some("a\"b\\c\nd"));
    }
}
