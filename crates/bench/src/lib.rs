//! # rmc-bench — the evaluation harness (paper §VI)
//!
//! Regenerates every figure of the paper's evaluation:
//!
//! | Target | Paper figure | What it sweeps |
//! |---|---|---|
//! | `fig3_latency_a` | Fig. 3(a–d) | set/get latency vs size, Cluster A, 5 transports |
//! | `fig4_latency_b` | Fig. 4(a–d) | set/get latency vs size, Cluster B, 3 transports |
//! | `fig5_mixed`     | Fig. 5(a–d) | non-interleaved (10% set/90% get) and interleaved (50/50) small-message latency, both clusters |
//! | `fig6_throughput`| Fig. 6(a–d) | aggregate get TPS, 8/16 clients, 4 B and 4 KB, both clusters |
//! | `ablation_*`     | — | design-choice studies beyond the paper |
//!
//! The benchmarks follow the paper's methodology (§VI): they drive the
//! standard client API (as the authors' suite drives libmemcached, not raw
//! sockets), set `TCP_NODELAY`, use one warm-up pass, and report averages
//! over repeated operations. Latency and throughput are **simulated time**
//! — the quantity the paper measures — not host wall-clock.

use std::rc::Rc;

pub mod json_out;

use rmc::{McClient, McClientConfig, McError, McServer, McServerConfig, Transport, World};
use simnet::metrics::{Histogram, LatencySpans, Stage, STAGE_COUNT};
use simnet::{NodeId, SimDuration, Stack};

/// Which testbed to instantiate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClusterKind {
    /// Clovertown + ConnectX DDR + 10GigE-TOE + 1GigE.
    A,
    /// Westmere + ConnectX QDR.
    B,
}

impl ClusterKind {
    /// Builds the world with `nodes` nodes.
    pub fn world(self, seed: u64, nodes: u32) -> World {
        match self {
            ClusterKind::A => World::cluster_a(seed, nodes),
            ClusterKind::B => World::cluster_b(seed, nodes),
        }
    }

    /// The transports the paper evaluates on this cluster, in plot order.
    pub fn transports(self) -> Vec<Transport> {
        match self {
            ClusterKind::A => vec![
                Transport::Ucr,
                Transport::Sockets(Stack::Sdp),
                Transport::Sockets(Stack::Ipoib),
                Transport::Sockets(Stack::TenGigEToe),
                Transport::Sockets(Stack::OneGigE),
            ],
            ClusterKind::B => vec![
                Transport::Ucr,
                Transport::Sockets(Stack::Sdp),
                Transport::Sockets(Stack::Ipoib),
            ],
        }
    }

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            ClusterKind::A => "Cluster A (DDR)",
            ClusterKind::B => "Cluster B (QDR)",
        }
    }
}

/// Instruction mixes of §VI-B and §VI-C.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mix {
    /// 100% set.
    SetOnly,
    /// 100% get.
    GetOnly,
    /// 10% set / 90% get as 1 set followed by 9 gets (non-interleaved).
    NonInterleaved,
    /// 50% set / 50% get alternating (interleaved).
    Interleaved,
}

impl Mix {
    /// Plot title fragment.
    pub fn label(self) -> &'static str {
        match self {
            Mix::SetOnly => "Set",
            Mix::GetOnly => "Get",
            Mix::NonInterleaved => "Non-Interleaved (Set 10% Get 90%)",
            Mix::Interleaved => "Interleaved (Set 50% Get 50%)",
        }
    }
}

/// The paper's small-message sweep (Figs. 3/4 a,c and Fig. 5).
pub const SMALL_SIZES: &[usize] = &[1, 4, 16, 64, 256, 1024, 2048, 4096];

/// The paper's large-message sweep (Figs. 3/4 b,d).
pub const LARGE_SIZES: &[usize] = &[8 << 10, 32 << 10, 128 << 10, 512 << 10];

/// A measured latency point.
#[derive(Clone, Copy, Debug)]
pub struct LatencyPoint {
    /// Value size in bytes.
    pub size: usize,
    /// Mean operation latency in microseconds (simulated).
    pub mean_us: f64,
}

/// A measured throughput point.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputPoint {
    /// Number of concurrent clients.
    pub clients: u32,
    /// Aggregate transactions per second (simulated).
    pub tps: f64,
}

/// Single-client average latency for `mix` at one value size
/// (§VI-B/§VI-C methodology: repeat the operation `iters` times after one
/// warm-up pass, report the mean).
pub fn measure_latency(
    cluster: ClusterKind,
    transport: Transport,
    mix: Mix,
    size: usize,
    iters: u32,
    seed: u64,
) -> f64 {
    run_latency(cluster, transport, mix, size, iters, seed, None)
}

/// The shared latency loop behind [`measure_latency`] and
/// [`measure_latency_attributed`]. When `spans` is given it is attached
/// to both ends *after* the warm-up pass, so the recorded breakdown
/// covers exactly the timed operations; spans add no virtual time, so
/// the measured mean is identical either way.
fn run_latency(
    cluster: ClusterKind,
    transport: Transport,
    mix: Mix,
    size: usize,
    iters: u32,
    seed: u64,
    spans: Option<Rc<LatencySpans>>,
) -> f64 {
    let world = cluster.world(seed, 4);
    let server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(transport, NodeId(0)),
    );
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        let value = vec![0x5au8; size];
        let key = b"bench-key";
        // Warm up: establish the connection and populate the item.
        client.set(key, &value, 0, 0).await.expect("warm-up set");
        client.get(key).await.expect("warm-up get");
        if let Some(sp) = spans {
            client.attach_spans(Some(sp.clone()));
            server.attach_spans(Some(sp));
        }

        let t0 = sim2.now();
        let mut ops = 0u32;
        while ops < iters {
            match mix {
                Mix::SetOnly => {
                    client.set(key, &value, 0, 0).await.expect("set");
                    ops += 1;
                }
                Mix::GetOnly => {
                    let v = client.get(key).await.expect("get").expect("hit");
                    debug_assert_eq!(v.data.len(), size);
                    ops += 1;
                }
                Mix::NonInterleaved => {
                    // 1 set followed by 9 gets (§VI-C).
                    client.set(key, &value, 0, 0).await.expect("set");
                    ops += 1;
                    for _ in 0..9 {
                        if ops >= iters {
                            break;
                        }
                        client.get(key).await.expect("get");
                        ops += 1;
                    }
                }
                Mix::Interleaved => {
                    client.set(key, &value, 0, 0).await.expect("set");
                    client.get(key).await.expect("get");
                    ops += 2;
                }
            }
        }
        let elapsed = sim2.now() - t0;
        elapsed.as_micros_f64() / ops as f64
    })
}

/// Per-stage latency attribution of one measurement run (the paper's
/// §VI-D decomposition, produced by [`measure_latency_attributed`]).
#[derive(Clone, Debug)]
pub struct AttributedLatency {
    /// End-to-end mean latency, microseconds — computed exactly as
    /// [`measure_latency`] computes it (elapsed / ops).
    pub mean_us: f64,
    /// Mean time in each pipeline stage, microseconds, in
    /// [`Stage::ALL`] order.
    pub stage_means_us: [f64; STAGE_COUNT],
    /// Sum of the stage means — equals the end-to-end mean recorded by
    /// the spans (the attribution invariant).
    pub attributed_mean_us: f64,
    /// Operations with a complete recorded span.
    pub ops_attributed: u64,
}

impl AttributedLatency {
    /// Mean time in `stage`, microseconds.
    pub fn stage_us(&self, stage: Stage) -> f64 {
        self.stage_means_us[stage as usize]
    }

    /// Renders the breakdown as an aligned table.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title}\n");
        for stage in Stage::ALL {
            out.push_str(&format!(
                "{:>18} {:>9.3} us\n",
                stage.label(),
                self.stage_us(stage)
            ));
        }
        out.push_str(&format!("{:>18} {:>9.3} us\n", "end_to_end", self.mean_us));
        out
    }
}

/// Like [`measure_latency`], but also records where each operation's time
/// went: the span sink is attached to both client and server after warm-up
/// and every timed operation's stage breakdown is recorded. The returned
/// breakdown sums to the measured end-to-end mean (within integer-ns
/// rounding) — the cross-layer invariant `tests/attribution.rs` checks.
pub fn measure_latency_attributed(
    cluster: ClusterKind,
    transport: Transport,
    mix: Mix,
    size: usize,
    iters: u32,
    seed: u64,
) -> AttributedLatency {
    let spans = LatencySpans::new();
    let mean_us = run_latency(
        cluster,
        transport,
        mix,
        size,
        iters,
        seed,
        Some(spans.clone()),
    );
    AttributedLatency {
        mean_us,
        stage_means_us: spans.stage_means_us(),
        attributed_mean_us: spans.sum_of_stage_means_us(),
        ops_attributed: spans.completed(),
    }
}

/// Latency sweep over a size list.
pub fn latency_sweep(
    cluster: ClusterKind,
    transport: Transport,
    mix: Mix,
    sizes: &[usize],
    iters: u32,
    seed: u64,
) -> Vec<LatencyPoint> {
    sizes
        .iter()
        .map(|&size| LatencyPoint {
            size,
            mean_us: measure_latency(cluster, transport, mix, size, iters, seed),
        })
        .collect()
}

/// Aggregate get throughput with `clients` concurrent clients on distinct
/// nodes, all started simultaneously (§VI-D methodology). Returns
/// transactions per second across all clients.
pub fn measure_throughput(
    cluster: ClusterKind,
    transport: Transport,
    clients: u32,
    value_size: usize,
    ops_per_client: u32,
    seed: u64,
) -> f64 {
    let world = cluster.world(seed, clients + 1);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let sim = world.sim().clone();

    // Populate one key per client, then run the closed loops together.
    let mut handles = Vec::new();
    let mut ready = Vec::new();
    for c in 0..clients {
        let client = McClient::new(
            &world,
            NodeId(1 + c),
            McClientConfig::single(transport, NodeId(0)),
        );
        let (ready_tx, ready_rx) = simnet::sync::oneshot::<()>();
        ready.push(ready_rx);
        let (go_tx, go_rx) = simnet::sync::oneshot::<()>();
        handles.push((
            go_tx,
            sim.spawn(async move {
                let key = format!("client-{c}");
                let value = vec![1u8; value_size];
                client
                    .set(key.as_bytes(), &value, 0, 0)
                    .await
                    .expect("populate");
                let _ = ready_tx.send(());
                let _ = go_rx.await;
                for _ in 0..ops_per_client {
                    client.get(key.as_bytes()).await.expect("get").expect("hit");
                }
            }),
        ));
    }
    sim.clone().block_on(async move {
        for r in ready {
            let _ = r.await;
        }
        let t0 = sim.now();
        let mut joins = Vec::new();
        for (go, h) in handles {
            let _ = go.send(());
            joins.push(h);
        }
        for j in joins {
            j.await;
        }
        let elapsed = (sim.now() - t0).as_secs_f64();
        (clients as u64 * ops_per_client as u64) as f64 / elapsed
    })
}

/// Convenience: run a full Fig.6-style sweep.
pub fn throughput_sweep(
    cluster: ClusterKind,
    transport: Transport,
    client_counts: &[u32],
    value_size: usize,
    ops_per_client: u32,
    seed: u64,
) -> Vec<ThroughputPoint> {
    client_counts
        .iter()
        .map(|&clients| ThroughputPoint {
            clients,
            tps: measure_throughput(
                cluster,
                transport,
                clients,
                value_size,
                ops_per_client,
                seed,
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------
// memslap-style workload generator (the paper's benchmarks are "inspired
// by the popular memslap benchmark", §VI)
// ---------------------------------------------------------------------

/// Parameters of a memslap-like workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Number of distinct keys.
    pub key_space: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Fraction of sets in `[0, 1]` (rest are gets).
    pub set_fraction: f64,
    /// Zipf skew of key popularity (0 = uniform).
    pub zipf_skew: f64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            key_space: 10_000,
            value_size: 1024,
            set_fraction: 0.1,
            zipf_skew: 0.99,
        }
    }
}

/// Result of a workload run.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadResult {
    /// Operations completed.
    pub ops: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Hit rate of gets in `[0, 1]`.
    pub hit_rate: f64,
}

/// Runs a memslap-like mixed workload from one client and reports
/// latency + hit rate.
pub fn run_workload(
    cluster: ClusterKind,
    transport: Transport,
    wl: &Workload,
    ops: u32,
    seed: u64,
) -> WorkloadResult {
    let world = cluster.world(seed, 4);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(transport, NodeId(0)),
    );
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    let wl = wl.clone();
    sim.block_on(async move {
        let value = vec![7u8; wl.value_size];
        let mut hits = 0u64;
        let mut gets = 0u64;
        let t0 = sim2.now();
        for _ in 0..ops {
            let (do_set, key_idx) = sim2.with_rng(|r| {
                (
                    r.gen_bool(wl.set_fraction),
                    r.gen_zipf(wl.key_space, wl.zipf_skew),
                )
            });
            let key = format!("wl-{key_idx}");
            if do_set {
                match client.set(key.as_bytes(), &value, 0, 0).await {
                    Ok(()) | Err(McError::OutOfMemory) => {}
                    Err(e) => panic!("set failed: {e}"),
                }
            } else {
                gets += 1;
                if client.get(key.as_bytes()).await.expect("get").is_some() {
                    hits += 1;
                }
            }
        }
        let elapsed = sim2.now() - t0;
        WorkloadResult {
            ops: ops as u64,
            mean_us: elapsed.as_micros_f64() / ops as f64,
            hit_rate: if gets == 0 {
                0.0
            } else {
                hits as f64 / gets as f64
            },
        }
    })
}

// ---------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------

/// Renders a latency table: rows = sizes, columns = transports.
pub fn render_latency_table(
    title: &str,
    sizes: &[usize],
    columns: &[(String, Vec<LatencyPoint>)],
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>10}", "size"));
    for (name, _) in columns {
        out.push_str(&format!("{name:>12}"));
    }
    out.push('\n');
    for (i, &size) in sizes.iter().enumerate() {
        out.push_str(&format!("{:>10}", fmt_size(size)));
        for (_, points) in columns {
            out.push_str(&format!("{:>12.1}", points[i].mean_us));
        }
        out.push('\n');
    }
    out
}

/// Renders a throughput table: rows = client counts, columns = transports,
/// values in thousands of TPS (the paper's unit).
pub fn render_tps_table(
    title: &str,
    client_counts: &[u32],
    columns: &[(String, Vec<ThroughputPoint>)],
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>10}", "clients"));
    for (name, _) in columns {
        out.push_str(&format!("{name:>12}"));
    }
    out.push('\n');
    for (i, &n) in client_counts.iter().enumerate() {
        out.push_str(&format!("{n:>10}"));
        for (_, points) in columns {
            out.push_str(&format!("{:>11.1}K", points[i].tps / 1_000.0));
        }
        out.push('\n');
    }
    out
}

/// Formats a byte size the way the paper's axes do (1K, 32K, ...).
pub fn fmt_size(size: usize) -> String {
    if size >= 1024 && size.is_multiple_of(1024) {
        format!("{}K", size / 1024)
    } else {
        format!("{size}")
    }
}

/// Default iteration count for latency points (tuned so a full figure
/// regenerates in seconds of wall time while averaging enough samples).
pub const DEFAULT_ITERS: u32 = 200;

/// Default per-client ops for throughput points.
pub const DEFAULT_TPUT_OPS: u32 = 1_500;

/// Default op timeout used by bench clients.
pub const BENCH_TIMEOUT: SimDuration = SimDuration::from_millis(500);

// ---------------------------------------------------------------------
// Latency distributions (percentiles)
// ---------------------------------------------------------------------

/// Percentile summary of a latency sample.
#[derive(Clone, Copy, Debug)]
pub struct LatencyDistribution {
    /// Minimum, microseconds.
    pub min_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Maximum.
    pub max_us: f64,
    /// Mean.
    pub mean_us: f64,
}

impl LatencyDistribution {
    /// Summarizes a sample of per-operation latencies (µs).
    pub fn from_samples(mut samples: Vec<f64>) -> LatencyDistribution {
        assert!(!samples.is_empty(), "empty latency sample");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        LatencyDistribution {
            min_us: samples[0],
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: *samples.last().expect("nonempty"),
            mean_us: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }

    /// Summarizes a [`simnet::metrics::Histogram`] of per-operation
    /// latencies (same nearest-rank quantiles, converted to µs).
    pub fn from_histogram(h: &Histogram) -> LatencyDistribution {
        let s = h.summary();
        assert!(s.count > 0, "empty latency histogram");
        LatencyDistribution {
            min_us: s.min.as_micros_f64(),
            p50_us: s.p50.as_micros_f64(),
            p95_us: s.p95.as_micros_f64(),
            p99_us: s.p99.as_micros_f64(),
            max_us: s.max.as_micros_f64(),
            mean_us: s.mean.as_micros_f64(),
        }
    }
}

/// Per-operation get latencies for one transport (the distribution behind
/// the mean that `measure_latency` reports — how the SDP-on-QDR jitter of
/// §VI-B becomes visible).
pub fn measure_latency_distribution(
    cluster: ClusterKind,
    transport: Transport,
    size: usize,
    iters: u32,
    seed: u64,
) -> LatencyDistribution {
    let world = cluster.world(seed, 4);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(transport, NodeId(0)),
    );
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    // Per-op latencies land in the cluster metrics registry so the
    // distribution is readable from the same place as every other metric.
    let hist = world.cluster.metrics().histogram("client.get_latency");
    sim.block_on(async move {
        let value = vec![0x5au8; size];
        client.set(b"bench-key", &value, 0, 0).await.expect("set");
        client.get(b"bench-key").await.expect("warm");
        for _ in 0..iters {
            let t0 = sim2.now();
            client.get(b"bench-key").await.expect("get").expect("hit");
            hist.record(sim2.now() - t0);
        }
        LatencyDistribution::from_histogram(&hist)
    })
}

// ---------------------------------------------------------------------
// Pipelined request engine (ext_pipeline_depth)
// ---------------------------------------------------------------------

/// Closed-loop pipelined get throughput from a single client: `ops` gets
/// over a 64-key working set with up to `depth` requests kept in flight
/// on the connection ([`McClient::get_many`]). Depth 1 reproduces the
/// classic synchronous client, so the ratio between depths is exactly
/// the per-connection pipelining win the paper's Fig. 6 obtains by
/// adding whole clients.
pub fn measure_pipeline_throughput(
    cluster: ClusterKind,
    transport: Transport,
    depth: usize,
    value_size: usize,
    ops: u32,
    seed: u64,
) -> f64 {
    measure_pipeline_run(cluster, transport, depth, value_size, ops, seed).0
}

/// Like [`measure_pipeline_throughput`], but also returns the virtual
/// clock at the end of the run. `ext_observatory` compares this clock
/// against a sampled run's to prove sampling costs zero virtual time.
pub fn measure_pipeline_run(
    cluster: ClusterKind,
    transport: Transport,
    depth: usize,
    value_size: usize,
    ops: u32,
    seed: u64,
) -> (f64, simnet::SimTime) {
    let world = cluster.world(seed, 4);
    run_pipeline_gets(&world, transport, depth, value_size, ops)
}

/// The pipelined-get workload itself, shared by the bare measurements
/// above and the sampled [`measure_observatory`] so both run the
/// identical code path (and therefore the identical virtual timeline).
fn run_pipeline_gets(
    world: &World,
    transport: Transport,
    depth: usize,
    value_size: usize,
    ops: u32,
) -> (f64, simnet::SimTime) {
    let _server = McServer::start(world, NodeId(0), McServerConfig::default());
    let mut cfg = McClientConfig::single(transport, NodeId(0));
    cfg.pipeline_depth = depth;
    let client = McClient::new(world, NodeId(1), cfg);
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    let tps = sim.block_on(async move {
        const KEYS: usize = 64;
        let value = vec![0x42u8; value_size];
        let names: Vec<String> = (0..KEYS).map(|i| format!("pipe-{i}")).collect();
        for name in &names {
            client
                .set(name.as_bytes(), &value, 0, 0)
                .await
                .expect("populate");
        }
        // One warm round trip so connection setup is outside the window.
        client
            .get(names[0].as_bytes())
            .await
            .expect("warm")
            .expect("hit");
        let batch: Vec<&[u8]> = (0..ops as usize)
            .map(|i| names[i % KEYS].as_bytes())
            .collect();
        let t0 = sim2.now();
        let got = client.get_many(&batch).await.expect("get_many");
        assert!(got.iter().all(Option::is_some), "every pipelined get hits");
        let elapsed = (sim2.now() - t0).as_secs_f64();
        ops as f64 / elapsed
    });
    (tps, sim.now())
}

/// What one sampled observatory run measured (`ext_observatory`).
pub struct ObservatoryRun {
    /// Throughput, bit-identical to [`measure_pipeline_throughput`] on
    /// the same parameters (sampling adds no virtual time).
    pub tps: f64,
    /// Virtual clock at the end of the run (zero-cost sampling check).
    pub end_clock: simnet::SimTime,
    /// Sampler snapshots taken during the run.
    pub ticks: u64,
    /// Client-observed throughput series (ops/sec per sampling interval).
    pub tput_series: Vec<f64>,
    /// In-flight window occupancy high watermark (client side).
    pub inflight_high: f64,
    /// Worker queue-depth high watermark across the server's workers.
    pub queue_high: f64,
    /// The run monitor's final state.
    pub health: simnet::Health,
    /// Health transitions recorded during the run.
    pub transitions: usize,
    /// The cluster's Prometheus exposition at the end of the run.
    pub prom: String,
}

/// The pipelined-get workload of [`measure_pipeline_throughput`] run with
/// a metrics [`Sampler`](simnet::Sampler) and
/// [`HealthMonitor`](simnet::HealthMonitor) attached: the sampler
/// snapshots the cluster registry every 100 µs of virtual time and feeds
/// the monitor the client's completion rate and in-flight occupancy.
/// Everything observed is pure host-side accounting, so `tps` matches the
/// bare measurement bit for bit.
pub fn measure_observatory(
    cluster: ClusterKind,
    transport: Transport,
    depth: usize,
    value_size: usize,
    ops: u32,
    seed: u64,
) -> ObservatoryRun {
    use simnet::{HealthMonitor, HealthRules, MonitorBinding, Sampler, SamplerConfig};
    let world = cluster.world(seed, 4);
    let sampler = Sampler::new(
        world.sim(),
        world.cluster.metrics(),
        SamplerConfig::default(),
    );
    let monitor = HealthMonitor::new(HealthRules::default(), NodeId(1));
    monitor.set_tracer(Some(world.cluster.tracer().clone()));
    sampler.bind_monitor(MonitorBinding {
        monitor: monitor.clone(),
        throughput_counter: "client.node1.ops_completed".into(),
        queue_gauge: "client.node1.inflight".into(),
        latency_hist: None,
        error_counter: None,
        slos: Vec::new(),
    });
    sampler.start();
    let (tps, end_clock) = run_pipeline_gets(&world, transport, depth, value_size, ops);
    sampler.stop();
    let metrics = world.cluster.metrics();
    let inflight_high = metrics.gauge("client.node1.inflight").high();
    let queue_high = (0..McServerConfig::default().workers)
        .map(|w| {
            metrics
                .gauge(&format!("mc.node0.worker{w}.queue_depth"))
                .high()
        })
        .fold(0.0, f64::max);
    ObservatoryRun {
        tps,
        end_clock,
        ticks: sampler.ticks(),
        tput_series: sampler.values("client.node1.ops_completed.rate"),
        inflight_high,
        queue_high,
        health: monitor.state(),
        transitions: monitor.transitions().len(),
        prom: world.cluster.export_prometheus(),
    }
}

/// Registration-cache statistics for a repeated-buffer rendezvous
/// workload: one UCR endpoint sends `sends` rendezvous messages (payload
/// `value_size` > eager threshold) from the *same* source buffer, each
/// followed by a completion-counter wait so the full
/// advertise → RDMA-read → Fin flow finishes. With the per-destination
/// MR cache only the first send registers; every repeat hits. Returns
/// `(hits, misses)` as counted in [`ucr::RtStats`].
pub fn measure_mr_cache(
    cluster: ClusterKind,
    sends: u32,
    value_size: usize,
    seed: u64,
) -> (u64, u64) {
    let world = cluster.world(seed, 2);
    let sim = world.sim().clone();
    const MSG: u16 = 7;
    const PORT: u16 = 9099;
    let srv_rt = ucr::UcrRuntime::new(&world.ib, NodeId(0));
    srv_rt.register_handler(
        MSG,
        ucr::FnHandler(|_: &ucr::Endpoint, _: &[u8], _: ucr::AmData| {}),
    );
    let listener = srv_rt.listen(PORT).expect("UCR port free");
    sim.spawn(async move {
        let mut eps = Vec::new();
        while let Ok(ep) = listener.accept().await {
            eps.push(ep); // keep server-side endpoints alive
        }
    });
    let cli_rt = ucr::UcrRuntime::new(&world.ib, NodeId(1));
    let cli2 = cli_rt.clone();
    sim.block_on(async move {
        let timeout = SimDuration::from_millis(250);
        let ep = cli2
            .connect(NodeId(0), PORT, timeout)
            .await
            .expect("connect");
        assert!(
            value_size > cli2.eager_threshold(),
            "workload must ride the rendezvous path"
        );
        let buf = vec![9u8; value_size];
        for _ in 0..sends {
            let ctr = cli2.counter();
            ep.send_message(
                MSG,
                b"",
                &buf,
                ucr::SendOptions {
                    completion: Some(ctr.clone()),
                    ..Default::default()
                },
            )
            .await
            .expect("send");
            ctr.wait_for(1, timeout)
                .await
                .expect("rendezvous completes");
        }
        let st = cli2.stats();
        (st.mr_cache_hits.get(), st.mr_cache_misses.get())
    })
}

// ---------------------------------------------------------------------
// Bottleneck analysis (what saturates in Figure 6)
// ---------------------------------------------------------------------

/// Throughput plus the server-side resource utilizations that explain it.
#[derive(Clone, Copy, Debug)]
pub struct BottleneckReport {
    /// Aggregate transactions per second.
    pub tps: f64,
    /// Server HCA work-request pipeline utilization in `[0, 1]`.
    pub hca_utilization: f64,
    /// Server kernel protocol-processing utilization in `[0, 1]`.
    pub kernel_utilization: f64,
}

/// Like [`measure_throughput`], but also reports which server resource the
/// run saturated — the §VI-D mechanism (UCR pegs the HCA and bypasses the
/// kernel; every sockets transport pegs the kernel and barely touches the
/// HCA).
pub fn measure_bottlenecks(
    cluster: ClusterKind,
    transport: Transport,
    clients: u32,
    value_size: usize,
    ops_per_client: u32,
    seed: u64,
) -> BottleneckReport {
    let world = cluster.world(seed, clients + 1);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let sim = world.sim().clone();
    let mut joins = Vec::new();
    for c in 0..clients {
        let client = McClient::new(
            &world,
            NodeId(1 + c),
            McClientConfig::single(transport, NodeId(0)),
        );
        joins.push(sim.spawn(async move {
            let key = format!("client-{c}");
            let value = vec![1u8; value_size];
            client
                .set(key.as_bytes(), &value, 0, 0)
                .await
                .expect("populate");
            for _ in 0..ops_per_client {
                client.get(key.as_bytes()).await.expect("get").expect("hit");
            }
        }));
    }
    let sim2 = sim.clone();
    let server_node = world.cluster.node(NodeId(0)).clone();
    let cluster_rc = world.cluster.clone();
    // Reset accounting after connection setup noise.
    sim.clone().block_on(async move {
        let t0 = sim2.now();
        server_node.hca.reset(t0);
        server_node.kernel.reset(t0);
        for j in joins {
            j.await;
        }
        let elapsed = sim2.now() - t0;
        // Publish the window's resource occupancy into the cluster
        // metrics registry and read the attribution back from there —
        // the same gauges `stats`-style consumers see.
        cluster_rc.export_node_metrics(t0);
        let m = cluster_rc.metrics();
        let tps = (clients as u64 * ops_per_client as u64) as f64 / elapsed.as_secs_f64();
        m.gauge("bench.tps").set(tps);
        BottleneckReport {
            tps,
            hca_utilization: m
                .gauge_value(&format!("{}.hca.utilization", NodeId(0)))
                .expect("exported"),
            kernel_utilization: m
                .gauge_value(&format!("{}.kernel.utilization", NodeId(0)))
                .expect("exported"),
        }
    })
}

// ---------------------------------------------------------------------
// Server-CPU-bypass GET (ext_bypass_get)
// ---------------------------------------------------------------------

/// One bypass-vs-AM comparison cell: the latency distribution and
/// throughput of a read-heavy zipfian phase, plus the accounting that
/// attributes the work — one-sided read counters on the client runtime
/// and server worker wakes during the timed window.
#[derive(Clone, Debug)]
pub struct BypassRun {
    /// Per-get latency distribution over the timed pure-read phase.
    pub dist: LatencyDistribution,
    /// Gets per second over the timed pure-read phase.
    pub tps: f64,
    /// One-sided reads completed during the whole run.
    pub bypass_reads: u64,
    /// Version-skew retries during the whole run.
    pub bypass_retries: u64,
    /// Fallbacks to the AM get path during the whole run.
    pub bypass_fallbacks: u64,
    /// Server worker wakes during the timed pure-read phase only. With
    /// the bypass on this must be zero: a bypassed GET never costs
    /// server CPU.
    pub read_phase_worker_wakes: u64,
}

/// Sum of the server's per-worker wake counters.
fn worker_wakes(world: &World, node: NodeId, workers: usize) -> u64 {
    (0..workers)
        .map(|w| {
            world
                .cluster
                .metrics()
                .counter_value(&format!("mc.node{}.worker{w}.wakes", node.0))
        })
        .sum()
}

/// Runs the bypass-GET study: preload a key space, then a timed
/// pure-read zipfian phase (the paper-style latency/throughput numbers
/// plus the zero-worker-wake proof), then a mixed 10%-set phase that
/// exercises the seqlock retry path under concurrent writers. With
/// `bypass` off the same schedule runs over the ordinary two-sided AM
/// get, so the pair isolates exactly the server-CPU-bypass effect.
pub fn measure_bypass_get(
    cluster: ClusterKind,
    bypass: bool,
    value_size: usize,
    ops: u32,
    seed: u64,
) -> BypassRun {
    const KEY_SPACE: usize = 256;
    const ZIPF_SKEW: f64 = 0.99;
    let server_cfg = McServerConfig::default();
    let workers = server_cfg.workers;
    let world = cluster.world(seed, 4);
    let _server = McServer::start(&world, NodeId(0), server_cfg);
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig {
            bypass_get: bypass,
            ..McClientConfig::single(Transport::Ucr, NodeId(0))
        },
    );
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        let value = vec![0x5au8; value_size];
        for k in 0..KEY_SPACE {
            let key = format!("bp-{k}");
            client
                .set(key.as_bytes(), &value, 0, 0)
                .await
                .expect("load");
        }
        // One warm read per key so cold descriptor lookups don't skew
        // the timed phase (the AM variant warms its connection the same
        // way, keeping the comparison honest).
        for k in 0..KEY_SPACE {
            let key = format!("bp-{k}");
            client
                .get(key.as_bytes())
                .await
                .expect("warm")
                .expect("hit");
        }
        // The load/warm phases keep workers busy; let them drain fully
        // before the wake snapshot.
        sim2.sleep(SimDuration::from_millis(10)).await;
        let wakes0 = worker_wakes(&world, NodeId(0), workers);

        // Timed pure-read zipfian phase.
        let hist = world
            .cluster
            .metrics()
            .histogram("bench.bypass_get_latency");
        let t0 = sim2.now();
        for _ in 0..ops {
            let key_idx = sim2.with_rng(|r| r.gen_zipf(KEY_SPACE, ZIPF_SKEW));
            let key = format!("bp-{key_idx}");
            let op0 = sim2.now();
            client.get(key.as_bytes()).await.expect("get").expect("hit");
            hist.record(sim2.now() - op0);
        }
        let elapsed = sim2.now() - t0;
        sim2.sleep(SimDuration::from_millis(10)).await;
        let read_phase_worker_wakes = worker_wakes(&world, NodeId(0), workers) - wakes0;

        // Mixed phase: concurrent writers force version-skew retries.
        for i in 0..ops / 2 {
            let key_idx = sim2.with_rng(|r| r.gen_zipf(KEY_SPACE, ZIPF_SKEW));
            let key = format!("bp-{key_idx}");
            if i % 10 == 0 {
                match client.set(key.as_bytes(), &value, 0, 0).await {
                    Ok(()) | Err(McError::OutOfMemory) => {}
                    Err(e) => panic!("set failed: {e}"),
                }
            } else {
                client.get(key.as_bytes()).await.expect("get").expect("hit");
            }
        }

        let (bypass_reads, bypass_retries, bypass_fallbacks) = client
            .ucr_runtime()
            .map(|rt| {
                let st = rt.stats();
                (
                    st.bypass_reads.get(),
                    st.bypass_retries.get(),
                    st.bypass_fallbacks.get(),
                )
            })
            .unwrap_or((0, 0, 0));
        BypassRun {
            dist: LatencyDistribution::from_histogram(&hist),
            tps: ops as f64 / elapsed.as_secs_f64(),
            bypass_reads,
            bypass_retries,
            bypass_fallbacks,
            read_phase_worker_wakes,
        }
    })
}
