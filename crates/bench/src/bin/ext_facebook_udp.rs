//! Extension experiment: the §III Facebook comparison.
//!
//! The paper contrasts its design with Facebook's UDP memcached: "Using
//! their changes, Memcached was able to handle up to 200,000 UDP requests
//! per second with an average latency of 173 µs. The maximum throughput
//! can be up to 300,000 UDP requests/s, but the latency at that request
//! rate is too high to be useful... using our version of Memcached on
//! RDMA capable networks, the latency is around 12 µs and request rates
//! are in Millions per second."
//!
//! This experiment stages that contrast: small gets over memcached's UDP
//! protocol on a 10GigE-class network versus UCR on InfiniBand, sweeping
//! client count, with mean latency and aggregate request rate per point.

use rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use simnet::{NodeId, Stack};

fn run(transport: Transport, clients: u32, cluster_b: bool) -> (f64, f64) {
    let world = if cluster_b {
        World::cluster_b(29, clients + 1)
    } else {
        World::cluster_a(29, clients + 1)
    };
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let sim = world.sim().clone();
    let ops = 800u32;
    let mut joins = Vec::new();
    for c in 0..clients {
        let client = McClient::new(
            &world,
            NodeId(1 + c),
            McClientConfig::single(transport, NodeId(0)),
        );
        joins.push(sim.spawn(async move {
            let key = format!("fb-{c}");
            client.set(key.as_bytes(), &[1u8; 32], 0, 0).await.unwrap();
            let mut lost = 0u32;
            for _ in 0..ops {
                // UDP gets may be lost; a lost get is retried once, as a
                // production client would.
                if client.get(key.as_bytes()).await.is_err() {
                    lost += 1;
                    let _ = client.get(key.as_bytes()).await;
                }
            }
            lost
        }));
    }
    let sim2 = sim.clone();
    sim.block_on(async move {
        let t0 = sim2.now();
        let mut lost = 0u32;
        for j in joins {
            lost += j.await;
        }
        let elapsed = (sim2.now() - t0).as_secs_f64();
        let total = clients as u64 * ops as u64;
        let _ = lost;
        (
            (total as f64) / elapsed,
            elapsed * 1e6 * clients as f64 / total as f64,
        )
    })
}

fn main() {
    println!("Extension: UCR (QDR IB) vs memcached-UDP (10GigE) — the SIII contrast");
    println!(
        "{:>10}{:>16}{:>14}{:>16}{:>14}",
        "clients", "UDP req/s", "UDP us/op", "UCR req/s", "UCR us/op"
    );
    let mut records = Vec::new();
    for clients in [4u32, 8, 16, 32] {
        let (udp_tps, udp_lat) = run(Transport::Udp(Stack::TenGigEToe), clients, false);
        let (ucr_tps, ucr_lat) = run(Transport::Ucr, clients, true);
        println!(
            "{clients:>10}{:>15.1}K{udp_lat:>14.1}{:>15.1}K{ucr_lat:>14.1}",
            udp_tps / 1e3,
            ucr_tps / 1e3
        );
        for (transport, cluster, tps, lat) in [
            ("UDP 10GigE-TOE", "Cluster A (DDR)", udp_tps, udp_lat),
            ("UCR IB", "Cluster B (QDR)", ucr_tps, ucr_lat),
        ] {
            records.push(
                rmc_bench::json_out::Record::new()
                    .str("op", "get")
                    .str("transport", transport)
                    .str("cluster", cluster)
                    .int("size", 32)
                    .int("clients", clients as u64)
                    .num("tps", tps)
                    .num("mean_us", lat),
            );
        }
    }
    rmc_bench::json_out::write("ext_facebook_udp", &records);
    println!("\n(Facebook reported ~200-300K UDP req/s at 173+ us; the paper's");
    println!("answer is ~12 us latency and request rates in the millions. The");
    println!("UDP ceiling here is the server's kernel per-datagram cost; UCR's");
    println!("is the HCA message rate.)");
}
