//! Extension experiment: UCR over RoCE (paper §VII future work).
//!
//! The paper announces iWARP/RoCE ports of UCR and predicts "good gains
//! in performance with the iWARP/RoCE implementations of UCR that will
//! run over a 10 GigE network" (§VI, note on interpreting results). This
//! experiment runs the *same* Memcached + UCR code over Cluster A's
//! converged 10GigE adapters and compares against native IB verbs and
//! the TOE sockets baseline on identical hardware paths.

use rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use simnet::{NodeId, Stack};

fn latency(transport: Transport, size: usize) -> f64 {
    let world = World::cluster_a(19, 4);
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(transport, NodeId(0)),
    );
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        client.set(b"k", &vec![1u8; size], 0, 0).await.unwrap();
        client.get(b"k").await.unwrap();
        let iters = 200u32;
        let t0 = sim2.now();
        for _ in 0..iters {
            client.get(b"k").await.unwrap().unwrap();
        }
        (sim2.now() - t0).as_micros_f64() / iters as f64
    })
}

fn main() {
    println!("Extension: UCR over RoCE vs native IB verbs vs sockets, Cluster A");
    println!("(same 10GigE wire for UCR-RoCE and 10GigE-TOE; same NIC family)");
    println!(
        "{:>10}{:>12}{:>12}{:>12}",
        "size", "UCR (IB)", "UCR-RoCE", "10GigE-TOE"
    );
    let mut records = Vec::new();
    for size in [4usize, 64, 1024, 4096, 65536] {
        let ib = latency(Transport::Ucr, size);
        let roce = latency(Transport::UcrRoce, size);
        let toe = latency(Transport::Sockets(Stack::TenGigEToe), size);
        println!("{size:>10}{ib:>12.1}{roce:>12.1}{toe:>12.1}");
        for (name, us) in [("UCR IB", ib), ("UCR RoCE", roce), ("10GigE-TOE", toe)] {
            records.push(
                rmc_bench::json_out::Record::new()
                    .str("op", "get")
                    .str("transport", name)
                    .str("cluster", "Cluster A (DDR)")
                    .int("size", size as u64)
                    .num("mean_us", us),
            );
        }
    }
    rmc_bench::json_out::write("ext_roce", &records);
    println!("\n(RoCE keeps the OS-bypass win over TOE sockets while trailing");
    println!("native DDR IB slightly — Ethernet switch latency and a slower");
    println!("RDMA engine. Exactly the outcome the paper's SVII anticipates.)");
}
