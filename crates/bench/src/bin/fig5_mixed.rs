//! Figure 5: latency of small messages under mixed instruction sets —
//! non-interleaved (10% Set / 90% Get: 1 set then 9 gets) and interleaved
//! (50% / 50%: alternating) — on Clusters A and B.

use rmc_bench::json_out::{self, Record};
use rmc_bench::{
    latency_sweep, render_latency_table, ClusterKind, Mix, DEFAULT_ITERS, SMALL_SIZES,
};

fn main() {
    let mut records = Vec::new();
    let panels = [
        (
            "Figure 5(a): Non-Interleaved (Set 10% Get 90%), Cluster A (us)",
            ClusterKind::A,
            Mix::NonInterleaved,
        ),
        (
            "Figure 5(b): Non-Interleaved (Set 10% Get 90%), Cluster B (us)",
            ClusterKind::B,
            Mix::NonInterleaved,
        ),
        (
            "Figure 5(c): Interleaved (Set 50% Get 50%), Cluster A (us)",
            ClusterKind::A,
            Mix::Interleaved,
        ),
        (
            "Figure 5(d): Interleaved (Set 50% Get 50%), Cluster B (us)",
            ClusterKind::B,
            Mix::Interleaved,
        ),
    ];
    for (title, cluster, mix) in panels {
        let columns: Vec<_> = cluster
            .transports()
            .into_iter()
            .map(|t| {
                (
                    t.label().to_string(),
                    latency_sweep(cluster, t, mix, SMALL_SIZES, DEFAULT_ITERS, 5),
                )
            })
            .collect();
        let op = if mix == Mix::NonInterleaved {
            "mixed_noninterleaved"
        } else {
            "mixed_interleaved"
        };
        for (label, points) in &columns {
            for p in points {
                records.push(
                    Record::new()
                        .str("op", op)
                        .str("transport", label.as_str())
                        .str("cluster", cluster.label())
                        .int("size", p.size as u64)
                        .num("mean_us", p.mean_us),
                );
            }
        }
        println!("{}", render_latency_table(title, SMALL_SIZES, &columns));
    }
    json_out::write("fig5_mixed", &records);
}
