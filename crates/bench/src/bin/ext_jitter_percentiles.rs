//! Extension experiment: the SDP-on-QDR jitter, as a distribution.
//!
//! §VI-B reports that Cluster B's SDP results "were noisy. We made
//! several attempts to reduce the jitter by increasing the number of
//! samples ... However, the jitter did not subside", and concludes it is
//! an SDP implementation artifact (IPoIB and UCR on the same fabric are
//! jitter-free). The paper plots means; this study shows the full
//! percentile picture that diagnosis implies.

use rmc::Transport;
use rmc_bench::{measure_latency_distribution, ClusterKind};
use simnet::Stack;

fn main() {
    println!("Extension: 64-byte get latency distribution, Cluster B (QDR), 400 ops");
    println!(
        "{:>10}{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "transport", "min", "p50", "p95", "p99", "max", "mean"
    );
    let mut records = Vec::new();
    for (name, t) in [
        ("UCR", Transport::Ucr),
        ("IPoIB", Transport::Sockets(Stack::Ipoib)),
        ("SDP", Transport::Sockets(Stack::Sdp)),
    ] {
        let d = measure_latency_distribution(ClusterKind::B, t, 64, 400, 17);
        println!(
            "{name:>10}{:>9.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}",
            d.min_us, d.p50_us, d.p95_us, d.p99_us, d.max_us, d.mean_us
        );
        records.push(
            rmc_bench::json_out::Record::new()
                .str("op", "get")
                .str("transport", name)
                .str("cluster", ClusterKind::B.label())
                .int("size", 64)
                .num("mean_us", d.mean_us)
                .num("min_us", d.min_us)
                .num("p50_us", d.p50_us)
                .num("p95_us", d.p95_us)
                .num("p99_us", d.p99_us)
                .num("max_us", d.max_us),
        );
    }
    rmc_bench::json_out::write("ext_jitter_percentiles", &records);
    println!("\n(UCR and IPoIB are tight around their medians; SDP's tail is the");
    println!("QDR artifact the paper describes — the mean hides a long p99.)");
}
