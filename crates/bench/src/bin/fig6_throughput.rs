//! Figure 6: aggregate transactions per second for Get operations with
//! 8 and 16 clients (all on distinct nodes, started simultaneously), for
//! 4-byte and 4096-byte values, on Clusters A and B.
//!
//! Paper shape: UCR ≈ 6× 10GigE-TOE on Cluster A; TOE > IPoIB on A;
//! UCR ≈ 6× SDP on Cluster B, reaching ≈ 1.8 M TPS at 4 B with 16
//! clients; SDP slightly below IPoIB on B.

use rmc_bench::json_out::{self, Record};
use rmc_bench::{render_tps_table, throughput_sweep, ClusterKind, DEFAULT_TPUT_OPS};

fn main() {
    let clients = [8u32, 16];
    let mut records = Vec::new();
    let panels = [
        (
            "Figure 6(a): Get TPS, 4-byte values, Cluster A",
            ClusterKind::A,
            4usize,
        ),
        (
            "Figure 6(b): Get TPS, 4096-byte values, Cluster A",
            ClusterKind::A,
            4096,
        ),
        (
            "Figure 6(c): Get TPS, 4-byte values, Cluster B",
            ClusterKind::B,
            4,
        ),
        (
            "Figure 6(d): Get TPS, 4096-byte values, Cluster B",
            ClusterKind::B,
            4096,
        ),
    ];
    for (title, cluster, size) in panels {
        let columns: Vec<_> = cluster
            .transports()
            .into_iter()
            .map(|t| {
                (
                    t.label().to_string(),
                    throughput_sweep(cluster, t, &clients, size, DEFAULT_TPUT_OPS, 6),
                )
            })
            .collect();
        for (label, points) in &columns {
            for p in points {
                records.push(
                    Record::new()
                        .str("op", "get")
                        .str("transport", label.as_str())
                        .str("cluster", cluster.label())
                        .int("size", size as u64)
                        .int("clients", p.clients as u64)
                        .num("tps", p.tps),
                );
            }
        }
        println!("{}", render_tps_table(title, &clients, &columns));
    }
    json_out::write("fig6_throughput", &records);
}
