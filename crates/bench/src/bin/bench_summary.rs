//! Merges every benchmark result document under `results/` into one
//! machine-readable digest, `results/bench_summary.json`: one record per
//! bench file carrying its record count, the distinct `op` kinds it
//! sweeps, and the min/max of every numeric field. CI publishes the
//! digest as an artifact so a regression scan needs one download, not
//! sixteen.
//!
//! Deterministic by construction: files are visited in sorted name
//! order, fields are aggregated in sorted key order, and nothing reads
//! the wall clock. Chrome-trace exports (`*.trace.json`), the metric
//! manifest, and a previous digest are skipped — they are not bench
//! result documents.
//!
//! As a final step the digest cross-checks `results/metric_manifest.json`
//! (rmc-lint's inventory of every registered metric) against the series
//! the observatory actually exposed (`results/ext_observatory.prom`):
//! every backticked registry name in a HELP line must match a manifest
//! pattern of the same instrument kind, so a renamed or typo'd metric
//! fails CI here instead of silently forking a series.
//!
//! The digest also guards the benchmark trajectory: headline figures
//! (best throughput, best latency per bench document) are compared
//! against the committed `results/bench_baseline.json`. A figure more
//! than 15% worse than its baseline fails the run with a delta table;
//! `--write-baseline` re-distills the baseline from the current results
//! (run it when a change legitimately moves a figure, and commit the
//! diff).

use std::collections::BTreeMap;

use simnet::trace_export::{parse_json, Json};

fn main() {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let dir = std::path::Path::new("results");
    let mut names: Vec<String> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| {
                n.ends_with(".json")
                    && !n.ends_with(".trace.json")
                    && n != "bench_summary.json"
                    && n != "metric_manifest.json"
                    && n != "bench_baseline.json"
            })
            .collect(),
        Err(e) => {
            eprintln!("no results/ directory to summarize: {e}");
            return;
        }
    };
    names.sort_unstable();

    println!("Benchmark result digest ({} documents)", names.len());
    println!("{:>26} {:>9}  ops", "bench", "records");
    let mut rows = Vec::new();
    let mut figures: Vec<Figure> = Vec::new();
    for name in &names {
        let path = dir.join(name);
        let doc = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        let parsed = match parse_json(&doc) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {}: invalid JSON ({e})", path.display());
                continue;
            }
        };
        let bench = parsed
            .get("bench")
            .and_then(|b| b.as_str())
            .unwrap_or(name.trim_end_matches(".json"))
            .to_string();
        let records = parsed
            .get("records")
            .and_then(|r| r.as_arr())
            .unwrap_or(&[]);
        // Aggregate every numeric field to (min, max); collect the
        // distinct `op` kinds the bench sweeps.
        let mut ranges: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        let mut ops: Vec<String> = Vec::new();
        for rec in records {
            if let Json::Obj(fields) = rec {
                for (k, v) in fields {
                    if let Some(n) = v.as_f64() {
                        let e = ranges.entry(k.clone()).or_insert((n, n));
                        e.0 = e.0.min(n);
                        e.1 = e.1.max(n);
                    }
                }
            }
            if let Some(op) = rec.get("op").and_then(|o| o.as_str()) {
                if !ops.iter().any(|o| o == op) {
                    ops.push(op.to_string());
                }
            }
        }
        println!("{:>26} {:>9}  {}", bench, records.len(), ops.join(","));
        // Distill the headline figures the trajectory guard tracks: the
        // best throughput and the best latencies this bench measured.
        for (field, pick_max, higher_better) in [
            ("tps", true, true),
            ("mean_us", false, false),
            ("p50_us", false, false),
            ("p99_us", false, false),
        ] {
            if let Some(&(lo, hi)) = ranges.get(field) {
                figures.push(Figure {
                    name: format!("{bench}.{field}.{}", if pick_max { "max" } else { "min" }),
                    value: if pick_max { hi } else { lo },
                    higher_better,
                });
            }
        }
        let mut row = rmc_bench::json_out::Record::new()
            .str("bench", bench)
            .str("source", name.as_str())
            .int("records", records.len() as u64)
            .str("ops", ops.join(","));
        for (k, (lo, hi)) in ranges {
            row = row
                .num(&format!("{k}.min"), lo)
                .num(&format!("{k}.max"), hi);
        }
        rows.push(row);
    }
    rmc_bench::json_out::write("bench_summary", &rows);

    if let Err(msg) = cross_check_manifest(dir) {
        eprintln!("bench_summary: metric-manifest cross-check FAILED:\n{msg}");
        std::process::exit(1);
    }

    if write_baseline {
        write_baseline_file(dir, &figures);
    } else if let Err(msg) = check_baseline(dir, &figures) {
        eprintln!("bench_summary: trajectory guard FAILED:\n{msg}");
        std::process::exit(1);
    }
}

/// One tracked headline figure of a bench document.
struct Figure {
    name: String,
    value: f64,
    higher_better: bool,
}

/// Figures a regression larger than this fraction fails on.
const REGRESSION_TOLERANCE: f64 = 0.15;

fn write_baseline_file(dir: &std::path::Path, figures: &[Figure]) {
    let records: Vec<_> = figures
        .iter()
        .map(|f| {
            rmc_bench::json_out::Record::new()
                .str("name", f.name.as_str())
                .num("value", f.value)
                .str("better", if f.higher_better { "higher" } else { "lower" })
        })
        .collect();
    let doc = rmc_bench::json_out::render("bench_baseline", &records);
    let path = dir.join("bench_baseline.json");
    match std::fs::write(&path, doc) {
        Ok(()) => eprintln!(
            "bench_summary: wrote {} ({} figures)",
            path.display(),
            figures.len()
        ),
        Err(e) => {
            eprintln!("bench_summary: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Compares the current figures against the committed baseline and
/// prints the delta table. Worse-than-tolerance figures fail; improved
/// figures just print (refresh the baseline with `--write-baseline` to
/// ratchet them in).
fn check_baseline(dir: &std::path::Path, figures: &[Figure]) -> Result<(), String> {
    let path = dir.join("bench_baseline.json");
    let doc = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(_) => {
            eprintln!(
                "bench_summary: {} absent, skipping trajectory guard \
                 (write one with --write-baseline)",
                path.display()
            );
            return Ok(());
        }
    };
    let parsed =
        parse_json(&doc).map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    let baseline = parsed
        .get("records")
        .and_then(|r| r.as_arr())
        .ok_or_else(|| format!("{} has no records", path.display()))?;
    let current: BTreeMap<&str, &Figure> = figures.iter().map(|f| (f.name.as_str(), f)).collect();
    println!(
        "\nTrajectory vs baseline (tolerance {:.0}%)",
        REGRESSION_TOLERANCE * 100.0
    );
    println!(
        "{:>44} {:>14} {:>14} {:>8}",
        "figure", "baseline", "current", "delta"
    );
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for rec in baseline {
        let (Some(name), Some(base), Some(better)) = (
            rec.get("name").and_then(|v| v.as_str()),
            rec.get("value").and_then(|v| v.as_f64()),
            rec.get("better").and_then(|v| v.as_str()),
        ) else {
            return Err(format!("malformed baseline record in {}", path.display()));
        };
        let Some(fig) = current.get(name) else {
            failures.push(format!(
                "  {name}: in the baseline but absent from results/ — \
                 rerun its bench or refresh the baseline"
            ));
            continue;
        };
        compared += 1;
        // Signed change in the direction of "better": positive = improved.
        // A zero baseline has no meaningful relative delta: any move off
        // it counts as a full-scale change in the move's direction.
        let raw = if better == "higher" {
            fig.value - base
        } else {
            base - fig.value
        };
        let gain = if base != 0.0 {
            raw / base.abs()
        } else if raw == 0.0 {
            0.0
        } else {
            raw.signum()
        };
        let flag = if gain < -REGRESSION_TOLERANCE {
            "FAIL"
        } else {
            ""
        };
        println!(
            "{name:>44} {base:>14.3} {:>14.3} {:>7.1}% {flag}",
            fig.value,
            gain * 100.0
        );
        if gain < -REGRESSION_TOLERANCE {
            failures.push(format!(
                "  {name}: {:.3} is {:.1}% worse than baseline {:.3}",
                fig.value,
                -gain * 100.0,
                base
            ));
        }
    }
    if compared == 0 {
        return Err(format!("{} tracks no comparable figures", path.display()));
    }
    if failures.is_empty() {
        eprintln!("bench_summary: trajectory guard ok ({compared} figures within tolerance)");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// Validates the exposed Prometheus series against the committed metric
/// manifest. Exposition HELP lines carry the original dotted registry
/// name in backticks and the instrument kind in their wording ("Event
/// count" = counter, "Level"/"watermark" = gauge, "summary" =
/// histogram); each must match a manifest pattern of that kind.
fn cross_check_manifest(dir: &std::path::Path) -> Result<(), String> {
    let manifest_path = dir.join("metric_manifest.json");
    let manifest = std::fs::read_to_string(&manifest_path).map_err(|e| {
        format!(
            "{} unreadable ({e}); run `cargo run -p rmc-lint -- --write-manifest`",
            manifest_path.display()
        )
    })?;
    let parsed = parse_json(&manifest)
        .map_err(|e| format!("{} is not valid JSON: {e}", manifest_path.display()))?;
    let entries = parsed
        .get("metrics")
        .and_then(|m| m.as_arr())
        .ok_or_else(|| format!("{} has no `metrics` array", manifest_path.display()))?;
    let patterns: Vec<(String, String)> = entries
        .iter()
        .filter_map(|e| {
            let name = e.get("name").and_then(|n| n.as_str())?;
            let kind = e.get("kind").and_then(|k| k.as_str())?;
            Some((name.to_string(), kind.to_string()))
        })
        .collect();
    if patterns.is_empty() {
        return Err(format!("{} lists no metrics", manifest_path.display()));
    }

    let prom_path = dir.join("ext_observatory.prom");
    let prom = match std::fs::read_to_string(&prom_path) {
        Ok(s) => s,
        Err(_) => {
            eprintln!(
                "bench_summary: {} absent, skipping exposition cross-check \
                 (run ext_observatory first)",
                prom_path.display()
            );
            return Ok(());
        }
    };

    let mut checked = 0usize;
    let mut failures = Vec::new();
    for line in prom.lines() {
        let Some(help) = line.strip_prefix("# HELP ") else {
            continue;
        };
        let Some(name) = help.split('`').nth(1) else {
            continue; // HELP line without a registry-name backquote
        };
        let kind = if help.contains("Event count") {
            "counter"
        } else if help.contains("Level") || help.contains("watermark") {
            "gauge"
        } else if help.contains("summary") || help.contains("histogram") {
            "histogram"
        } else {
            failures.push(format!(
                "  {name}: unrecognized HELP wording {help:?} (cannot infer instrument kind)"
            ));
            continue;
        };
        checked += 1;
        let known = patterns
            .iter()
            .any(|(p, k)| k == kind && rmc_lint::rules::pattern_matches(p, name));
        if !known {
            failures.push(format!(
                "  {name} ({kind}): exposed by the observatory but matches no \
                 manifest pattern of that kind"
            ));
        }
    }
    if checked == 0 {
        return Err(format!(
            "{} exposes no registry-backed series to check",
            prom_path.display()
        ));
    }
    if failures.is_empty() {
        eprintln!(
            "bench_summary: metric-manifest cross-check ok ({checked} exposed series \
             against {} manifest patterns)",
            patterns.len()
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}
