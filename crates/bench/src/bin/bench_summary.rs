//! Merges every benchmark result document under `results/` into one
//! machine-readable digest, `results/bench_summary.json`: one record per
//! bench file carrying its record count, the distinct `op` kinds it
//! sweeps, and the min/max of every numeric field. CI publishes the
//! digest as an artifact so a regression scan needs one download, not
//! sixteen.
//!
//! Deterministic by construction: files are visited in sorted name
//! order, fields are aggregated in sorted key order, and nothing reads
//! the wall clock. Chrome-trace exports (`*.trace.json`) and a previous
//! digest are skipped — they are not bench result documents.

use std::collections::BTreeMap;

use simnet::trace_export::{parse_json, Json};

fn main() {
    let dir = std::path::Path::new("results");
    let mut names: Vec<String> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| {
                n.ends_with(".json") && !n.ends_with(".trace.json") && n != "bench_summary.json"
            })
            .collect(),
        Err(e) => {
            eprintln!("no results/ directory to summarize: {e}");
            return;
        }
    };
    names.sort_unstable();

    println!("Benchmark result digest ({} documents)", names.len());
    println!("{:>26} {:>9}  ops", "bench", "records");
    let mut rows = Vec::new();
    for name in &names {
        let path = dir.join(name);
        let doc = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        let parsed = match parse_json(&doc) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {}: invalid JSON ({e})", path.display());
                continue;
            }
        };
        let bench = parsed
            .get("bench")
            .and_then(|b| b.as_str())
            .unwrap_or(name.trim_end_matches(".json"))
            .to_string();
        let records = parsed
            .get("records")
            .and_then(|r| r.as_arr())
            .unwrap_or(&[]);
        // Aggregate every numeric field to (min, max); collect the
        // distinct `op` kinds the bench sweeps.
        let mut ranges: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        let mut ops: Vec<String> = Vec::new();
        for rec in records {
            if let Json::Obj(fields) = rec {
                for (k, v) in fields {
                    if let Some(n) = v.as_f64() {
                        let e = ranges.entry(k.clone()).or_insert((n, n));
                        e.0 = e.0.min(n);
                        e.1 = e.1.max(n);
                    }
                }
            }
            if let Some(op) = rec.get("op").and_then(|o| o.as_str()) {
                if !ops.iter().any(|o| o == op) {
                    ops.push(op.to_string());
                }
            }
        }
        println!("{:>26} {:>9}  {}", bench, records.len(), ops.join(","));
        let mut row = rmc_bench::json_out::Record::new()
            .str("bench", bench)
            .str("source", name.as_str())
            .int("records", records.len() as u64)
            .str("ops", ops.join(","));
        for (k, (lo, hi)) in ranges {
            row = row
                .num(&format!("{k}.min"), lo)
                .num(&format!("{k}.max"), hi);
        }
        rows.push(row);
    }
    rmc_bench::json_out::write("bench_summary", &rows);
}
