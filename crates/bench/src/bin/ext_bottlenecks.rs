//! Extension analysis: *why* Figure 6 looks the way it does.
//!
//! §VI-D's numbers follow from which server resource saturates. This run
//! reports, for each transport at 16 clients / 4-byte gets, the server's
//! HCA work-request pipeline utilization and its kernel protocol-
//! processing utilization alongside the achieved TPS: UCR pegs the HCA
//! and leaves the kernel idle (OS-bypass); every sockets transport does
//! the opposite.

use rmc::Transport;
use rmc_bench::{measure_bottlenecks, ClusterKind};
use simnet::Stack;

fn main() {
    println!("Extension: server-side bottlenecks at 16 clients, 4 B gets");
    println!(
        "{:>10}{:>12}{:>12}{:>14}{:>14}",
        "cluster", "transport", "TPS", "HCA util", "kernel util"
    );
    let cases = [
        (ClusterKind::A, Transport::Ucr),
        (ClusterKind::A, Transport::Sockets(Stack::TenGigEToe)),
        (ClusterKind::A, Transport::Sockets(Stack::Ipoib)),
        (ClusterKind::B, Transport::Ucr),
        (ClusterKind::B, Transport::Sockets(Stack::Sdp)),
        (ClusterKind::B, Transport::Sockets(Stack::Ipoib)),
    ];
    let mut records = Vec::new();
    for (cluster, transport) in cases {
        let r = measure_bottlenecks(cluster, transport, 16, 4, 800, 31);
        println!(
            "{:>10}{:>12}{:>11.1}K{:>13.0}%{:>13.0}%",
            match cluster {
                ClusterKind::A => "A (DDR)",
                ClusterKind::B => "B (QDR)",
            },
            transport.label(),
            r.tps / 1e3,
            r.hca_utilization * 100.0,
            r.kernel_utilization * 100.0,
        );
        records.push(
            rmc_bench::json_out::Record::new()
                .str("op", "get")
                .str("transport", transport.label())
                .str("cluster", cluster.label())
                .int("size", 4)
                .int("clients", 16)
                .num("tps", r.tps)
                .num("hca_utilization", r.hca_utilization)
                .num("kernel_utilization", r.kernel_utilization),
        );
    }
    rmc_bench::json_out::write("ext_bottlenecks", &records);
    println!("\n(OS-bypass in one row: UCR runs the HCA at ~100% with the kernel");
    println!("near 0%; sockets transports saturate the kernel instead, which is");
    println!("the 5-25x request-rate gap of Figure 6.)");
}
