//! Extension analysis: *where* a get's microseconds go (§VI-D).
//!
//! The latency-attribution layer stamps every operation at each pipeline
//! boundary — client serialize, request wire, dispatch wait, worker
//! service, reply wire, client complete — on the one virtual clock, so
//! the per-stage means sum exactly to the end-to-end mean. This run
//! decomposes a 4 KB get on Cluster A for UCR vs 10GigE-TOE: the wire
//! stages collapse under OS-bypass while the store's worker-service
//! stage is transport-invariant, which is the paper's §VI-D argument in
//! one table.

use rmc::Transport;
use rmc_bench::{measure_latency_attributed, ClusterKind, Mix};
use simnet::metrics::Stage;
use simnet::Stack;

fn main() {
    let cases = [
        ("UCR", Transport::Ucr),
        ("10GigE-TOE", Transport::Sockets(Stack::TenGigEToe)),
        ("IPoIB", Transport::Sockets(Stack::Ipoib)),
    ];
    println!("Extension: per-stage attribution of a 4 KB get, Cluster A (DDR), 60 ops");
    print!("{:>18}", "stage (us)");
    for (name, _) in cases {
        print!("{name:>12}");
    }
    println!();
    let reports: Vec<_> = cases
        .iter()
        .map(|(_, t)| measure_latency_attributed(ClusterKind::A, *t, Mix::GetOnly, 4096, 60, 7))
        .collect();
    for stage in Stage::ALL {
        print!("{:>18}", stage.label());
        for r in &reports {
            print!("{:>12.3}", r.stage_us(stage));
        }
        println!();
    }
    print!("{:>18}", "end_to_end");
    for r in &reports {
        print!("{:>12.3}", r.mean_us);
    }
    println!();
    let mut records = Vec::new();
    for ((name, _), r) in cases.iter().zip(&reports) {
        let mut rec = rmc_bench::json_out::Record::new()
            .str("op", "get")
            .str("transport", *name)
            .str("cluster", ClusterKind::A.label())
            .int("size", 4096)
            .num("mean_us", r.mean_us)
            .num("attributed_mean_us", r.attributed_mean_us)
            .int("ops_attributed", r.ops_attributed);
        for stage in Stage::ALL {
            rec = rec.num(&format!("stage_{}_us", stage.label()), r.stage_us(stage));
        }
        records.push(rec);
    }
    rmc_bench::json_out::write("ext_latency_attribution", &records);
    println!("\n(Stages sum to the end-to-end mean — the attribution invariant.");
    println!("OS-bypass shrinks the wire stages; worker service is the store's");
    println!("own cost and barely moves across transports.)");
}
