//! Ablation: worker-thread count.
//!
//! The paper makes the number of worker threads a runtime parameter
//! (§V-A) but evaluates a fixed setting. This study sweeps workers against
//! aggregate get throughput with 16 UCR clients: once the HCA message rate
//! is the ceiling (Figure 6's regime), adding workers stops helping; with
//! one worker the CPU serializes first.

use rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport};
use rmc_bench::ClusterKind;
use simnet::NodeId;

fn measure(cluster: ClusterKind, workers: usize, clients: u32) -> f64 {
    let world = cluster.world(13, clients + 1);
    let _server = McServer::start(
        &world,
        NodeId(0),
        McServerConfig {
            workers,
            ..McServerConfig::default()
        },
    );
    let sim = world.sim().clone();
    let ops = 1_000u32;
    let mut joins = Vec::new();
    for c in 0..clients {
        let client = McClient::new(
            &world,
            NodeId(1 + c),
            McClientConfig::single(Transport::Ucr, NodeId(0)),
        );
        joins.push(sim.spawn(async move {
            let key = format!("c{c}");
            client.set(key.as_bytes(), &[9u8; 64], 0, 0).await.unwrap();
            for _ in 0..ops {
                client.get(key.as_bytes()).await.unwrap().unwrap();
            }
        }));
    }
    let sim2 = sim.clone();
    sim.block_on(async move {
        let t0 = sim2.now();
        for j in joins {
            j.await;
        }
        (clients as u64 * ops as u64) as f64 / (sim2.now() - t0).as_secs_f64()
    })
}

fn main() {
    println!("Ablation: worker threads vs aggregate get TPS, 16 clients, 64-byte values");
    println!("{:>10}{:>16}{:>16}", "workers", "Cluster A", "Cluster B");
    let mut records = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let a = measure(ClusterKind::A, workers, 16);
        let b = measure(ClusterKind::B, workers, 16);
        println!("{workers:>10}{:>15.1}K{:>15.1}K", a / 1e3, b / 1e3);
        for (cluster, tps) in [(ClusterKind::A, a), (ClusterKind::B, b)] {
            records.push(
                rmc_bench::json_out::Record::new()
                    .str("op", "get")
                    .str("transport", "UCR IB")
                    .str("cluster", cluster.label())
                    .int("size", 64)
                    .int("clients", 16)
                    .int("workers", workers as u64)
                    .num("tps", tps),
            );
        }
    }
    rmc_bench::json_out::write("ablation_workers", &records);
}
