//! Ablation: worker threads × store lock model.
//!
//! The paper makes the number of worker threads a runtime parameter
//! (§V-A) but evaluates a fixed setting, and upstream memcached of the
//! era serialized every cache access behind one global `cache_lock`.
//! This study sweeps workers {1..16} under the simulator's three store
//! models — `Idealized` (lock-free accounting, the historical default),
//! `GlobalLock` (one virtual-time lock, the upstream behavior), and
//! `Sharded(16)` (hash-routed store segments with shard-affine
//! dispatch) — on both clusters, under a uniform load and a zipf-like
//! hot-key load.
//!
//! The workload is 16-key multigets: per-key hash/item time then
//! dominates the per-message HCA cost, so the lock ceiling sits well
//! below the wire ceiling and worker scaling exposes it. GlobalLock
//! plateaus immediately (the flat curve single-lock memcached shows
//! under multiget load); Sharded keeps scaling until the fabric takes
//! over. The hot-shard column reports the busiest segment's share of
//! sharded lock acquisitions — near 1/16 under uniform load, well above
//! it under the hot-key skew.

use rmc::{McClient, McClientConfig, McServer, McServerConfig, StoreModel, Transport};
use rmc_bench::ClusterKind;
use simnet::NodeId;

const CLIENTS: u32 = 8;
const MGETS_PER_CLIENT: u32 = 200;
const KEYS_PER_MGET: usize = 16;
const KEYSPACE: u64 = 2048;
/// Hot set for the skewed load: ~80% of draws land on these keys.
const HOT_KEYS: u64 = 64;

#[derive(Clone, Copy, PartialEq)]
enum Load {
    Uniform,
    HotKey,
}

impl Load {
    fn label(self) -> &'static str {
        match self {
            Load::Uniform => "uniform",
            Load::HotKey => "hotkey",
        }
    }
}

fn model_label(model: StoreModel) -> &'static str {
    match model {
        StoreModel::Idealized => "idealized",
        StoreModel::GlobalLock => "global_lock",
        StoreModel::Sharded(_) => "sharded16",
    }
}

/// Deterministic xorshift stream — the simulation is seeded and results
/// files must regenerate byte-identically, so no OS entropy anywhere.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn key_index(rng: &mut u64, load: Load) -> u64 {
    match load {
        Load::Uniform => xorshift(rng) % KEYSPACE,
        Load::HotKey => {
            if xorshift(rng) % 10 < 8 {
                xorshift(rng) % HOT_KEYS
            } else {
                xorshift(rng) % KEYSPACE
            }
        }
    }
}

struct RunResult {
    keys_per_sec: f64,
    lock_acquires: u64,
    lock_contended: u64,
    lock_wait_us: f64,
    lock_hold_us: f64,
    /// Busiest shard's share of lock acquisitions (1.0 for the global
    /// lock, 0.0 when no locks exist; skew indicator for sharded runs).
    hot_shard_share: f64,
}

fn measure(cluster: ClusterKind, model: StoreModel, workers: usize, load: Load) -> RunResult {
    let world = cluster.world(41, CLIENTS + 1);
    let server = McServer::start(
        &world,
        NodeId(0),
        McServerConfig {
            workers,
            store_model: model,
            ..McServerConfig::default()
        },
    );
    let sim = world.sim().clone();

    // Preload the whole keyspace so the measured phase is pure hits.
    let loader = McClient::new(
        &world,
        NodeId(1),
        McClientConfig {
            pipeline_depth: 32,
            ..McClientConfig::single(Transport::Ucr, NodeId(0))
        },
    );
    sim.block_on(async move {
        let keys: Vec<String> = (0..KEYSPACE).map(|i| format!("k{i:04}")).collect();
        let items: Vec<(&[u8], &[u8])> = keys
            .iter()
            .map(|k| (k.as_bytes(), &b"0123456789abcdef"[..]))
            .collect();
        for r in loader.set_many(&items, 0, 0).await.expect("preload") {
            r.expect("preload set");
        }
    });

    let t0 = sim.now();
    let mut joins = Vec::new();
    for c in 0..CLIENTS {
        let client = McClient::new(
            &world,
            NodeId(1 + c),
            McClientConfig::single(Transport::Ucr, NodeId(0)),
        );
        joins.push(sim.spawn(async move {
            let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (u64::from(c) + 1);
            for _ in 0..MGETS_PER_CLIENT {
                let keys: Vec<String> = (0..KEYS_PER_MGET)
                    .map(|_| format!("k{:04}", key_index(&mut rng, load)))
                    .collect();
                let refs: Vec<&[u8]> = keys.iter().map(String::as_bytes).collect();
                let got = client.mget(&refs).await.expect("mget");
                assert_eq!(got.len(), KEYS_PER_MGET, "preloaded keys must all hit");
            }
        }));
    }
    let sim2 = sim.clone();
    let elapsed = sim.block_on(async move {
        for j in joins {
            j.await;
        }
        (sim2.now() - t0).as_secs_f64()
    });

    let total_keys = u64::from(CLIENTS) * u64::from(MGETS_PER_CLIENT) * KEYS_PER_MGET as u64;
    let stats = server.lock_stats();
    let acquires: u64 = stats.iter().map(|s| s.acquires).sum();
    let max_acquires = stats.iter().map(|s| s.acquires).max().unwrap_or(0);
    RunResult {
        keys_per_sec: total_keys as f64 / elapsed,
        lock_acquires: acquires,
        lock_contended: stats.iter().map(|s| s.contended).sum(),
        lock_wait_us: stats.iter().map(|s| s.wait_total.as_micros_f64()).sum(),
        lock_hold_us: stats.iter().map(|s| s.hold_total.as_micros_f64()).sum(),
        hot_shard_share: if acquires == 0 {
            0.0
        } else {
            max_acquires as f64 / acquires as f64
        },
    }
}

fn main() {
    const WORKERS: [usize; 5] = [1, 2, 4, 8, 16];
    const MODELS: [StoreModel; 3] = [
        StoreModel::Idealized,
        StoreModel::GlobalLock,
        StoreModel::Sharded(16),
    ];
    println!(
        "Ablation: workers x store model — {CLIENTS} clients x {MGETS_PER_CLIENT} x \
         {KEYS_PER_MGET}-key mgets, 16-byte values, aggregate keys/s"
    );
    let mut records = Vec::new();
    for cluster in [ClusterKind::A, ClusterKind::B] {
        for load in [Load::Uniform, Load::HotKey] {
            println!();
            println!("{} / {} load", cluster.label(), load.label());
            print!("{:>10}", "workers");
            for model in MODELS {
                print!("{:>14}", model_label(model));
            }
            println!("{:>12}", "hot-shard");
            for workers in WORKERS {
                print!("{workers:>10}");
                let mut sharded_share = 0.0;
                for model in MODELS {
                    let r = measure(cluster, model, workers, load);
                    print!("{:>13.1}K", r.keys_per_sec / 1e3);
                    if matches!(model, StoreModel::Sharded(_)) {
                        sharded_share = r.hot_shard_share;
                    }
                    records.push(
                        rmc_bench::json_out::Record::new()
                            .str("op", "mget16")
                            .str("transport", "UCR IB")
                            .str("cluster", cluster.label())
                            .str("load", load.label())
                            .str("model", model_label(model))
                            .int("workers", workers as u64)
                            .int("clients", u64::from(CLIENTS))
                            .num("tps", r.keys_per_sec)
                            .int("lock_acquires", r.lock_acquires)
                            .int("lock_contended", r.lock_contended)
                            .num("lock_wait_us", r.lock_wait_us)
                            .num("lock_hold_us", r.lock_hold_us)
                            .num("hot_shard_share", r.hot_shard_share),
                    );
                }
                println!("{sharded_share:>12.3}");
            }
        }
    }
    println!();
    println!(
        "global_lock plateaus at the serialized per-key item time regardless of\n\
         workers; sharded16 with shard-affine dispatch keeps scaling until the HCA\n\
         takes over. hot-shard = busiest segment's share of sharded lock acquires\n\
         (1/16 = 0.0625 would be perfectly balanced)."
    );
    rmc_bench::json_out::write("ablation_workers", &records);
}
