//! Extension: pipelined request engine — depth-N outstanding ops per
//! connection.
//!
//! The paper's Fig. 6 raises aggregate throughput by adding whole client
//! processes, each running one synchronous op at a time. This study keeps a
//! single connection and instead keeps up to `depth` requests in flight on
//! it ([`rmc::McClient::get_many`] with `pipeline_depth`), the batched mode
//! real deployments (libmemcached `mget`, UCR multi-send) use. Depth 1 is
//! the classic closed loop; deeper pipelines overlap wire + stack latency
//! with server service time until one resource saturates.
//!
//! Also reports the UCR rendezvous registration cache on a repeated-buffer
//! workload: a pin-down cache means only the first large send from a buffer
//! pays `ibv_reg_mr`, the signature memcached-over-RDMA optimisation for
//! value buffers that are reused across sets.

use rmc::Transport;
use rmc_bench::{measure_mr_cache, measure_pipeline_throughput, ClusterKind};
use simnet::Stack;

const DEPTHS: [usize; 5] = [1, 2, 4, 8, 16];
const SIZES: [usize; 2] = [4, 4096];
const OPS: u32 = 1000;
const SEED: u64 = 77;

fn main() {
    println!("Extension: pipelined gets, depth 1..16 on one connection (K ops/sec)");
    let mut records = Vec::new();
    // Cluster B UCR 4 B results, indexed like DEPTHS, for the acceptance
    // check below.
    let mut b_ucr_4b = Vec::new();
    for cluster in [ClusterKind::A, ClusterKind::B] {
        for transport in [Transport::Ucr, Transport::Sockets(Stack::Sdp)] {
            println!("\n{} / {}", cluster.label(), transport.label());
            print!("{:>10}", "value");
            for d in DEPTHS {
                print!("{:>11}", format!("depth={d}"));
            }
            println!();
            for size in SIZES {
                print!("{size:>10}");
                for depth in DEPTHS {
                    let tps =
                        measure_pipeline_throughput(cluster, transport, depth, size, OPS, SEED);
                    print!("{:>11.1}", tps / 1000.0);
                    if cluster == ClusterKind::B && transport == Transport::Ucr && size == 4 {
                        b_ucr_4b.push(tps);
                    }
                    records.push(
                        rmc_bench::json_out::Record::new()
                            .str("op", "get")
                            .str("cluster", cluster.label())
                            .str("transport", transport.label())
                            .int("size", size as u64)
                            .int("depth", depth as u64)
                            .num("tps", tps),
                    );
                }
                println!();
            }
        }
    }

    let d1 = b_ucr_4b[0];
    let d8 = b_ucr_4b[3];
    println!("\nCluster B UCR 4 B: depth-8 is {:.2}x depth-1", d8 / d1);
    assert!(
        d8 >= 3.0 * d1,
        "pipelining win too small: depth-8 {d8:.0} tps vs depth-1 {d1:.0} tps"
    );

    let sends = 32u32;
    let (hits, misses) = measure_mr_cache(ClusterKind::B, sends, 64 * 1024, SEED);
    let rate = hits as f64 / (hits + misses) as f64;
    println!(
        "\nUCR registration cache, {sends} x 64 KB rendezvous sends from one buffer: \
         {hits} hits / {misses} misses ({:.1}% hit rate)",
        rate * 100.0
    );
    assert!(
        rate > 0.90,
        "registration cache ineffective: {hits} hits / {misses} misses"
    );
    records.push(
        rmc_bench::json_out::Record::new()
            .str("op", "rndv_mr_cache")
            .str("cluster", ClusterKind::B.label())
            .str("transport", "UCR IB")
            .int("sends", sends as u64)
            .int("hits", hits)
            .int("misses", misses)
            .num("hit_rate", rate),
    );
    rmc_bench::json_out::write("ext_pipeline_depth", &records);
    println!("\n(Depth overlaps wire+stack latency with service time on one connection;");
    println!("the curve saturates where per-op server cost, not latency, binds.)");
}
