//! Extension: server-CPU-bypass GET — client-direct RDMA reads of the
//! server's item memory.
//!
//! The paper's UCR design still spends server CPU on every GET: the
//! request wakes a worker, the store is consulted, a response is sent.
//! This study measures the RFP-style alternative shipped in `rmc`: the
//! client fetches a per-item location descriptor once (an inline
//! directory AM served by the progress engine), then reads the value
//! with a one-sided `RdmaRead` and validates a seqlock version word —
//! zero server worker involvement on the hot path. Concurrent writers
//! surface as version skew, retried with a fresh descriptor and finally
//! resolved over the ordinary AM get.
//!
//! For each cluster and value size, the same read-heavy zipfian schedule
//! runs twice — AM get vs bypass get — so the delta isolates exactly the
//! server-CPU-bypass effect. The worker-wake counters prove the "zero
//! server CPU" claim; the bypass counters attribute every read, retry,
//! and fallback.

use rmc_bench::{measure_bypass_get, BypassRun, ClusterKind};

const SIZES: [usize; 3] = [4, 1024, 4096];
const OPS: u32 = 2000;
const SEED: u64 = 77;

fn main() {
    println!("Extension: bypass GET (one-sided RDMA read) vs AM GET, read-heavy zipfian");
    println!("({OPS} timed gets over 256 keys, skew 0.99; then a 10%-set mixed phase)");
    let mut records = Vec::new();
    // Cluster B 4 B p50s (am, bypass) for the acceptance check below.
    let mut b_4b_p50 = (0.0f64, 0.0f64);
    for cluster in [ClusterKind::A, ClusterKind::B] {
        println!("\n{}", cluster.label());
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>11} {:>8} {:>8} {:>9} {:>6}",
            "value",
            "mode",
            "p50 us",
            "p95 us",
            "mean us",
            "tps",
            "reads",
            "retries",
            "fallbacks",
            "wakes"
        );
        for size in SIZES {
            let mut per_mode: Vec<(&str, BypassRun)> = Vec::new();
            for bypass in [false, true] {
                let run = measure_bypass_get(cluster, bypass, size, OPS, SEED);
                let mode = if bypass { "bypass" } else { "am-get" };
                println!(
                    "{:>8} {:>10} {:>10.2} {:>10.2} {:>10.2} {:>11.0} {:>8} {:>8} {:>9} {:>6}",
                    size,
                    mode,
                    run.dist.p50_us,
                    run.dist.p95_us,
                    run.dist.mean_us,
                    run.tps,
                    run.bypass_reads,
                    run.bypass_retries,
                    run.bypass_fallbacks,
                    run.read_phase_worker_wakes,
                );
                records.push(
                    rmc_bench::json_out::Record::new()
                        .str("op", "get")
                        .str("cluster", cluster.label())
                        .str("mode", mode)
                        .int("size", size as u64)
                        .num("p50_us", run.dist.p50_us)
                        .num("p95_us", run.dist.p95_us)
                        .num("p99_us", run.dist.p99_us)
                        .num("mean_us", run.dist.mean_us)
                        .num("tps", run.tps)
                        .int("bypass_reads", run.bypass_reads)
                        .int("bypass_retries", run.bypass_retries)
                        .int("bypass_fallbacks", run.bypass_fallbacks)
                        .int("read_phase_worker_wakes", run.read_phase_worker_wakes),
                );
                if bypass {
                    // The zero-server-CPU claim, enforced: during the
                    // timed pure-read phase not one worker woke, while
                    // every timed get is accounted as a one-sided read.
                    assert_eq!(
                        run.read_phase_worker_wakes,
                        0,
                        "{} {size} B: bypassed reads woke server workers",
                        cluster.label()
                    );
                    assert!(
                        run.bypass_reads >= OPS as u64,
                        "{} {size} B: only {} one-sided reads for {OPS} timed gets",
                        cluster.label(),
                        run.bypass_reads
                    );
                } else {
                    assert_eq!(
                        run.bypass_reads, 0,
                        "AM-get control must not touch the one-sided path"
                    );
                    assert!(
                        run.read_phase_worker_wakes > 0,
                        "AM gets are served by workers; wakes cannot be zero"
                    );
                }
                per_mode.push((mode, run));
            }
            let am = &per_mode[0].1;
            let by = &per_mode[1].1;
            if cluster == ClusterKind::B && size == 4 {
                b_4b_p50 = (am.dist.p50_us, by.dist.p50_us);
            }
            println!(
                "{:>8} {:>10} p50 {:.2}x, tps {:.2}x",
                "",
                "delta",
                am.dist.p50_us / by.dist.p50_us,
                by.tps / am.tps
            );
        }
    }

    let (am_p50, by_p50) = b_4b_p50;
    println!(
        "\nCluster B 4 B get: bypass p50 {by_p50:.2} us vs AM p50 {am_p50:.2} us \
         ({:.2}x)",
        am_p50 / by_p50
    );
    assert!(
        by_p50 < am_p50,
        "bypass get must beat the AM get at 4 B on Cluster B: {by_p50:.2} vs {am_p50:.2} us"
    );
    rmc_bench::json_out::write("ext_bypass_get", &records);
    println!("\n(The bypass hot path is one RdmaRead against a registered mirror of the");
    println!("item's slab chunk; the version word at the window's tail detects racing");
    println!("writers, so correctness never depends on the server quiescing.)");
}
