//! Extension: the workload observatory under a zipfian flash crowd.
//!
//! Drives a three-phase workload against a server with the
//! [`rmc::ObservatoryConfig`] enabled and machine-checks every claim the
//! observatory makes:
//!
//! 1. **Steady state** — zipfian reads over 64 keys (mget batches of
//!    1–8 keys plus occasional single-key gets), ~10% writes. Both SLOs
//!    (get ≤ 2 µs, mget ≤ 4 µs worker service) are comfortably met.
//! 2. **Flash crowd** — traffic collapses onto 4 keys fetched in 48-key
//!    mget batches, pushing mget service far past its target. The
//!    error-budget burn crosses the monitor's threshold, the server goes
//!    [`Degraded`](simnet::Health::Degraded), the tracer dumps its
//!    flight recorder, and the exemplar ring is frozen alongside it.
//! 3. **Recovery** — the steady mix returns; the SLO window rolls the
//!    bad buckets out and the monitor transitions back to Healthy.
//!
//! Checked against ground truth maintained by the driver:
//!
//! * every `stats hot` top-K estimate brackets the exact per-key count
//!   within its published error bound, and the flash keys own the top
//!   of the table after the crowd;
//! * the Degraded-episode exemplar dump concentrates in the flash phase
//!   and its span ids resolve to `worker_service` spans in the trace;
//! * `stats slo` shows the mget budget spent and the get budget intact;
//! * `stats prom` carries `# EXEMPLAR` annotations;
//! * a bare rerun (no observatory, no sampler) of the identical workload
//!   lands on the identical virtual clock and throughput bit for bit —
//!   the observatory costs zero virtual time.
//!
//! Results land in `results/ext_workload_observatory.{txt,json}`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use rmc::{
    McClient, McClientConfig, McServer, McServerConfig, ObservatoryConfig, SloObjective, Transport,
    World,
};
use rmc_bench::ClusterKind;
use simnet::sketch::SketchConfig;
use simnet::{
    EventRecorder, ExemplarConfig, Health, HealthMonitor, HealthRules, Layer, MonitorBinding,
    NodeId, Sampler, SamplerConfig, SimDuration,
};

const SEED: u64 = 83;
const STEADY_KEYS: usize = 64;
const FLASH_KEYS: usize = 4;
const STEADY_BATCHES: u32 = 280;
const FLASH_BATCHES: u32 = 150;
const RECOVERY_BATCHES: u32 = 320;
const FLASH_BATCH_KEYS: usize = 48;
const VALUE: &[u8] = &[0x5a; 64];

/// SplitMix64: the driver's deterministic workload generator (identical
/// in the observed and bare runs).
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Cumulative zipf(1.0) distribution over `n` ranks.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (0..n)
        .map(|i| {
            acc += 1.0 / (i + 1) as f64;
            acc
        })
        .collect();
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

fn zipf_pick(cdf: &[f64], state: &mut u64) -> usize {
    let r = (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64;
    cdf.iter().position(|&c| r < c).unwrap_or(cdf.len() - 1)
}

/// Exact per-key observation counts, mirroring
/// [`rmc::WorkloadObservatory::observe_key`]: one observation per key
/// occurrence per request.
#[derive(Default)]
struct Truth {
    counts: BTreeMap<Vec<u8>, u64>,
    reads: u64,
    writes: u64,
}

impl Truth {
    fn read(&mut self, key: &[u8]) {
        *self.counts.entry(key.to_vec()).or_default() += 1;
        self.reads += 1;
    }
    fn write(&mut self, key: &[u8]) {
        *self.counts.entry(key.to_vec()).or_default() += 1;
        self.writes += 1;
    }
}

/// Everything one scenario run measured.
struct RunOutcome {
    /// Virtual clock at the end of phase 3, before any stats traffic.
    end_ns: u64,
    /// Client ops per virtual second over the whole workload.
    tps: f64,
    /// Phase boundary clocks (end of phase 1, end of phase 2), in ns.
    phase_ends: [u64; 2],
    /// Monitor state observed at each phase boundary (observed run).
    phase_health: [Health; 3],
    truth: Truth,
}

fn observatory_config() -> ObservatoryConfig {
    ObservatoryConfig {
        sketch: SketchConfig::default(),
        exemplars: ExemplarConfig {
            capacity: 64,
            quantile: 0.99,
            min_samples: 256,
        },
        slos: vec![
            SloObjective {
                op: "get",
                latency_target: SimDuration::from_micros(2),
                objective: 0.99,
                window: SimDuration::from_micros(1000),
            },
            SloObjective {
                op: "mget",
                latency_target: SimDuration::from_micros(4),
                objective: 0.95,
                window: SimDuration::from_micros(1000),
            },
        ],
    }
}

/// Runs the three-phase workload. `observed` wires up the observatory,
/// sampler, monitor, and trace recorder; bare runs drive the identical
/// byte-for-byte workload with none of them.
#[allow(clippy::type_complexity)]
fn run_scenario(
    cluster: ClusterKind,
    observed: bool,
) -> (
    RunOutcome,
    Option<(
        World,
        McServer,
        McClient,
        Sampler,
        Rc<HealthMonitor>,
        Rc<EventRecorder>,
    )>,
) {
    let world = cluster.world(SEED, 4);
    let recorder = EventRecorder::new();
    let mut srv_cfg = McServerConfig::default();
    if observed {
        world.cluster.tracer().add_sink(recorder.clone());
        srv_cfg.observatory = Some(observatory_config());
    }
    let server = McServer::start(&world, NodeId(0), srv_cfg);
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    let sampler = Sampler::new(
        world.sim(),
        world.cluster.metrics(),
        SamplerConfig::default(),
    );
    let monitor = HealthMonitor::new(HealthRules::default(), NodeId(0));
    if observed {
        let obs = server.observatory().expect("observatory configured");
        monitor.set_tracer(Some(world.cluster.tracer().clone()));
        monitor.set_exemplars(Some(obs.ring()));
        sampler.bind_monitor(MonitorBinding {
            monitor: Rc::clone(&monitor),
            throughput_counter: "client.node1.ops_completed".into(),
            queue_gauge: "client.node1.inflight".into(),
            latency_hist: None,
            error_counter: None,
            slos: obs.slo_trackers(),
        });
        sampler.start();
    }

    let sim = world.sim().clone();
    let sim2 = sim.clone();
    let mon = Rc::clone(&monitor);
    let cl = client.clone();
    let outcome = sim.block_on(async move {
        let mut truth = Truth::default();
        let mut rng = SEED;
        let steady: Vec<String> = (0..STEADY_KEYS).map(|i| format!("key-{i:02}")).collect();
        let flash: Vec<String> = (0..FLASH_KEYS).map(|i| format!("flash-{i}")).collect();
        let cdf = zipf_cdf(STEADY_KEYS);

        // Preload: every key exists before the phases start.
        for k in steady.iter().chain(flash.iter()) {
            cl.set(k.as_bytes(), VALUE, 0, 0).await.unwrap();
            truth.write(k.as_bytes());
        }

        // Phase 1: steady zipfian mix.
        let steady_batch = |rng: &mut u64, b: u32| -> Vec<usize> {
            let size = 1 + (b as usize % 8);
            (0..size).map(|_| zipf_pick(&cdf, rng)).collect()
        };
        for b in 0..STEADY_BATCHES {
            let picks = steady_batch(&mut rng, b);
            let keys: Vec<&[u8]> = picks.iter().map(|&i| steady[i].as_bytes()).collect();
            for k in &keys {
                truth.read(k);
            }
            cl.mget(&keys).await.unwrap();
            if b % 10 == 9 {
                let w = zipf_pick(&cdf, &mut rng);
                cl.set(steady[w].as_bytes(), VALUE, 0, 0).await.unwrap();
                truth.write(steady[w].as_bytes());
                for hot in &steady[..2] {
                    cl.get(hot.as_bytes()).await.unwrap().unwrap();
                    truth.read(hot.as_bytes());
                }
            }
        }
        let p1_end = sim2.now().as_nanos();
        let h1 = mon.state();

        // Phase 2: flash crowd — 48-key batches over 4 keys.
        for _ in 0..FLASH_BATCHES {
            let keys: Vec<&[u8]> = (0..FLASH_BATCH_KEYS)
                .map(|i| flash[i % FLASH_KEYS].as_bytes())
                .collect();
            for k in &keys {
                truth.read(k);
            }
            cl.mget(&keys).await.unwrap();
        }
        let p2_end = sim2.now().as_nanos();
        let h2 = mon.state();

        // Phase 3: the steady mix returns.
        for b in 0..RECOVERY_BATCHES {
            let picks = steady_batch(&mut rng, b);
            let keys: Vec<&[u8]> = picks.iter().map(|&i| steady[i].as_bytes()).collect();
            for k in &keys {
                truth.read(k);
            }
            cl.mget(&keys).await.unwrap();
            if b % 10 == 9 {
                let w = zipf_pick(&cdf, &mut rng);
                cl.set(steady[w].as_bytes(), VALUE, 0, 0).await.unwrap();
                truth.write(steady[w].as_bytes());
            }
        }
        let end = sim2.now().as_nanos();
        let h3 = mon.state();
        let ops = cl.ops_issued();
        let tps = ops as f64 / (end as f64 / 1e9);
        RunOutcome {
            end_ns: end,
            tps,
            phase_ends: [p1_end, p2_end],
            phase_health: [h1, h2, h3],
            truth,
        }
    });
    if observed {
        (
            outcome,
            Some((world, server, client, sampler, monitor, recorder)),
        )
    } else {
        (outcome, None)
    }
}

fn stat<'a>(pairs: &'a [(String, String)], key: &str) -> &'a str {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("missing stat {key}"))
}

/// Pulls `name=value` out of an exemplar line.
fn exemplar_field<'a>(line: &'a str, name: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("exemplar line missing {name}=: {line}"))
}

fn main() {
    println!("Extension: workload observatory under a zipfian flash crowd (UCR)");
    let mut records = Vec::new();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "workload observatory: {STEADY_BATCHES} steady / {FLASH_BATCHES} flash / \
         {RECOVERY_BATCHES} recovery batches, seed {SEED}"
    );
    for cluster in [ClusterKind::A, ClusterKind::B] {
        println!("\n{} / UCR IB", cluster.label());
        let (run, ctx) = run_scenario(cluster, true);
        let (world, _server, client, sampler, monitor, recorder) = ctx.unwrap();
        sampler.stop();

        // --- Phase / health trajectory -------------------------------
        let [h1, h2, h3] = run.phase_health;
        assert_eq!(h1, Health::Healthy, "steady phase must stay healthy");
        assert_eq!(
            h2,
            Health::Degraded,
            "the flash crowd must burn the mget error budget"
        );
        assert_eq!(h3, Health::Healthy, "the monitor must recover");
        let transitions = monitor.transitions();
        assert!(
            transitions
                .iter()
                .any(|t| t.to == Health::Degraded && t.reason.contains("error-budget burn")),
            "degradation must cite the budget-burn rule: {transitions:?}"
        );
        assert!(
            world.cluster.tracer().fault_count() >= 1,
            "Degraded must dump the flight recorder"
        );

        // --- Exemplar dump frozen at the Degraded transition ---------
        let dumps = monitor.exemplar_dumps();
        assert!(!dumps.is_empty(), "Degraded must freeze the exemplar ring");
        let dump_lines: Vec<&str> = dumps[0]
            .lines()
            .filter(|l| l.contains("op=") && l.contains("at_us="))
            .collect();
        assert!(!dump_lines.is_empty(), "dump carries exemplars");
        let [p1_end, _p2_end] = run.phase_ends;
        let in_flash = dump_lines
            .iter()
            .filter(|l| {
                let at_us: f64 = exemplar_field(l, "at_us").parse().unwrap();
                at_us * 1000.0 > p1_end as f64
            })
            .count();
        assert!(
            in_flash * 2 >= dump_lines.len(),
            "exemplars concentrate in the flash phase: {in_flash}/{}",
            dump_lines.len()
        );
        assert!(
            dump_lines.iter().any(|l| l.contains("op=mget")),
            "the saturating op is represented"
        );

        // --- Exemplar span ids resolve in the trace ------------------
        let span: u64 = exemplar_field(
            dump_lines
                .iter()
                .find(|l| l.contains("op=mget"))
                .expect("an mget exemplar"),
            "span",
        )
        .parse()
        .expect("numeric span id");
        assert!(
            recorder
                .events()
                .iter()
                .any(|e| e.layer == Layer::Core && e.name == "worker_service" && e.op == span),
            "exemplar span {span} must resolve to a worker_service trace span"
        );

        // --- Stats verbs over the wire + sketch vs ground truth ------
        let sim = world.sim().clone();
        let truth = &run.truth;
        let (hot, slo, exemplars, prom_text) = sim.block_on({
            let client = client.clone();
            async move {
                let hot = client.stats_report("hot").await.unwrap();
                let slo = client.stats_report("slo").await.unwrap();
                let ex = client.stats_report("exemplars").await.unwrap();
                let prom = client.stats_report("prom").await.unwrap();
                let text: String = prom.iter().map(|(k, v)| format!("{k} {v}\n")).collect();
                (hot, slo, ex, text)
            }
        });
        let total: u64 = stat(&hot, "wl.total").parse().unwrap();
        let reads: u64 = stat(&hot, "wl.reads").parse().unwrap();
        let writes: u64 = stat(&hot, "wl.writes").parse().unwrap();
        assert_eq!(total, truth.reads + truth.writes, "sketch saw every key");
        assert_eq!(reads, truth.reads);
        assert_eq!(writes, truth.writes);
        let mut checked = 0usize;
        for rank in 0.. {
            let Some((_, key)) = hot.iter().find(|(k, _)| *k == format!("hot.{rank}.key")) else {
                break;
            };
            let est: u64 = stat(&hot, &format!("hot.{rank}.est")).parse().unwrap();
            let err: u64 = stat(&hot, &format!("hot.{rank}.err")).parse().unwrap();
            let exact = *truth
                .counts
                .get(key.as_bytes())
                .unwrap_or_else(|| panic!("hot table names a key the driver never touched: {key}"));
            assert!(
                est.saturating_sub(err) <= exact && exact <= est,
                "hot.{rank} {key}: exact {exact} outside [est-err, est] = \
                 [{}, {est}]",
                est.saturating_sub(err)
            );
            checked += 1;
        }
        assert!(checked >= FLASH_KEYS, "top-K table populated");
        let top_key = stat(&hot, "hot.0.key");
        assert!(
            top_key.starts_with("flash-"),
            "the flash crowd owns the top of the table, got {top_key}"
        );

        // --- SLO accounting ------------------------------------------
        let mget_bad: u64 = stat(&slo, "slo.mget.bad").parse().unwrap();
        let get_bad: u64 = stat(&slo, "slo.get.bad").parse().unwrap();
        assert_eq!(
            mget_bad, FLASH_BATCHES as u64,
            "every flash batch blows the mget target, nothing else does"
        );
        assert_eq!(get_bad, 0, "single-key gets never breach their SLO");
        let mget_burn: f64 = stat(&slo, "slo.mget.burn").parse().unwrap();
        assert!(
            mget_burn < 1.0,
            "burn subsides after recovery, got {mget_burn}"
        );

        // --- Exemplar gate counters + prom annotations ---------------
        let seen: u64 = stat(&exemplars, "exemplars.seen").parse().unwrap();
        let captured: u64 = stat(&exemplars, "exemplars.captured").parse().unwrap();
        assert!(seen > captured && captured > 0, "the gate is selective");
        assert!(
            prom_text.contains("# EXEMPLAR") && prom_text.contains("span="),
            "the exposition carries exemplar annotations"
        );
        assert!(
            prom_text.contains("wl_slot_imbalance"),
            "workload gauges exposed"
        );

        // --- Zero virtual-time cost ----------------------------------
        let (bare, _) = run_scenario(cluster, false);
        assert_eq!(
            run.end_ns, bare.end_ns,
            "the observatory moved the virtual clock"
        );
        assert_eq!(
            run.tps.to_bits(),
            bare.tps.to_bits(),
            "the observatory changed the measured throughput"
        );

        // --- Report ---------------------------------------------------
        let burn_series = sampler.values("slo.node0.mget.burn");
        let burn_peak = burn_series.iter().cloned().fold(0.0f64, f64::max);
        let degraded_at = transitions
            .iter()
            .find(|t| t.to == Health::Degraded)
            .map(|t| t.at.as_nanos())
            .unwrap();
        let recovered_at = transitions
            .iter()
            .find(|t| t.from == Health::Degraded && t.to == Health::Healthy)
            .map(|t| t.at.as_nanos())
            .unwrap();
        println!(
            "{:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8}",
            "phase1_us", "phase2_us", "end_us", "degrade", "recover", "burn_pk", "tps"
        );
        println!(
            "{:>10.1} {:>10.1} {:>10.1} {:>9.1} {:>9.1} {:>9.1} {:>8.0}",
            p1_end as f64 / 1000.0,
            run.phase_ends[1] as f64 / 1000.0,
            run.end_ns as f64 / 1000.0,
            degraded_at as f64 / 1000.0,
            recovered_at as f64 / 1000.0,
            burn_peak,
            run.tps,
        );
        println!(
            "hot.0 {} est {} (exact {}), exemplars {}/{} captured, {} in dump",
            top_key,
            stat(&hot, "hot.0.est"),
            truth.counts[top_key.as_bytes()],
            captured,
            seen,
            dump_lines.len()
        );
        let _ = writeln!(
            report,
            "{}: degrade @{:.1}us recover @{:.1}us burn-peak {:.1}x \
             top={} exemplars={}/{} clock-identical-to-bare={}",
            cluster.label(),
            degraded_at as f64 / 1000.0,
            recovered_at as f64 / 1000.0,
            burn_peak,
            top_key,
            captured,
            seen,
            run.end_ns == bare.end_ns,
        );
        records.push(
            rmc_bench::json_out::Record::new()
                .str("op", "trajectory")
                .str("cluster", cluster.label())
                .str("transport", "UCR")
                .num("phase1_end_us", p1_end as f64 / 1000.0)
                .num("phase2_end_us", run.phase_ends[1] as f64 / 1000.0)
                .num("end_us", run.end_ns as f64 / 1000.0)
                .num("degraded_at_us", degraded_at as f64 / 1000.0)
                .num("recovered_at_us", recovered_at as f64 / 1000.0)
                .num("burn_peak", burn_peak)
                .num("tps", run.tps)
                .int("transitions", transitions.len() as u64)
                .int("exemplar_dumps", dumps.len() as u64),
        );
        records.push(
            rmc_bench::json_out::Record::new()
                .str("op", "sketch")
                .str("cluster", cluster.label())
                .str("transport", "UCR")
                .int("total", total)
                .int("reads", reads)
                .int("writes", writes)
                .str("top_key", top_key)
                .int("top_est", stat(&hot, "hot.0.est").parse().unwrap())
                .int("top_err", stat(&hot, "hot.0.err").parse().unwrap())
                .int("top_exact", truth.counts[top_key.as_bytes()])
                .int("hot_checked", checked as u64)
                .num(
                    "slot_imbalance",
                    stat(&hot, "wl.slot_imbalance").parse().unwrap(),
                )
                .num(
                    "hot_coverage",
                    stat(&hot, "wl.hot_coverage").parse().unwrap(),
                ),
        );
        records.push(
            rmc_bench::json_out::Record::new()
                .str("op", "slo")
                .str("cluster", cluster.label())
                .str("transport", "UCR")
                .int("mget_bad", mget_bad)
                .int("mget_good", stat(&slo, "slo.mget.good").parse().unwrap())
                .int("get_bad", get_bad)
                .int("get_good", stat(&slo, "slo.get.good").parse().unwrap())
                .num("mget_burn_final", mget_burn)
                .int("exemplars_seen", seen)
                .int("exemplars_captured", captured),
        );
    }
    rmc_bench::json_out::write("ext_workload_observatory", &records);
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/ext_workload_observatory.txt", &report))
    {
        Ok(()) => eprintln!("wrote results/ext_workload_observatory.txt"),
        Err(e) => eprintln!("could not write results/ext_workload_observatory.txt: {e}"),
    }
    println!("\n(Sketch estimates bracket exact counts within published bounds; the budget-burn");
    println!("rule degrades and recovers on the flash crowd; instrumented and bare runs are");
    println!("clock-identical — the observatory is free in virtual time.)");
}
