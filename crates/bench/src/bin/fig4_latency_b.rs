//! Figure 4: latency of Set and Get operations on **Cluster B** (QDR),
//! small (a, c) and large (b, d) messages, across UCR / SDP / IPoIB.
//! (No 10GigE cards on this cluster, §VI-B; the SDP column shows the
//! jitter artifact the paper reports on QDR adapters.)

use rmc_bench::json_out::{self, Record};
use rmc_bench::{
    latency_sweep, render_latency_table, ClusterKind, Mix, DEFAULT_ITERS, LARGE_SIZES, SMALL_SIZES,
};

fn main() {
    let cluster = ClusterKind::B;
    let mut records = Vec::new();
    let panels = [
        (
            "Figure 4(a): Latency of Set - Small Message, Cluster B (us)",
            Mix::SetOnly,
            SMALL_SIZES,
        ),
        (
            "Figure 4(b): Latency of Set - Large Message, Cluster B (us)",
            Mix::SetOnly,
            LARGE_SIZES,
        ),
        (
            "Figure 4(c): Latency of Get - Small Message, Cluster B (us)",
            Mix::GetOnly,
            SMALL_SIZES,
        ),
        (
            "Figure 4(d): Latency of Get - Large Message, Cluster B (us)",
            Mix::GetOnly,
            LARGE_SIZES,
        ),
    ];
    for (title, mix, sizes) in panels {
        let columns: Vec<_> = cluster
            .transports()
            .into_iter()
            .map(|t| {
                (
                    t.label().to_string(),
                    latency_sweep(cluster, t, mix, sizes, DEFAULT_ITERS, 4),
                )
            })
            .collect();
        for (label, points) in &columns {
            for p in points {
                records.push(
                    Record::new()
                        .str("op", if mix == Mix::SetOnly { "set" } else { "get" })
                        .str("transport", label.as_str())
                        .str("cluster", cluster.label())
                        .int("size", p.size as u64)
                        .num("mean_us", p.mean_us),
                );
            }
        }
        println!("{}", render_latency_table(title, sizes, &columns));
    }
    json_out::write("fig4_latency_b", &records);
}
