//! `mcslap` — a memslap-style load generator (the benchmark the paper's
//! suite is "inspired by", §VI), driving the standard client API.
//!
//! ```text
//! cargo run --release -p rmc-bench --bin mcslap -- \
//!     [--cluster a|b] [--transport ucr|ucr-roce|sdp|ipoib|toe|1gige] \
//!     [--clients N] [--ops N] [--value-size BYTES] [--set-fraction F] \
//!     [--key-space N] [--zipf S] [--seed N] [--depth N]
//! ```

use rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport};
use rmc_bench::ClusterKind;
use simnet::{NodeId, Stack};

struct Args {
    cluster: ClusterKind,
    transport: Transport,
    clients: u32,
    ops: u32,
    value_size: usize,
    set_fraction: f64,
    key_space: usize,
    zipf: f64,
    seed: u64,
    depth: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        cluster: ClusterKind::B,
        transport: Transport::Ucr,
        clients: 4,
        ops: 2_000,
        value_size: 1024,
        set_fraction: 0.1,
        key_space: 10_000,
        zipf: 0.99,
        seed: 42,
        depth: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).map(String::as_str);
        fn req<'a>(flag: &str, v: Option<&'a str>) -> &'a str {
            v.unwrap_or_else(|| die(&format!("{flag} needs a value")))
        }
        match flag {
            "--cluster" => {
                args.cluster = match req(flag, value) {
                    "a" | "A" => ClusterKind::A,
                    "b" | "B" => ClusterKind::B,
                    other => die(&format!("unknown cluster {other}")),
                }
            }
            "--transport" => {
                args.transport = match req(flag, value) {
                    "ucr" => Transport::Ucr,
                    "ucr-roce" => Transport::UcrRoce,
                    "sdp" => Transport::Sockets(Stack::Sdp),
                    "ipoib" => Transport::Sockets(Stack::Ipoib),
                    "toe" => Transport::Sockets(Stack::TenGigEToe),
                    "1gige" => Transport::Sockets(Stack::OneGigE),
                    other => die(&format!("unknown transport {other}")),
                }
            }
            "--clients" => args.clients = req(flag, value).parse().unwrap_or_else(|_| die("bad N")),
            "--ops" => args.ops = req(flag, value).parse().unwrap_or_else(|_| die("bad N")),
            "--value-size" => {
                args.value_size = req(flag, value).parse().unwrap_or_else(|_| die("bad size"))
            }
            "--set-fraction" => {
                args.set_fraction = req(flag, value)
                    .parse()
                    .unwrap_or_else(|_| die("bad fraction"))
            }
            "--key-space" => {
                args.key_space = req(flag, value).parse().unwrap_or_else(|_| die("bad N"))
            }
            "--zipf" => args.zipf = req(flag, value).parse().unwrap_or_else(|_| die("bad skew")),
            "--seed" => args.seed = req(flag, value).parse().unwrap_or_else(|_| die("bad seed")),
            "--depth" => {
                args.depth = req(flag, value)
                    .parse()
                    .unwrap_or_else(|_| die("bad depth"));
                if args.depth == 0 {
                    die("--depth must be >= 1");
                }
            }
            "--help" | "-h" => {
                println!(
                    "mcslap: memslap-style load generator\n\
                     --cluster a|b        testbed (default b)\n\
                     --transport ucr|ucr-roce|sdp|ipoib|toe|1gige (default ucr)\n\
                     --clients N          concurrent clients (default 4)\n\
                     --ops N              operations per client (default 2000)\n\
                     --value-size BYTES   value size (default 1024)\n\
                     --set-fraction F     fraction of sets (default 0.1)\n\
                     --key-space N        distinct keys (default 10000)\n\
                     --zipf S             key popularity skew (default 0.99)\n\
                     --seed N             RNG seed (default 42)\n\
                     --depth N            requests kept in flight per connection\n\
                     \x20                    (default 1 = classic closed loop; >1\n\
                     \x20                    batches gets through the pipelined API)"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("mcslap: {msg} (try --help)");
    std::process::exit(2);
}

fn main() {
    let a = parse_args();
    let world = a.cluster.world(a.seed, a.clients + 1);
    if matches!(a.transport, Transport::UcrRoce) && world.roce.is_none() {
        die("this cluster has no RoCE-capable adapters (use --cluster a)");
    }
    if !world.profile().supports(a.transport.stack()) {
        die("this cluster lacks that transport's hardware");
    }
    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let sim = world.sim().clone();

    let mut joins = Vec::new();
    for c in 0..a.clients {
        let mut cfg = McClientConfig::single(a.transport, NodeId(0));
        cfg.pipeline_depth = a.depth;
        let client = McClient::new(&world, NodeId(1 + c), cfg);
        let sim2 = sim.clone();
        let (value_size, set_fraction, key_space, zipf, ops, depth) = (
            a.value_size,
            a.set_fraction,
            a.key_space,
            a.zipf,
            a.ops,
            a.depth,
        );
        joins.push(sim.spawn(async move {
            let value = vec![0xabu8; value_size];
            let mut hits = 0u64;
            let mut gets = 0u64;
            // Gets waiting to be flushed through the pipelined batch API
            // (depth > 1 only; a batch flushes at depth*4 keys, before any
            // set, and at the end of the run).
            let mut batch: Vec<String> = Vec::new();
            async fn flush(client: &McClient, batch: &mut Vec<String>, hits: &mut u64) {
                if batch.is_empty() {
                    return;
                }
                let keys: Vec<&[u8]> = batch.iter().map(|k| k.as_bytes()).collect();
                let got = client.get_many(&keys).await.expect("get_many");
                *hits += got.iter().filter(|v| v.is_some()).count() as u64;
                batch.clear();
            }
            for _ in 0..ops {
                let (do_set, key_idx) =
                    sim2.with_rng(|r| (r.gen_bool(set_fraction), r.gen_zipf(key_space, zipf)));
                let key = format!("mcslap-{key_idx}");
                if do_set {
                    flush(&client, &mut batch, &mut hits).await;
                    client.set(key.as_bytes(), &value, 0, 0).await.expect("set");
                } else {
                    gets += 1;
                    if depth > 1 {
                        batch.push(key);
                        if batch.len() >= depth * 4 {
                            flush(&client, &mut batch, &mut hits).await;
                        }
                    } else if client.get(key.as_bytes()).await.expect("get").is_some() {
                        hits += 1;
                    }
                }
            }
            flush(&client, &mut batch, &mut hits).await;
            (hits, gets)
        }));
    }

    let sim2 = sim.clone();
    let (elapsed, hits, gets) = sim.block_on(async move {
        let t0 = sim2.now();
        let mut hits = 0u64;
        let mut gets = 0u64;
        for j in joins {
            let (h, g) = j.await;
            hits += h;
            gets += g;
        }
        ((sim2.now() - t0).as_secs_f64(), hits, gets)
    });
    let ops_total = a.clients as u64 * a.ops as u64;

    println!(
        "mcslap results ({}, {} clients)",
        a.transport.label(),
        a.clients
    );
    println!("  cluster        : {}", a.cluster.label());
    if a.depth > 1 {
        println!("  pipeline depth : {}", a.depth);
    }
    println!("  operations     : {ops_total}");
    println!("  elapsed (sim)  : {:.3} ms", elapsed * 1e3);
    println!(
        "  throughput     : {:.1}K ops/s",
        ops_total as f64 / elapsed / 1e3
    );
    println!(
        "  mean latency   : {:.1} us",
        elapsed * 1e6 * a.clients as f64 / ops_total as f64
    );
    if gets > 0 {
        println!(
            "  get hit rate   : {:.1}%",
            100.0 * hits as f64 / gets as f64
        );
    }
    let record = rmc_bench::json_out::Record::new()
        .str("op", "mixed")
        .str("transport", a.transport.label())
        .str("cluster", a.cluster.label())
        .int("size", a.value_size as u64)
        .int("clients", a.clients as u64)
        .int("depth", a.depth as u64)
        .int("ops", ops_total)
        .num("set_fraction", a.set_fraction)
        .num("tps", ops_total as f64 / elapsed)
        .num(
            "mean_us",
            elapsed * 1e6 * a.clients as f64 / ops_total as f64,
        )
        .num(
            "hit_rate",
            if gets > 0 {
                hits as f64 / gets as f64
            } else {
                f64::NAN
            },
        );
    rmc_bench::json_out::write("mcslap", &[record]);
}
