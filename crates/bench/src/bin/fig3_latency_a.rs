//! Figure 3: latency of Set and Get operations on **Cluster A** (DDR),
//! small (a, c) and large (b, d) messages, across UCR / SDP / IPoIB /
//! 10GigE-TOE / 1GigE.

use rmc_bench::json_out::{self, Record};
use rmc_bench::{
    latency_sweep, render_latency_table, ClusterKind, Mix, DEFAULT_ITERS, LARGE_SIZES, SMALL_SIZES,
};

fn main() {
    let cluster = ClusterKind::A;
    let mut records = Vec::new();
    let panels = [
        (
            "Figure 3(a): Latency of Set - Small Message, Cluster A (us)",
            Mix::SetOnly,
            SMALL_SIZES,
        ),
        (
            "Figure 3(b): Latency of Set - Large Message, Cluster A (us)",
            Mix::SetOnly,
            LARGE_SIZES,
        ),
        (
            "Figure 3(c): Latency of Get - Small Message, Cluster A (us)",
            Mix::GetOnly,
            SMALL_SIZES,
        ),
        (
            "Figure 3(d): Latency of Get - Large Message, Cluster A (us)",
            Mix::GetOnly,
            LARGE_SIZES,
        ),
    ];
    for (title, mix, sizes) in panels {
        let columns: Vec<_> = cluster
            .transports()
            .into_iter()
            .map(|t| {
                (
                    t.label().to_string(),
                    latency_sweep(cluster, t, mix, sizes, DEFAULT_ITERS, 3),
                )
            })
            .collect();
        for (label, points) in &columns {
            for p in points {
                records.push(
                    Record::new()
                        .str("op", if mix == Mix::SetOnly { "set" } else { "get" })
                        .str("transport", label.as_str())
                        .str("cluster", cluster.label())
                        .int("size", p.size as u64)
                        .num("mean_us", p.mean_us),
                );
            }
        }
        println!("{}", render_latency_table(title, sizes, &columns));
    }
    json_out::write("fig3_latency_a", &records);
}
