//! Extension tooling: a cross-layer Perfetto timeline of one UCR get.
//!
//! Runs a single Memcached client against a server over UCR (RC path) on
//! Cluster B, records every trace event the run emits — verbs work
//! requests and completions, UCR active messages and counter bumps, the
//! server's dispatch and worker-service span, the client's operation span
//! — and exports them as Chrome/Perfetto trace JSON to
//! `results/ext_trace_timeline.trace.json`. Open the file at
//! <https://ui.perfetto.dev> to see the request travel down the client's
//! layers, across the wire, and back: each node is a process, each
//! worker/endpoint/QP a track, and every span of one operation shares its
//! op id. Two gets are traced — a 4 KB eager get and a 64 KB rendezvous
//! get, so the timeline shows both protocol shapes (paper §IV-B).
//!
//! The exported JSON is re-parsed before the bin exits, so a corrupt
//! export fails the run instead of silently producing an unloadable file.

use std::io::Write as _;

use rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use simnet::trace_export::{chrome_trace_json, parse_json};
use simnet::{EventRecorder, Layer, NodeId};

fn main() {
    let world = World::cluster_b(47, 4);
    let recorder = EventRecorder::new();
    world.cluster.tracer().add_sink(recorder.clone());

    let _server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    let sim = world.sim().clone();
    sim.clone().block_on(async move {
        // 4 KB rides the eager path; 64 KB exceeds the 8 KB threshold and
        // comes back by rendezvous RDMA read.
        client
            .set(b"eager", &vec![0x11u8; 4096], 0, 0)
            .await
            .unwrap();
        client
            .set(b"rndv", &vec![0x22u8; 64 << 10], 0, 0)
            .await
            .unwrap();
        client.get(b"eager").await.unwrap().unwrap();
        client.get(b"rndv").await.unwrap().unwrap();
    });

    let events = recorder.events();
    let json = chrome_trace_json(&events);
    let parsed = parse_json(&json).expect("exported trace must be valid JSON");
    let n = parsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .map(|a| a.len())
        .unwrap_or(0);
    assert!(n > 0, "exported trace must be non-empty");

    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/ext_trace_timeline.trace.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write trace file");

    println!("Extension: cross-layer Perfetto timeline of UCR set/get (Cluster B)");
    println!("{:>10}{:>10}", "layer", "events");
    let tracer = world.cluster.tracer();
    for layer in Layer::ALL {
        println!("{:>10}{:>10}", layer.label(), tracer.layer_count(layer));
    }
    println!("{:>10}{:>10}", "total", tracer.total_events());
    println!("\nwrote {path} ({n} trace entries) — load it at ui.perfetto.dev");
}
