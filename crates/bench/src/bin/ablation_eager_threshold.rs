//! Ablation: the eager/rendezvous switch point.
//!
//! The paper fixes the eager path at one 8 KB network buffer (§V, "Note on
//! Small Set/Get operations"). This study sweeps the threshold and
//! measures get latency for mid-size values: below the threshold a value
//! travels inline with two staging copies; above it, UCR sends the header
//! only and the target pulls the data with a zero-copy RDMA read — paying
//! an extra control round trip. The crossover justifies the 8 KB choice.

use rmc::{McClient, McClientConfig, McServer, McServerConfig, Transport, World};
use simnet::NodeId;

fn measure(threshold: usize, size: usize) -> f64 {
    let world = World::cluster_b(11, 4);
    let server = McServer::start(&world, NodeId(0), McServerConfig::default());
    let client = McClient::new(
        &world,
        NodeId(1),
        McClientConfig::single(Transport::Ucr, NodeId(0)),
    );
    server.ucr_runtime().unwrap().set_eager_threshold(threshold);
    let sim = world.sim().clone();
    let sim2 = sim.clone();
    sim.block_on(async move {
        client.ucr_runtime().unwrap().set_eager_threshold(threshold);
        let value = vec![3u8; size];
        client.set(b"k", &value, 0, 0).await.unwrap();
        client.get(b"k").await.unwrap().unwrap();
        let iters = 100;
        let t0 = sim2.now();
        for _ in 0..iters {
            client.get(b"k").await.unwrap().unwrap();
        }
        (sim2.now() - t0).as_micros_f64() / iters as f64
    })
}

fn main() {
    let thresholds = [512usize, 1024, 2048, 4096, 8192];
    // 992 sits exactly at the 1024 boundary: the get response's payload is
    // the value plus the 32-byte response header, so at thr=1024 a 992 B
    // value is the largest that still rides the eager path (the threshold
    // applies to payload bytes; the 64-byte packet header is carried by
    // the receive buffers' headroom).
    let sizes = [256usize, 992, 1024, 2048, 4096, 7000];
    println!("Ablation: UCR eager/rendezvous threshold vs get latency (us), Cluster B");
    print!("{:>10}", "value");
    for t in thresholds {
        print!("{:>10}", format!("thr={t}"));
    }
    println!();
    let mut records = Vec::new();
    for size in sizes {
        print!("{size:>10}");
        for t in thresholds {
            let us = measure(t, size);
            print!("{us:>10.1}");
            records.push(
                rmc_bench::json_out::Record::new()
                    .str("op", "get")
                    .str("transport", "UCR IB")
                    .str("cluster", "Cluster B (QDR)")
                    .int("size", size as u64)
                    .int("eager_threshold", t as u64)
                    .num("mean_us", us),
            );
        }
        println!();
    }
    rmc_bench::json_out::write("ablation_eager_threshold", &records);
    println!("\n(Values under the threshold ride the eager path; larger ones pay an");
    println!("extra rendezvous round trip but skip both staging copies.)");
}
