//! Ablation: active-message counter cost (paper §IV-C).
//!
//! The origin and completion counters are optional; passing NULL
//! suppresses the associated internal message. This study measures the
//! per-message cost of each counter variant on a raw UCR echo: the
//! completion counter adds a Fin message from the target; the origin
//! counter is free for eager traffic (local completion) but adds the Fin
//! for rendezvous transfers.

use std::rc::Rc;

use simnet::{Cluster, NodeId, SimDuration};
use ucr::{AmData, Endpoint, FnHandler, SendOptions, UcrRuntime};
use verbs::IbFabric;

const SINK: u16 = 7;

#[derive(Clone, Copy)]
enum Counters {
    None,
    Origin,
    Completion,
    Both,
}

impl Counters {
    fn label(self) -> &'static str {
        match self {
            Counters::None => "none",
            Counters::Origin => "origin",
            Counters::Completion => "completion",
            Counters::Both => "both",
        }
    }
}

fn measure(which: Counters, size: usize) -> (f64, u64) {
    let cluster = Rc::new(Cluster::cluster_b(17, 2));
    let fabric = IbFabric::new(cluster.clone());
    let server = UcrRuntime::new(&fabric, NodeId(1));
    server.register_handler(SINK, FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}));
    let listener = server.listen(9000).unwrap();
    server.sim().spawn(async move {
        let _ = listener.accept().await;
    });
    let client = UcrRuntime::new(&fabric, NodeId(0));
    let sim = cluster.sim().clone();
    let sim2 = sim.clone();
    let server2 = server.clone();
    let us_per_op = sim.block_on(async move {
        let ep = client
            .connect(NodeId(1), 9000, SimDuration::from_millis(100))
            .await
            .unwrap();
        let data = vec![1u8; size];
        let iters = 200u64;
        let t0 = sim2.now();
        for _ in 0..iters {
            let origin = client.counter();
            let completion = client.counter();
            let opts = match which {
                Counters::None => SendOptions::default(),
                Counters::Origin => SendOptions {
                    origin: Some(origin.clone()),
                    ..Default::default()
                },
                Counters::Completion => SendOptions {
                    completion: Some(completion.clone()),
                    ..Default::default()
                },
                Counters::Both => SendOptions {
                    origin: Some(origin.clone()),
                    completion: Some(completion.clone()),
                    ..Default::default()
                },
            };
            ep.send_message(SINK, b"hdr", &data, opts).await.unwrap();
            // Wait on whichever counters were requested so the cost of
            // their internal messages lands on the critical path.
            match which {
                Counters::None => {}
                Counters::Origin => origin
                    .wait_for(1, SimDuration::from_millis(10))
                    .await
                    .unwrap(),
                Counters::Completion => completion
                    .wait_for(1, SimDuration::from_millis(10))
                    .await
                    .unwrap(),
                Counters::Both => {
                    origin
                        .wait_for(1, SimDuration::from_millis(10))
                        .await
                        .unwrap();
                    completion
                        .wait_for(1, SimDuration::from_millis(10))
                        .await
                        .unwrap();
                }
            }
        }
        (sim2.now() - t0).as_micros_f64() / iters as f64
    });
    (us_per_op, server2.stats().fins_sent.get())
}

fn main() {
    println!("Ablation: counter variants vs per-message cost (UCR, Cluster B)");
    println!(
        "{:>12}{:>16}{:>12}{:>16}{:>12}",
        "counters", "64B us/msg", "fins", "64KB us/msg", "fins"
    );
    let mut records = Vec::new();
    for which in [
        Counters::None,
        Counters::Origin,
        Counters::Completion,
        Counters::Both,
    ] {
        let (small, fins_small) = measure(which, 64);
        let (large, fins_large) = measure(which, 64 * 1024);
        println!(
            "{:>12}{small:>16.2}{fins_small:>12}{large:>16.2}{fins_large:>12}",
            which.label()
        );
        for (size, us, fins) in [(64u64, small, fins_small), (64 * 1024, large, fins_large)] {
            records.push(
                rmc_bench::json_out::Record::new()
                    .str("op", "am_echo")
                    .str("transport", "UCR IB")
                    .str("cluster", "Cluster B (QDR)")
                    .str("counters", which.label())
                    .int("size", size)
                    .num("mean_us", us)
                    .int("fins", fins),
            );
        }
    }
    rmc_bench::json_out::write("ablation_counters", &records);
    println!("\n(Eager + origin counter costs nothing extra: local completion.");
    println!("Completion counters add one internal message; rendezvous always");
    println!("sends a Fin to release the advertised source buffer.)");
}
