//! Extension experiment: RC vs UD endpoint scaling (paper §VII).
//!
//! "We aim to leverage the Unreliable Datagram transport to scale up the
//! total number of clients that can be handled by a single server." This
//! study runs a UCR echo service with N clients over (a) one RC endpoint
//! per client — the paper's evaluated design — and (b) unreliable
//! endpoints multiplexed over a **single** server UD queue pair, and
//! reports the server's QP footprint and the aggregate small-message
//! throughput of each.

use std::rc::Rc;

use simnet::{Cluster, NodeId, SimDuration};
use ucr::{AmData, Endpoint, FnHandler, SendOptions, UcrRuntime};
use verbs::IbFabric;

const ECHO: u16 = 1;
const REPLY: u16 = 2;

struct EchoHandler;

impl ucr::AmHandler for EchoHandler {
    fn on_complete(&self, ep: &Endpoint, hdr: &[u8], data: AmData) {
        let ctr = u64::from_le_bytes(hdr[..8].try_into().unwrap());
        ep.post_message(
            REPLY,
            hdr.to_vec(),
            data.into_vec().unwrap_or_default(),
            SendOptions {
                target_ctr: ctr,
                ..Default::default()
            },
        );
    }
}

/// Runs `clients` echo loops; returns (server QPs, aggregate msgs/sec).
fn run(clients: u32, unreliable: bool) -> (usize, f64) {
    let cluster = Rc::new(Cluster::cluster_b(23, clients + 1));
    let fabric = IbFabric::new(cluster.clone());
    let server = UcrRuntime::new(&fabric, NodeId(0));
    server.register_handler(ECHO, EchoHandler);
    let sim = cluster.sim().clone();

    let ud_qpn = if unreliable { server.ud_bind() } else { 0 };
    if !unreliable {
        let listener = server.listen(9000).unwrap();
        let n = clients as usize;
        sim.spawn(async move {
            for _ in 0..n {
                if listener.accept().await.is_err() {
                    break;
                }
            }
        });
    }

    let ops = 400u32;
    let mut joins = Vec::new();
    for c in 0..clients {
        let client = UcrRuntime::new(&fabric, NodeId(1 + c));
        client.register_handler(REPLY, FnHandler(|_: &Endpoint, _: &[u8], _: AmData| {}));
        joins.push(sim.spawn(async move {
            let ep = if unreliable {
                client.ud_endpoint(NodeId(0), ud_qpn)
            } else {
                client
                    .connect(NodeId(0), 9000, SimDuration::from_millis(100))
                    .await
                    .unwrap()
            };
            for _ in 0..ops {
                let ctr = client.counter();
                let hdr = ctr.id().to_le_bytes().to_vec();
                ep.send_message(ECHO, &hdr, b"req-" as &[u8], SendOptions::default())
                    .await
                    .unwrap();
                ctr.wait_for(1, SimDuration::from_millis(100))
                    .await
                    .unwrap();
            }
        }));
    }
    let sim2 = sim.clone();
    let tps = sim.block_on(async move {
        let t0 = sim2.now();
        for j in joins {
            j.await;
        }
        (clients as u64 * ops as u64) as f64 / (sim2.now() - t0).as_secs_f64()
    });
    (server.qp_count(), tps)
}

fn main() {
    println!("Extension: RC endpoints vs shared-UD endpoints at the server (Cluster B)");
    println!(
        "{:>10}{:>12}{:>14}{:>12}{:>14}",
        "clients", "RC QPs", "RC msgs/s", "UD QPs", "UD msgs/s"
    );
    let mut records = Vec::new();
    for clients in [4u32, 16, 64, 128] {
        let (rc_qps, rc_tps) = run(clients, false);
        let (ud_qps, ud_tps) = run(clients, true);
        println!(
            "{clients:>10}{rc_qps:>12}{:>13.1}K{ud_qps:>12}{:>13.1}K",
            rc_tps / 1e3,
            ud_tps / 1e3
        );
        for (transport, qps, tps) in [("UCR RC", rc_qps, rc_tps), ("UCR UD", ud_qps, ud_tps)] {
            records.push(
                rmc_bench::json_out::Record::new()
                    .str("op", "am_echo")
                    .str("transport", transport)
                    .str("cluster", "Cluster B (QDR)")
                    .int("size", 4)
                    .int("clients", clients as u64)
                    .int("server_qps", qps as u64)
                    .num("tps", tps),
            );
        }
    }
    rmc_bench::json_out::write("ext_ud_scale", &records);
    println!("\n(RC holds one queue pair per client at the server — memory that");
    println!("grows with the client population. UD multiplexes every client over");
    println!("a single QP at comparable throughput, which is why SVII proposes it");
    println!("for scaling the client count.)");
}
