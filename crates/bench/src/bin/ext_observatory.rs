//! Extension: the metrics observatory over the pipelined-get sweep.
//!
//! Reruns the `ext_pipeline_depth` offered-load sweep (same workload,
//! same seed) with the [`simnet::Sampler`] snapshotting the cluster's
//! counters, gauges, and watermarks on a 100 µs virtual-time interval and
//! a [`simnet::HealthMonitor`] watching the client's completion rate and
//! in-flight occupancy. Two claims are machine-checked here:
//!
//! 1. **Sampling is free in virtual time.** Every sampled run must end on
//!    the same virtual clock — and measure the bit-identical throughput —
//!    as a bare run of the same parameters.
//! 2. **The monitor finds the knee.** Replaying the sweep through
//!    [`simnet::HealthMonitor::locate_knee`] must flag the same depth
//!    step where `ext_pipeline_depth`'s curve stops scaling.
//!
//! The final cluster-B exposition is written to
//! `results/ext_observatory.prom` for the CI format validator.

use rmc::Transport;
use rmc_bench::{measure_observatory, measure_pipeline_run, ClusterKind, ObservatoryRun};
use simnet::{HealthInput, HealthMonitor, HealthRules, SimTime};

const DEPTHS: [usize; 5] = [1, 2, 4, 8, 16];
const SIZE: usize = 4;
const OPS: u32 = 1000;
const SEED: u64 = 77;

/// Renders `vals` as an 8-level sparkline, downsampled to `width` buckets
/// by bucket mean, scaled to the series maximum.
fn sparkline(vals: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if vals.is_empty() {
        return "(no samples)".into();
    }
    let buckets: Vec<f64> = if vals.len() <= width {
        vals.to_vec()
    } else {
        (0..width)
            .map(|b| {
                let lo = b * vals.len() / width;
                let hi = ((b + 1) * vals.len() / width).max(lo + 1);
                vals[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    };
    let max = buckets.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "▁".repeat(buckets.len());
    }
    buckets
        .iter()
        .map(|v| BARS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

/// The sweep replayed for knee location: one observation per depth step,
/// throughput from the run, queue signal = the in-flight high watermark
/// (offered load), no latency/error signals.
fn sweep_inputs(runs: &[(usize, f64, f64)]) -> Vec<HealthInput> {
    runs.iter()
        .enumerate()
        .map(|(i, &(_, tps, inflight))| HealthInput {
            at: SimTime::from_nanos(i as u64),
            throughput: tps,
            queue_depth: inflight,
            p99_us: 0.0,
            errors_per_sec: 0.0,
            budget_burn: 0.0,
        })
        .collect()
}

fn main() {
    println!("Extension: metrics observatory over the pipelined-get sweep (UCR, 4 B values)");
    let mut records = Vec::new();
    let mut last_prom = String::new();
    for cluster in [ClusterKind::A, ClusterKind::B] {
        println!("\n{} / UCR IB", cluster.label());
        println!(
            "{:>8} {:>11} {:>7} {:>9} {:>7} {:>10}  throughput series",
            "depth", "Kops/s", "ticks", "inflight", "queue", "health"
        );
        let mut curve: Vec<(usize, f64, f64)> = Vec::new();
        let mut bare_curve: Vec<(usize, f64, f64)> = Vec::new();
        for depth in DEPTHS {
            let obs: ObservatoryRun =
                measure_observatory(cluster, Transport::Ucr, depth, SIZE, OPS, SEED);
            // Claim 1: zero virtual-time sampling. The bare run must land
            // on the identical clock and measure the identical number.
            let (bare_tps, bare_clock) =
                measure_pipeline_run(cluster, Transport::Ucr, depth, SIZE, OPS, SEED);
            assert_eq!(
                obs.end_clock.as_nanos(),
                bare_clock.as_nanos(),
                "sampling moved the virtual clock at depth {depth}"
            );
            assert_eq!(
                obs.tps.to_bits(),
                bare_tps.to_bits(),
                "sampling changed the measured throughput at depth {depth}"
            );
            println!(
                "{:>8} {:>11.1} {:>7} {:>9.0} {:>7.0} {:>10}  {}",
                depth,
                obs.tps / 1000.0,
                obs.ticks,
                obs.inflight_high,
                obs.queue_high,
                obs.health.label(),
                sparkline(&obs.tput_series, 24)
            );
            records.push(
                rmc_bench::json_out::Record::new()
                    .str("op", "observatory")
                    .str("cluster", cluster.label())
                    .str("transport", "UCR")
                    .int("size", SIZE as u64)
                    .int("depth", depth as u64)
                    .num("tps", obs.tps)
                    .int("ticks", obs.ticks)
                    .num("inflight_high", obs.inflight_high)
                    .num("queue_high", obs.queue_high)
                    .str("health", obs.health.label())
                    .int("transitions", obs.transitions as u64),
            );
            curve.push((depth, obs.tps, obs.inflight_high));
            bare_curve.push((depth, bare_tps, obs.inflight_high));
            last_prom = obs.prom;
        }
        // Claim 2: the monitor's knee is where the curve stops scaling.
        let rules = HealthRules::default();
        let knee = HealthMonitor::locate_knee(&rules, &sweep_inputs(&curve));
        let knee_idx = knee.expect("UCR 4 B pipelining saturates within the sweep");
        println!(
            "monitor knee: depth {} (step {knee_idx} of the sweep)",
            DEPTHS[knee_idx]
        );
        // The bare curve is bit-identical, so its knee must be too — this
        // is the same check CI repeats against ext_pipeline_depth.json.
        let bare_knee = HealthMonitor::locate_knee(&rules, &sweep_inputs(&bare_curve));
        assert_eq!(
            knee, bare_knee,
            "sampled and bare sweeps disagree on the knee"
        );
        records.push(
            rmc_bench::json_out::Record::new()
                .str("op", "knee")
                .str("cluster", cluster.label())
                .str("transport", "UCR")
                .int("size", SIZE as u64)
                .int("knee_index", knee_idx as u64)
                .int("knee_depth", DEPTHS[knee_idx] as u64),
        );
    }
    rmc_bench::json_out::write("ext_observatory", &records);
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/ext_observatory.prom", &last_prom))
    {
        Ok(()) => eprintln!("wrote results/ext_observatory.prom"),
        Err(e) => eprintln!("could not write results/ext_observatory.prom: {e}"),
    }
    println!("\n(Series are sampled on a 100us virtual-time grid at zero virtual cost;");
    println!("the health monitor flags the first depth step whose marginal gain stalls.)");
}
