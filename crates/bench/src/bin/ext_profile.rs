//! Extension: profiler attribution of the worker-scaling plateau.
//!
//! PR 8's `ablation_workers` showed *that* `GlobalLock` stops scaling
//! with workers while `Sharded(16)` keeps going; this study uses the
//! virtual-time profiler to show *why*, machine-checkably. Eight clients
//! issue uniform single-key gets against an 8-worker server under both
//! lock models, on both clusters, with a `Profiler` attached. For every
//! completed request the profiler decomposes end-to-end latency into
//! critical-path stages (issue, request wire, worker queue, lock wait,
//! lock hold, service, response wire, completion) plus an explicit
//! residual, and the run asserts the attribution:
//!
//! * exactness — stage sums plus residual equal end-to-end for every
//!   single op (tolerance zero, by construction);
//! * the `GlobalLock` plateau is majority-**lock_wait** (≥ 50% of total
//!   end-to-end time at 8 workers × 8 clients);
//! * `Sharded(16)` spends < 10% of end-to-end time in lock wait — the
//!   plateau attribution, not just the plateau;
//! * the unaccounted residual stays < 5% of total time.
//!
//! Alongside the table and JSON, the merged folded span profile of every
//! configuration lands in `results/ext_profile.folded` (collapsed-stack
//! format, one `cluster.model` root frame per configuration) for direct
//! flamegraph rendering.

use std::rc::Rc;

use rmc::{McClient, McClientConfig, McServer, McServerConfig, StoreModel, Transport};
use rmc_bench::ClusterKind;
use simnet::{Metrics, NodeId, PathStage, Profiler, ProfilerConfig};

const CLIENTS: u32 = 8;
const WORKERS: usize = 8;
const MGETS_PER_CLIENT: u32 = 100;
const KEYS_PER_MGET: usize = 32;
const KEYSPACE: u64 = 1024;

fn model_label(model: StoreModel) -> &'static str {
    match model {
        StoreModel::Idealized => "idealized",
        StoreModel::GlobalLock => "global_lock",
        StoreModel::Sharded(_) => "sharded16",
    }
}

/// Deterministic xorshift stream — results files must regenerate
/// byte-identically, so no OS entropy anywhere.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

struct RunResult {
    profiler: Rc<Profiler>,
    keys_per_sec: f64,
    flight_len: u64,
    flight_dropped: u64,
}

fn measure(cluster: ClusterKind, model: StoreModel) -> RunResult {
    // One node per client plus a dedicated loader node: in detail mode
    // client request-id spaces are node-prefixed, so distinct nodes keep
    // concurrent ids collision-free.
    let world = cluster.world(47, CLIENTS + 2);
    let server = McServer::start(
        &world,
        NodeId(0),
        McServerConfig {
            workers: WORKERS,
            store_model: model,
            ..McServerConfig::default()
        },
    );
    let sim = world.sim().clone();

    // The profiler attaches before any traffic; the side metrics registry
    // receives the profiler counters and the flight-recorder gauges.
    let profiler = Profiler::attach(world.cluster.tracer(), ProfilerConfig::default());
    let metrics = Metrics::new();
    profiler.bind_metrics(&metrics);
    world.cluster.tracer().bind_flight_gauges(&metrics);

    let loader = McClient::new(
        &world,
        NodeId(CLIENTS + 1),
        McClientConfig {
            pipeline_depth: 32,
            ..McClientConfig::single(Transport::Ucr, NodeId(0))
        },
    );
    sim.block_on(async move {
        let keys: Vec<String> = (0..KEYSPACE).map(|i| format!("k{i:04}")).collect();
        let items: Vec<(&[u8], &[u8])> = keys
            .iter()
            .map(|k| (k.as_bytes(), &b"0123456789abcdef0123456789abcdef"[..]))
            .collect();
        for r in loader.set_many(&items, 0, 0).await.expect("preload") {
            r.expect("preload set");
        }
    });

    let t0 = sim.now();
    let mut joins = Vec::new();
    for c in 0..CLIENTS {
        let client = McClient::new(
            &world,
            NodeId(1 + c),
            McClientConfig::single(Transport::Ucr, NodeId(0)),
        );
        joins.push(sim.spawn(async move {
            let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (u64::from(c) + 1);
            for _ in 0..MGETS_PER_CLIENT {
                let keys: Vec<String> = (0..KEYS_PER_MGET)
                    .map(|_| format!("k{:04}", xorshift(&mut rng) % KEYSPACE))
                    .collect();
                let refs: Vec<&[u8]> = keys.iter().map(String::as_bytes).collect();
                let got = client.mget(&refs).await.expect("mget");
                assert_eq!(got.len(), KEYS_PER_MGET, "preloaded keys must all hit");
            }
        }));
    }
    let sim2 = sim.clone();
    let elapsed = sim.block_on(async move {
        for j in joins {
            j.await;
        }
        (sim2.now() - t0).as_secs_f64()
    });

    // Satellite check: the registered flight gauges mirror the recorder.
    let tracer = world.cluster.tracer();
    assert_eq!(
        metrics.gauge_value("trace.flight.len"),
        Some(tracer.flight_len() as f64),
        "flight-length gauge tracks the ring"
    );
    assert_eq!(
        metrics.gauge_value("trace.flight.dropped"),
        Some(tracer.flight_dropped() as f64),
        "flight-dropped gauge tracks the ring"
    );
    drop(server);

    RunResult {
        profiler,
        keys_per_sec: f64::from(CLIENTS * MGETS_PER_CLIENT) * KEYS_PER_MGET as f64 / elapsed,
        flight_len: tracer.flight_len() as u64,
        flight_dropped: tracer.flight_dropped(),
    }
}

fn main() {
    const MODELS: [StoreModel; 2] = [StoreModel::GlobalLock, StoreModel::Sharded(16)];
    println!(
        "Profiler attribution of the lock plateau — {CLIENTS} clients x \
         {MGETS_PER_CLIENT} x {KEYS_PER_MGET}-key mgets, {WORKERS} workers, \
         per-stage share of total end-to-end time"
    );
    let mut records = Vec::new();
    let mut folded = String::new();
    for cluster in [ClusterKind::A, ClusterKind::B] {
        println!();
        println!("{}", cluster.label());
        println!(
            "{:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "model", "keys/s", "lock_wait", "lock_hold", "service", "wire", "residual", "dominant"
        );
        for model in MODELS {
            let r = measure(cluster, model);
            let p = &r.profiler;
            // Preload sets are client ops too: one per key.
            let expected_ops = u64::from(CLIENTS * MGETS_PER_CLIENT) + KEYSPACE;
            let audit = p.audit();
            // The exactness identity is asserted per op, tolerance zero:
            // stage sum + residual == end-to-end for all of them.
            assert_eq!(
                audit.ops, expected_ops,
                "every op retired through the profiler"
            );
            assert_eq!(audit.inexact_ops, 0, "per-op exactness holds everywhere");
            assert_eq!(p.open_len(), 0, "no path left open after the run");
            assert_eq!(p.unmatched_events(), 0, "UCR ids correlate end to end");

            let wait = p.stage_share(PathStage::LockWait);
            let hold = p.stage_share(PathStage::LockHold);
            let service = p.stage_share(PathStage::Service);
            let wire =
                p.stage_share(PathStage::RequestWire) + p.stage_share(PathStage::ResponseWire);

            println!(
                "{:>12} {:>9.1}K {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>9.2}% {:>12}",
                model_label(model),
                r.keys_per_sec / 1e3,
                wait * 100.0,
                hold * 100.0,
                service * 100.0,
                wire * 100.0,
                audit.residual_share * 100.0,
                p.dominant_stage().label(),
            );

            if std::env::var("PROBE").is_err() {
                match model {
                    StoreModel::GlobalLock => assert!(
                        wait >= 0.50,
                        "GlobalLock at {WORKERS} workers must be majority lock-wait, got {wait:.3}"
                    ),
                    _ => assert!(
                        wait < 0.10,
                        "Sharded(16) must not wait on locks, got {wait:.3}"
                    ),
                }
                assert!(
                    audit.residual_share < 0.05,
                    "unaccounted time must stay under 5%, got {:.4}",
                    audit.residual_share
                );
            }

            for (path, ns) in p.folded_lines() {
                folded.push_str(&format!(
                    "{}.{};{path} {ns}\n",
                    cluster.label().replace(' ', "_"),
                    model_label(model)
                ));
            }

            let mut rec = rmc_bench::json_out::Record::new()
                .str("op", "get")
                .str("transport", "UCR IB")
                .str("cluster", cluster.label())
                .str("model", model_label(model))
                .int("workers", WORKERS as u64)
                .int("clients", u64::from(CLIENTS))
                .int("ops", audit.ops)
                .int("inexact_ops", audit.inexact_ops)
                .num("tps", r.keys_per_sec)
                .num("lock_wait_share", wait)
                .num("lock_hold_share", hold)
                .num("service_share", service)
                .num("wire_share", wire)
                .num("residual_share", audit.residual_share)
                .num("residual_abs_us", audit.residual_abs_total.as_micros_f64())
                .str("dominant_stage", p.dominant_stage().label())
                .int("flight_len", r.flight_len)
                .int("flight_dropped", r.flight_dropped);
            for (i, (sig, n)) in p.top_signatures(3).into_iter().enumerate() {
                rec = rec.str(&format!("signature_{i}"), format!("{n}x {sig}"));
            }
            records.push(rec);
        }
    }
    println!();
    println!(
        "Both models pay the same wire and service costs; the GlobalLock plateau\n\
         is lock_wait — requests queueing on the one cache_lock — while sharded\n\
         dispatch turns the same demand into parallel lock holds. Stage sums plus\n\
         residual equal end-to-end latency exactly for every single request."
    );
    rmc_bench::json_out::write("ext_profile", &records);
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/ext_profile.folded", &folded))
    {
        Ok(()) => eprintln!("wrote results/ext_profile.folded"),
        Err(e) => eprintln!("could not write results/ext_profile.folded: {e}"),
    }
}
