//! Integration tests for the storage engine: command semantics, LRU and
//! eviction, expiration, CAS, incremental hash expansion, and model-based
//! property tests.

use mcstore::{
    NumericError, SetOutcome, SlabConfig, Store, StoreConfig, ITEM_HEADER_SIZE, REALTIME_MAXDELTA,
};

fn store() -> Store {
    Store::with_defaults()
}

/// A store small enough to evict quickly: 2 pages of 64 KB.
fn tiny() -> Store {
    Store::new(StoreConfig {
        slab: SlabConfig {
            mem_limit: 128 << 10,
            page_size: 64 << 10,
            growth_factor: 2.0,
            min_chunk: 96,
        },
        ..StoreConfig::default()
    })
}

#[test]
fn set_get_round_trip() {
    let mut s = store();
    assert_eq!(s.set(b"key", b"value", 42, 0, 100), SetOutcome::Stored);
    let v = s.get(b"key", 100).unwrap();
    assert_eq!(v.data, b"value");
    assert_eq!(v.flags, 42);
    assert!(v.cas > 0);
    assert_eq!(s.curr_items(), 1);
}

#[test]
fn get_miss_and_stats() {
    let mut s = store();
    assert!(s.get(b"nope", 1).is_none());
    s.set(b"a", b"1", 0, 0, 1);
    s.get(b"a", 1);
    let st = s.stats();
    assert_eq!(st.get_misses, 1);
    assert_eq!(st.get_hits, 1);
    assert_eq!(st.sets, 1);
}

#[test]
fn set_overwrites_and_bumps_cas() {
    let mut s = store();
    s.set(b"k", b"v1", 0, 0, 1);
    let c1 = s.get(b"k", 1).unwrap().cas;
    s.set(b"k", b"v2", 0, 0, 1);
    let v = s.get(b"k", 1).unwrap();
    assert_eq!(v.data, b"v2");
    assert!(v.cas > c1);
    assert_eq!(s.curr_items(), 1, "overwrite must not duplicate");
}

#[test]
fn add_and_replace_policies() {
    let mut s = store();
    assert_eq!(s.replace(b"k", b"x", 0, 0, 1), SetOutcome::NotStored);
    assert_eq!(s.add(b"k", b"x", 0, 0, 1), SetOutcome::Stored);
    assert_eq!(s.add(b"k", b"y", 0, 0, 1), SetOutcome::NotStored);
    assert_eq!(s.replace(b"k", b"z", 0, 0, 1), SetOutcome::Stored);
    assert_eq!(s.get(b"k", 1).unwrap().data, b"z");
}

#[test]
fn cas_semantics() {
    let mut s = store();
    s.set(b"k", b"v1", 0, 0, 1);
    let tok = s.get(b"k", 1).unwrap().cas;
    // Matching CAS stores.
    assert_eq!(s.cas(b"k", b"v2", 0, 0, tok, 1), SetOutcome::Stored);
    // Stale CAS now fails.
    assert_eq!(s.cas(b"k", b"v3", 0, 0, tok, 1), SetOutcome::Exists);
    assert_eq!(s.get(b"k", 1).unwrap().data, b"v2");
    // CAS on a missing key.
    assert_eq!(s.cas(b"gone", b"x", 0, 0, 1, 1), SetOutcome::NotFound);
    let st = s.stats();
    assert_eq!(st.cas_hits, 1);
    assert_eq!(st.cas_badval, 1);
}

#[test]
fn append_prepend() {
    let mut s = store();
    assert_eq!(s.append(b"k", b"x", 1), SetOutcome::NotStored);
    s.set(b"k", b"mid", 7, 0, 1);
    assert_eq!(s.append(b"k", b"-end", 1), SetOutcome::Stored);
    assert_eq!(s.prepend(b"k", b"start-", 1), SetOutcome::Stored);
    let v = s.get(b"k", 1).unwrap();
    assert_eq!(v.data, b"start-mid-end");
    assert_eq!(v.flags, 7, "concat preserves flags");
}

#[test]
fn delete_semantics() {
    let mut s = store();
    assert!(!s.delete(b"k", 1));
    s.set(b"k", b"v", 0, 0, 1);
    assert!(s.delete(b"k", 1));
    assert!(s.get(b"k", 1).is_none());
    assert_eq!(s.curr_items(), 0);
    let st = s.stats();
    assert_eq!(st.delete_hits, 1);
    assert_eq!(st.delete_misses, 1);
}

#[test]
fn incr_decr_semantics() {
    let mut s = store();
    assert_eq!(s.incr(b"n", 1, 1), Err(NumericError::NotFound));
    s.set(b"n", b"10", 0, 0, 1);
    assert_eq!(s.incr(b"n", 5, 1), Ok(15));
    assert_eq!(s.decr(b"n", 20, 1), Ok(0), "decr clamps at zero");
    assert_eq!(s.get(b"n", 1).unwrap().data, b"0");
    // Growing digit count forces a re-store.
    s.set(b"n", b"9", 0, 0, 1);
    assert_eq!(s.incr(b"n", 1, 1), Ok(10));
    assert_eq!(s.get(b"n", 1).unwrap().data, b"10");
    // Wrap-around at u64::MAX.
    s.set(b"n", u64::MAX.to_string().as_bytes(), 0, 0, 1);
    assert_eq!(s.incr(b"n", 2, 1), Ok(1));
    // Non-numeric values refuse arithmetic.
    s.set(b"t", b"abc", 0, 0, 1);
    assert_eq!(s.incr(b"t", 1, 1), Err(NumericError::NotNumeric));
}

#[test]
fn relative_expiry_is_lazy() {
    let mut s = store();
    s.set(b"k", b"v", 0, 10, 100); // expires at t=110
    assert!(s.get(b"k", 109).is_some());
    assert!(s.get(b"k", 110).is_none(), "expired exactly at deadline");
    assert_eq!(s.curr_items(), 0, "expired item reclaimed on access");
    assert_eq!(s.stats().reclaimed, 1);
}

#[test]
fn absolute_expiry_beyond_30_days() {
    let mut s = store();
    let abs = REALTIME_MAXDELTA + 5_000;
    s.set(b"k", b"v", 0, abs, 100);
    assert!(s.get(b"k", abs - 1).is_some());
    assert!(s.get(b"k", abs).is_none());
}

#[test]
fn touch_extends_lifetime() {
    let mut s = store();
    s.set(b"k", b"v", 0, 10, 100);
    assert!(s.touch(b"k", 100, 105));
    assert!(s.get(b"k", 150).is_some());
    assert!(!s.touch(b"missing", 10, 105));
}

#[test]
fn flush_all_invalidates_older_items() {
    let mut s = store();
    s.set(b"old", b"v", 0, 0, 100);
    s.flush_all(101);
    s.set(b"new", b"v", 0, 0, 101);
    assert!(s.get(b"old", 102).is_none());
    assert!(s.get(b"new", 102).is_some());
}

#[test]
fn oversized_item_rejected() {
    let mut s = store();
    assert_eq!(
        s.set(b"k", &vec![0u8; 2 << 20], 0, 0, 1),
        SetOutcome::TooLarge
    );
}

#[test]
fn key_length_limit() {
    let mut s = store();
    let long = vec![b'k'; 251];
    assert_eq!(s.set(&long, b"v", 0, 0, 1), SetOutcome::NotStored);
    let ok = vec![b'k'; 250];
    assert_eq!(s.set(&ok, b"v", 0, 0, 1), SetOutcome::Stored);
}

#[test]
fn lru_eviction_removes_least_recent() {
    let mut s = tiny();
    // Fill one class until eviction kicks in. Values ~1000 B.
    let val = vec![7u8; 1000];
    let mut stored = Vec::new();
    for i in 0..500u32 {
        let key = format!("key-{i:05}");
        if s.set(key.as_bytes(), &val, 0, 0, 1) == SetOutcome::Stored {
            stored.push(key);
        }
    }
    let st = s.stats();
    assert!(st.evictions > 0, "tiny store must evict");
    // The most recently stored keys survive; the earliest were evicted.
    let last = stored.last().unwrap();
    assert!(s.get(last.as_bytes(), 1).is_some());
    assert!(s.get(stored[0].as_bytes(), 1).is_none());
}

#[test]
fn get_bumps_lru_protecting_hot_items() {
    let mut s = tiny();
    let val = vec![7u8; 1000];
    s.set(b"hot", &val, 0, 0, 1);
    let mut i = 0u32;
    // Keep touching "hot" while flooding; it must survive.
    while s.stats().evictions < 200 {
        let key = format!("cold-{i:06}");
        s.set(key.as_bytes(), &val, 0, 0, 1);
        s.get(b"hot", 1);
        i += 1;
        assert!(i < 100_000, "eviction never started");
    }
    assert!(s.get(b"hot", 1).is_some(), "hot item evicted despite gets");
}

#[test]
fn expired_tail_items_are_reclaimed_before_evicting() {
    let mut s = tiny();
    let val = vec![7u8; 1000];
    // Fill with items that all expire at t=50.
    let mut i = 0u32;
    while s.stats().evictions == 0 && i < 200 {
        s.set(format!("a{i}").as_bytes(), &val, 0, 40, 10);
        i += 1;
    }
    let evictions_before = s.stats().evictions;
    // After expiry, new stores should reclaim, not evict.
    for j in 0..20u32 {
        assert_eq!(
            s.set(format!("b{j}").as_bytes(), &val, 0, 0, 100),
            SetOutcome::Stored
        );
    }
    let st = s.stats();
    assert!(st.reclaimed >= 20, "expired items should be reclaimed");
    assert_eq!(st.evictions, evictions_before, "no live evictions needed");
}

#[test]
fn hash_expansion_preserves_all_items() {
    // Small initial table forces several expansions.
    let mut s = Store::new(StoreConfig {
        hashpower: 4, // 16 buckets
        ..StoreConfig::default()
    });
    let n = 2_000u32;
    for i in 0..n {
        let key = format!("key-{i}");
        assert_eq!(
            s.set(key.as_bytes(), format!("val-{i}").as_bytes(), 0, 0, 1),
            SetOutcome::Stored
        );
    }
    assert!(s.stats().hash_expansions >= 1 || s.is_expanding());
    assert!(s.bucket_count() > 16);
    for i in 0..n {
        let key = format!("key-{i}");
        let v = s.get(key.as_bytes(), 1).unwrap();
        assert_eq!(v.data, format!("val-{i}").as_bytes());
    }
    // Deletions during/after expansion work too.
    for i in (0..n).step_by(3) {
        assert!(s.delete(format!("key-{i}").as_bytes(), 1));
    }
    for i in 0..n {
        let present = s.get(format!("key-{i}").as_bytes(), 1).is_some();
        assert_eq!(present, i % 3 != 0);
    }
}

#[test]
fn bytes_accounting_is_consistent() {
    let mut s = store();
    assert_eq!(s.bytes_stored(), 0);
    s.set(b"abc", b"12345", 0, 0, 1);
    assert_eq!(s.bytes_stored(), 8);
    s.set(b"abc", b"1", 0, 0, 1);
    assert_eq!(s.bytes_stored(), 4);
    s.delete(b"abc", 1);
    assert_eq!(s.bytes_stored(), 0);
}

#[test]
fn item_header_constant_matches_class_selection() {
    let s = store();
    // A value that fits exactly with header+key must select a class at
    // least that large.
    let key = b"0123456789";
    let vlen = 100;
    let class = s
        .slabs()
        .class_for(ITEM_HEADER_SIZE + key.len() + vlen)
        .unwrap();
    assert!(s.slabs().chunk_size(class) >= ITEM_HEADER_SIZE + key.len() + vlen);
}

// ---------------------------------------------------------------------
// Model-based property tests
// ---------------------------------------------------------------------

mod properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Clone, Debug)]
    enum Op {
        Set(u8, Vec<u8>),
        Add(u8, Vec<u8>),
        Replace(u8, Vec<u8>),
        Get(u8),
        Delete(u8),
        Append(u8, Vec<u8>),
        Incr(u8, u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let key = 0u8..24;
        let val = proptest::collection::vec(any::<u8>(), 0..64);
        prop_oneof![
            (key.clone(), val.clone()).prop_map(|(k, v)| Op::Set(k, v)),
            (key.clone(), val.clone()).prop_map(|(k, v)| Op::Add(k, v)),
            (key.clone(), val.clone()).prop_map(|(k, v)| Op::Replace(k, v)),
            key.clone().prop_map(Op::Get),
            key.clone().prop_map(Op::Delete),
            (key.clone(), val).prop_map(|(k, v)| Op::Append(k, v)),
            (key, any::<u16>()).prop_map(|(k, d)| Op::Incr(k, d)),
        ]
    }

    proptest! {
        /// With ample memory (no eviction), the store must behave exactly
        /// like a HashMap under any operation sequence.
        #[test]
        fn store_matches_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut s = Store::with_defaults();
            let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
            let now = 1000u32;
            for op in ops {
                match op {
                    Op::Set(k, v) => {
                        let key = vec![b'k', k];
                        prop_assert_eq!(s.set(&key, &v, 0, 0, now), SetOutcome::Stored);
                        model.insert(key, v);
                    }
                    Op::Add(k, v) => {
                        let key = vec![b'k', k];
                        let outcome = s.add(&key, &v, 0, 0, now);
                        if let std::collections::hash_map::Entry::Vacant(e) = model.entry(key) {
                            prop_assert_eq!(outcome, SetOutcome::Stored);
                            e.insert(v);
                        } else {
                            prop_assert_eq!(outcome, SetOutcome::NotStored);
                        }
                    }
                    Op::Replace(k, v) => {
                        let key = vec![b'k', k];
                        let outcome = s.replace(&key, &v, 0, 0, now);
                        if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(key) {
                            prop_assert_eq!(outcome, SetOutcome::Stored);
                            e.insert(v);
                        } else {
                            prop_assert_eq!(outcome, SetOutcome::NotStored);
                        }
                    }
                    Op::Get(k) => {
                        let key = vec![b'k', k];
                        let got = s.get(&key, now).map(|v| v.data);
                        prop_assert_eq!(got, model.get(&key).cloned());
                    }
                    Op::Delete(k) => {
                        let key = vec![b'k', k];
                        let deleted = s.delete(&key, now);
                        prop_assert_eq!(deleted, model.remove(&key).is_some());
                    }
                    Op::Append(k, v) => {
                        let key = vec![b'k', k];
                        let outcome = s.append(&key, &v, now);
                        match model.get_mut(&key) {
                            Some(existing) => {
                                prop_assert_eq!(outcome, SetOutcome::Stored);
                                existing.extend_from_slice(&v);
                            }
                            None => prop_assert_eq!(outcome, SetOutcome::NotStored),
                        }
                    }
                    Op::Incr(k, d) => {
                        let key = vec![b'k', k];
                        let result = s.incr(&key, d as u64, now);
                        match model.get_mut(&key) {
                            None => prop_assert_eq!(result, Err(NumericError::NotFound)),
                            Some(existing) => {
                                let parsed: Result<u64, _> = std::str::from_utf8(existing)
                                    .map_err(|_| ())
                                    .and_then(|t| t.trim().parse().map_err(|_| ()));
                                match parsed {
                                    Ok(cur) => {
                                        let newv = cur.wrapping_add(d as u64);
                                        prop_assert_eq!(result, Ok(newv));
                                        *existing = newv.to_string().into_bytes();
                                    }
                                    Err(()) => {
                                        prop_assert_eq!(result, Err(NumericError::NotNumeric));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(s.curr_items(), model.len() as u64);
        }

        /// Under memory pressure the store may evict, but it must never
        /// return a value that was not the most recent write for its key.
        #[test]
        fn eviction_never_resurrects_stale_data(
            keys in proptest::collection::vec(0u8..40, 100..400),
        ) {
            let mut s = tiny();
            let mut latest: HashMap<u8, u32> = HashMap::new();
            for (gen, k) in keys.iter().enumerate() {
                let gen = gen as u32;
                let key = [b'k', *k];
                let value = format!("{k}-{gen}-{}", "x".repeat(800));
                if s.set(&key, value.as_bytes(), 0, 0, 1) == SetOutcome::Stored {
                    latest.insert(*k, gen);
                }
                if let Some(v) = s.get(&key, 1) {
                    let text = String::from_utf8(v.data).unwrap();
                    let want_prefix = format!("{k}-{}-", latest[k]);
                    prop_assert!(
                        text.starts_with(&want_prefix),
                        "stale value resurfaced: got {text}, want prefix {want_prefix}"
                    );
                }
            }
        }

        /// Slab accounting: after arbitrary set/delete churn, freeing
        /// everything leaves zero used chunks in every class.
        #[test]
        fn slab_accounting_balances(ops in proptest::collection::vec((0u8..30, 1usize..2000), 1..200)) {
            let mut s = Store::with_defaults();
            for (k, size) in &ops {
                s.set(&[b'a', *k], &vec![0u8; *size], 0, 0, 1);
            }
            for k in 0u8..30 {
                s.delete(&[b'a', k], 1);
            }
            prop_assert_eq!(s.curr_items(), 0);
            prop_assert_eq!(s.bytes_stored(), 0);
            for c in 0..s.slabs().class_count() {
                let st = s.slabs().class_stats(mcstore::ClassId(c as u8));
                prop_assert_eq!(st.used, 0, "class {} leaks chunks", c);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sharded store: real threads
// ---------------------------------------------------------------------

mod sharded {
    use mcstore::{SetOutcome, ShardedStore, StoreConfig};

    #[test]
    fn basic_ops_route_correctly() {
        let s = ShardedStore::new(StoreConfig::default(), 8);
        assert_eq!(s.shard_count(), 8);
        for i in 0..1000u32 {
            let key = format!("key-{i}");
            assert_eq!(
                s.set(key.as_bytes(), format!("v{i}").as_bytes(), 0, 0, 1),
                SetOutcome::Stored
            );
        }
        for i in 0..1000u32 {
            let key = format!("key-{i}");
            assert_eq!(
                s.get(key.as_bytes(), 1).unwrap().data,
                format!("v{i}").as_bytes()
            );
        }
        assert_eq!(s.curr_items(), 1000);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let s = ShardedStore::new(StoreConfig::default(), 8);
        let threads = 8;
        let per_thread = 2_000u32;
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let s = &s;
                scope.spawn(move |_| {
                    // Each thread owns a key range: no cross-thread races
                    // on individual keys, full contention on shards.
                    for i in 0..per_thread {
                        let key = format!("t{t}-k{i}");
                        assert_eq!(
                            s.set(key.as_bytes(), key.as_bytes(), 0, 0, 1),
                            SetOutcome::Stored
                        );
                        let v = s.get(key.as_bytes(), 1).unwrap();
                        assert_eq!(v.data, key.as_bytes());
                        if i % 3 == 0 {
                            assert!(s.delete(key.as_bytes(), 1));
                        }
                    }
                });
            }
        })
        .unwrap();
        let expected: u64 = (0..threads)
            .map(|_| (0..per_thread).filter(|i| i % 3 != 0).count() as u64)
            .sum();
        assert_eq!(s.curr_items(), expected);
    }

    #[test]
    fn concurrent_counters_do_not_lose_updates() {
        let s = ShardedStore::new(StoreConfig::default(), 4);
        s.set(b"ctr", b"0", 0, 0, 1);
        let threads = 8;
        let bumps = 1_000u64;
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                let s = &s;
                scope.spawn(move |_| {
                    for _ in 0..bumps {
                        s.incr(b"ctr", 1, 1).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let v = s.get(b"ctr", 1).unwrap();
        let total: u64 = String::from_utf8(v.data).unwrap().parse().unwrap();
        assert_eq!(total, threads as u64 * bumps);
    }
}

// ---------------------------------------------------------------------
// Additional coverage: interplay of expiry/flush/concat, class moves
// ---------------------------------------------------------------------

#[test]
fn touch_cannot_resurrect_flushed_items() {
    let mut s = store();
    s.set(b"k", b"v", 0, 0, 100);
    s.flush_all(101);
    assert!(!s.touch(b"k", 100, 102), "flushed item is gone");
}

#[test]
fn append_preserves_expiry() {
    let mut s = store();
    s.set(b"k", b"v", 0, 10, 100); // expires at 110
    s.append(b"k", b"w", 105);
    assert!(s.get(b"k", 109).is_some());
    assert!(s.get(b"k", 111).is_none(), "append must not extend the TTL");
}

#[test]
fn incr_preserves_expiry_across_class_move() {
    let mut s = store();
    s.set(b"n", b"9", 0, 10, 100); // expires at 110
                                   // Growing to "10" re-stores the item; expiry must carry over.
    assert_eq!(s.incr(b"n", 1, 105), Ok(10));
    assert!(s.get(b"n", 109).is_some());
    assert!(s.get(b"n", 111).is_none());
}

#[test]
fn value_resize_moves_between_classes_without_leaks() {
    let mut s = store();
    let small_class = s
        .slabs()
        .class_for(mcstore::ITEM_HEADER_SIZE + 1 + 10)
        .unwrap();
    let big_class = s
        .slabs()
        .class_for(mcstore::ITEM_HEADER_SIZE + 1 + 5000)
        .unwrap();
    assert_ne!(small_class, big_class);
    s.set(b"k", &[1u8; 10], 0, 0, 1);
    assert_eq!(s.slabs().class_stats(small_class).used, 1);
    s.set(b"k", &vec![1u8; 5000], 0, 0, 1);
    assert_eq!(
        s.slabs().class_stats(small_class).used,
        0,
        "old chunk freed"
    );
    assert_eq!(s.slabs().class_stats(big_class).used, 1);
    s.delete(b"k", 1);
    assert_eq!(s.slabs().class_stats(big_class).used, 0);
}

#[test]
fn cas_tokens_are_globally_unique_and_increasing() {
    let mut s = store();
    let mut last = 0u64;
    for i in 0..50u32 {
        s.set(format!("k{i}").as_bytes(), b"v", 0, 0, 1);
        let cas = s.get(format!("k{i}").as_bytes(), 1).unwrap().cas;
        assert!(cas > last, "CAS must increase monotonically");
        last = cas;
    }
}

#[test]
fn lru_tail_key_reports_coldest_item() {
    use mcstore::ClassId;
    let mut s = store();
    s.set(b"first", b"v", 0, 0, 1);
    s.set(b"second", b"v", 0, 0, 1);
    let class = s
        .slabs()
        .class_for(mcstore::ITEM_HEADER_SIZE + 5 + 1)
        .unwrap();
    assert_eq!(s.lru_tail_key(class), Some(b"first".to_vec()));
    // A get bumps "first" to the front; "second" becomes the tail.
    s.get(b"first", 1);
    assert_eq!(s.lru_tail_key(class), Some(b"second".to_vec()));
    let empty = ClassId((s.slabs().class_count() - 1) as u8);
    assert_eq!(s.lru_tail_key(empty), None);
}

#[test]
fn zero_length_values_are_legal() {
    let mut s = store();
    assert_eq!(s.set(b"empty", b"", 3, 0, 1), SetOutcome::Stored);
    let v = s.get(b"empty", 1).unwrap();
    assert!(v.data.is_empty());
    assert_eq!(v.flags, 3);
}

#[test]
fn eviction_disabled_returns_out_of_memory() {
    let mut s = Store::new(StoreConfig {
        slab: SlabConfig {
            mem_limit: 64 << 10,
            page_size: 64 << 10,
            growth_factor: 2.0,
            min_chunk: 96,
        },
        evict_on_full: false, // memcached -M
        ..StoreConfig::default()
    });
    let val = vec![1u8; 1000];
    let mut stored = 0;
    let mut oom = false;
    for i in 0..200u32 {
        match s.set(format!("k{i}").as_bytes(), &val, 0, 0, 1) {
            SetOutcome::Stored => stored += 1,
            SetOutcome::OutOfMemory => {
                oom = true;
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(oom, "-M mode must refuse instead of evicting");
    assert!(stored > 0);
    assert_eq!(s.stats().evictions, 0);
}

#[test]
fn expired_item_is_invisible_to_every_operation() {
    let mut s = store();
    s.set(b"k", b"5", 0, 5, 100); // dead at 105
    assert!(!s.delete(b"k", 105), "delete sees no expired item");
    s.set(b"k", b"5", 0, 5, 100);
    assert_eq!(s.incr(b"k", 1, 105), Err(NumericError::NotFound));
    s.set(b"k", b"5", 0, 5, 100);
    assert_eq!(s.append(b"k", b"x", 105), SetOutcome::NotStored);
    s.set(b"k", b"5", 0, 5, 100);
    // add succeeds over an expired body.
    assert_eq!(s.add(b"k", b"new", 0, 0, 105), SetOutcome::Stored);
}

#[test]
fn hash_expansion_happens_incrementally() {
    let mut s = Store::new(StoreConfig {
        hashpower: 4,
        migrate_per_op: 1, // slowest legal migration
        ..StoreConfig::default()
    });
    for i in 0..60u32 {
        s.set(format!("k{i}").as_bytes(), b"v", 0, 0, 1);
    }
    assert!(s.is_expanding(), "expansion should be mid-flight");
    // Items remain reachable mid-expansion.
    for i in 0..60u32 {
        assert!(s.get(format!("k{i}").as_bytes(), 1).is_some(), "k{i}");
    }
    // Enough operations finish the migration.
    for _ in 0..200 {
        s.get(b"k0", 1);
    }
    assert!(!s.is_expanding());
    assert!(s.stats().hash_expansions >= 1);
}

// ---------------------------------------------------------------------
// stats sub-report surfaces
// ---------------------------------------------------------------------

#[test]
fn slab_and_item_stat_lines_reflect_contents() {
    let mut s = store();
    assert!(s.slab_stat_lines().iter().any(|(k, _)| k == "active_slabs"));
    assert!(s.item_stat_lines().is_empty(), "empty store, no item lines");
    s.set(b"small", &[1u8; 10], 0, 0, 1);
    s.set(b"large", &vec![1u8; 8000], 0, 0, 1);
    let slabs = s.slab_stat_lines();
    let classes_with_pages = slabs
        .iter()
        .filter(|(k, _)| k.ends_with(":total_pages"))
        .count();
    assert_eq!(classes_with_pages, 2, "two distinct classes populated");
    let items = s.item_stat_lines();
    let total: u32 = items
        .iter()
        .filter(|(k, _)| k.ends_with(":number"))
        .map(|(_, v)| v.parse::<u32>().unwrap())
        .sum();
    assert_eq!(total, 2);
    s.delete(b"small", 1);
    let total_after: u32 = s
        .item_stat_lines()
        .iter()
        .filter(|(k, _)| k.ends_with(":number"))
        .map(|(_, v)| v.parse::<u32>().unwrap())
        .sum();
    assert_eq!(total_after, 1);
}
