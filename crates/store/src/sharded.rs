//! A thread-safe, sharded wrapper around [`Store`].
//!
//! Real memcached serializes cache access behind a global lock (worker
//! threads contend on it); sharding by key hash is the standard way to cut
//! that contention. This type exists for wall-clock parallel use — stress
//! tests and Criterion benches drive it from real threads — while the
//! simulation uses plain [`Store`] single-threaded.

use parking_lot::Mutex;

use crate::shard::ShardRouter;
use crate::store::{NumericError, SetOutcome, Store, StoreConfig, StoreStats, Value};

/// `Store` behind N hash-routed shards. All methods take `&self`.
///
/// Routing and memory-cap splitting are delegated to [`ShardRouter`], the
/// same policy the simulation's `SegmentedStore` uses — hash→shard logic
/// lives exactly once.
pub struct ShardedStore {
    shards: Vec<Mutex<Store>>,
    router: ShardRouter,
}

impl ShardedStore {
    /// Creates `shards` (rounded up to a power of two) stores with the
    /// memory limit split losslessly across them.
    pub fn new(config: StoreConfig, shards: usize) -> ShardedStore {
        let router = ShardRouter::new(shards);
        ShardedStore {
            shards: router
                .split_config(config)
                .into_iter()
                .map(|c| Mutex::new(Store::new(c)))
                .collect(),
            router,
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<Store> {
        &self.shards[self.router.index(key)]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// See [`Store::set`].
    pub fn set(&self, key: &[u8], value: &[u8], flags: u32, exptime: u32, now: u32) -> SetOutcome {
        self.shard(key).lock().set(key, value, flags, exptime, now)
    }

    /// See [`Store::add`].
    pub fn add(&self, key: &[u8], value: &[u8], flags: u32, exptime: u32, now: u32) -> SetOutcome {
        self.shard(key).lock().add(key, value, flags, exptime, now)
    }

    /// See [`Store::replace`].
    pub fn replace(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        now: u32,
    ) -> SetOutcome {
        self.shard(key)
            .lock()
            .replace(key, value, flags, exptime, now)
    }

    /// See [`Store::cas`].
    pub fn cas(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        cas: u64,
        now: u32,
    ) -> SetOutcome {
        self.shard(key)
            .lock()
            .cas(key, value, flags, exptime, cas, now)
    }

    /// See [`Store::append`].
    pub fn append(&self, key: &[u8], data: &[u8], now: u32) -> SetOutcome {
        self.shard(key).lock().append(key, data, now)
    }

    /// See [`Store::prepend`].
    pub fn prepend(&self, key: &[u8], data: &[u8], now: u32) -> SetOutcome {
        self.shard(key).lock().prepend(key, data, now)
    }

    /// See [`Store::get`].
    pub fn get(&self, key: &[u8], now: u32) -> Option<Value> {
        self.shard(key).lock().get(key, now)
    }

    /// See [`Store::delete`].
    pub fn delete(&self, key: &[u8], now: u32) -> bool {
        self.shard(key).lock().delete(key, now)
    }

    /// See [`Store::incr`].
    pub fn incr(&self, key: &[u8], delta: u64, now: u32) -> Result<u64, NumericError> {
        self.shard(key).lock().incr(key, delta, now)
    }

    /// See [`Store::decr`].
    pub fn decr(&self, key: &[u8], delta: u64, now: u32) -> Result<u64, NumericError> {
        self.shard(key).lock().decr(key, delta, now)
    }

    /// See [`Store::touch`].
    pub fn touch(&self, key: &[u8], exptime: u32, now: u32) -> bool {
        self.shard(key).lock().touch(key, exptime, now)
    }

    /// Flushes every shard.
    pub fn flush_all(&self, now: u32) {
        for s in &self.shards {
            s.lock().flush_all(now);
        }
    }

    /// Aggregated statistics across shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.shards {
            total.merge(&s.lock().stats());
        }
        total
    }

    /// Total live items across shards.
    pub fn curr_items(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().curr_items()).sum()
    }
}
