//! A thread-safe, sharded wrapper around [`Store`].
//!
//! Real memcached serializes cache access behind a global lock (worker
//! threads contend on it); sharding by key hash is the standard way to cut
//! that contention. This type exists for wall-clock parallel use — stress
//! tests and Criterion benches drive it from real threads — while the
//! simulation uses plain [`Store`] single-threaded.

use parking_lot::Mutex;

use crate::store::{hash_key, NumericError, SetOutcome, Store, StoreConfig, StoreStats, Value};

/// `Store` behind N hash-routed shards. All methods take `&self`.
pub struct ShardedStore {
    shards: Vec<Mutex<Store>>,
    mask: usize,
}

impl ShardedStore {
    /// Creates `shards` (rounded up to a power of two) stores, each with a
    /// proportional share of the memory limit.
    pub fn new(mut config: StoreConfig, shards: usize) -> ShardedStore {
        let n = shards.max(1).next_power_of_two();
        config.slab.mem_limit = (config.slab.mem_limit / n).max(config.slab.page_size);
        ShardedStore {
            shards: (0..n).map(|_| Mutex::new(Store::new(config))).collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<Store> {
        // Use the upper hash bits for shard routing so the lower bits
        // remain well distributed for the per-shard bucket index.
        let h = hash_key(key);
        &self.shards[((h >> 48) as usize) & self.mask]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// See [`Store::set`].
    pub fn set(&self, key: &[u8], value: &[u8], flags: u32, exptime: u32, now: u32) -> SetOutcome {
        self.shard(key).lock().set(key, value, flags, exptime, now)
    }

    /// See [`Store::add`].
    pub fn add(&self, key: &[u8], value: &[u8], flags: u32, exptime: u32, now: u32) -> SetOutcome {
        self.shard(key).lock().add(key, value, flags, exptime, now)
    }

    /// See [`Store::replace`].
    pub fn replace(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        now: u32,
    ) -> SetOutcome {
        self.shard(key)
            .lock()
            .replace(key, value, flags, exptime, now)
    }

    /// See [`Store::cas`].
    pub fn cas(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        cas: u64,
        now: u32,
    ) -> SetOutcome {
        self.shard(key)
            .lock()
            .cas(key, value, flags, exptime, cas, now)
    }

    /// See [`Store::append`].
    pub fn append(&self, key: &[u8], data: &[u8], now: u32) -> SetOutcome {
        self.shard(key).lock().append(key, data, now)
    }

    /// See [`Store::prepend`].
    pub fn prepend(&self, key: &[u8], data: &[u8], now: u32) -> SetOutcome {
        self.shard(key).lock().prepend(key, data, now)
    }

    /// See [`Store::get`].
    pub fn get(&self, key: &[u8], now: u32) -> Option<Value> {
        self.shard(key).lock().get(key, now)
    }

    /// See [`Store::delete`].
    pub fn delete(&self, key: &[u8], now: u32) -> bool {
        self.shard(key).lock().delete(key, now)
    }

    /// See [`Store::incr`].
    pub fn incr(&self, key: &[u8], delta: u64, now: u32) -> Result<u64, NumericError> {
        self.shard(key).lock().incr(key, delta, now)
    }

    /// See [`Store::decr`].
    pub fn decr(&self, key: &[u8], delta: u64, now: u32) -> Result<u64, NumericError> {
        self.shard(key).lock().decr(key, delta, now)
    }

    /// See [`Store::touch`].
    pub fn touch(&self, key: &[u8], exptime: u32, now: u32) -> bool {
        self.shard(key).lock().touch(key, exptime, now)
    }

    /// Flushes every shard.
    pub fn flush_all(&self, now: u32) {
        for s in &self.shards {
            s.lock().flush_all(now);
        }
    }

    /// Aggregated statistics across shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.shards {
            let st = s.lock().stats();
            total.get_hits += st.get_hits;
            total.get_misses += st.get_misses;
            total.sets += st.sets;
            total.evictions += st.evictions;
            total.reclaimed += st.reclaimed;
            total.delete_hits += st.delete_hits;
            total.delete_misses += st.delete_misses;
            total.cas_hits += st.cas_hits;
            total.cas_badval += st.cas_badval;
            total.incr_hits += st.incr_hits;
            total.total_items += st.total_items;
            total.hash_expansions += st.hash_expansions;
        }
        total
    }

    /// Total live items across shards.
    pub fn curr_items(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().curr_items()).sum()
    }
}
