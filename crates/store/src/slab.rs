//! Slab allocator, after memcached's `slabs.c`.
//!
//! Memory is obtained in fixed-size pages (1 MB by default) and carved into
//! equal chunks per *slab class*; class chunk sizes grow geometrically by a
//! configurable factor (memcached's `-f`, default 1.25). An item is stored
//! in the smallest class whose chunk fits its header + key + value. Pages
//! are never returned between classes — exactly the fragmentation-avoidance
//! behaviour that makes it impossible for Memcached clients to cache item
//! addresses, one of the paper's arguments (§III) against the Blue Gene
//! design's client-side hash table split.
//!
//! Unlike an accounting-only model, chunks here own real bytes: items are
//! written into and read out of page memory, so property tests can verify
//! no two live items ever overlap.

use std::fmt;

/// Identifies a slab class (index into the class table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClassId(pub u8);

/// The location of an allocated chunk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlabLoc {
    /// Owning class.
    pub class: ClassId,
    /// Page index within the class.
    page: u32,
    /// Chunk index within the page.
    chunk: u32,
}

impl SlabLoc {
    /// A placeholder location (class 0, page 0, chunk 0) for slots whose
    /// real location is assigned immediately after.
    pub fn placeholder() -> SlabLoc {
        SlabLoc {
            class: ClassId(0),
            page: 0,
            chunk: 0,
        }
    }

    /// Page index within the owning class.
    pub fn page(&self) -> u32 {
        self.page
    }

    /// Chunk index within the page.
    pub fn chunk(&self) -> u32 {
        self.chunk
    }
}

struct SlabClass {
    /// Chunk size in bytes (includes the modeled item header).
    chunk_size: u32,
    /// Chunks per page.
    per_page: u32,
    /// Page storage (each page is one Vec).
    pages: Vec<Box<[u8]>>,
    /// Free chunk list.
    free: Vec<SlabLoc>,
    /// Number of chunks handed out.
    used: u32,
    /// Total allocation requests.
    alloc_count: u64,
    /// Per-chunk seqlock-style versions, indexed `page * per_page + chunk`.
    /// A version changes exactly when the chunk's contents (or liveness)
    /// change, which is what lets a remote reader detect that a directly
    /// read chunk raced with a writer (RFP-style bypass gets).
    versions: Vec<u64>,
}

/// Configuration for the allocator.
#[derive(Clone, Copy, Debug)]
pub struct SlabConfig {
    /// Total memory limit (memcached `-m`), bytes.
    pub mem_limit: usize,
    /// Page size (memcached's `settings.item_size_max`), bytes.
    pub page_size: usize,
    /// Geometric growth factor between classes (memcached `-f`).
    pub growth_factor: f64,
    /// Smallest chunk size.
    pub min_chunk: usize,
}

impl Default for SlabConfig {
    fn default() -> Self {
        SlabConfig {
            mem_limit: 64 << 20,
            page_size: 1 << 20,
            growth_factor: 1.25,
            min_chunk: 96,
        }
    }
}

/// Per-class statistics snapshot.
#[derive(Clone, Copy, Debug)]
pub struct ClassStats {
    /// Chunk size of the class.
    pub chunk_size: u32,
    /// Pages assigned.
    pub pages: u32,
    /// Chunks in use.
    pub used: u32,
    /// Chunks free.
    pub free: u32,
    /// Allocation requests served.
    pub alloc_count: u64,
}

/// The slab allocator.
pub struct SlabAllocator {
    classes: Vec<SlabClass>,
    config: SlabConfig,
    mem_allocated: usize,
}

impl SlabAllocator {
    /// Builds the class table from the configuration.
    pub fn new(config: SlabConfig) -> SlabAllocator {
        assert!(config.growth_factor > 1.0, "growth factor must exceed 1");
        assert!(config.min_chunk >= 48, "chunks must fit an item header");
        assert!(config.page_size >= config.min_chunk);
        let mut classes = Vec::new();
        let mut size = config.min_chunk;
        while size < config.page_size && classes.len() < 62 {
            let aligned = size.next_multiple_of(8);
            classes.push(SlabClass {
                chunk_size: aligned as u32,
                per_page: (config.page_size / aligned) as u32,
                pages: Vec::new(),
                free: Vec::new(),
                used: 0,
                alloc_count: 0,
                versions: Vec::new(),
            });
            size = ((aligned as f64) * config.growth_factor).ceil() as usize;
        }
        // Final class: one chunk per page (largest storable item).
        classes.push(SlabClass {
            chunk_size: config.page_size as u32,
            per_page: 1,
            pages: Vec::new(),
            free: Vec::new(),
            used: 0,
            alloc_count: 0,
            versions: Vec::new(),
        });
        SlabAllocator {
            classes,
            config,
            mem_allocated: 0,
        }
    }

    /// Number of slab classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Chunk size of a class.
    pub fn chunk_size(&self, class: ClassId) -> usize {
        self.classes[class.0 as usize].chunk_size as usize
    }

    /// The smallest class whose chunks hold `size` bytes; `None` if the
    /// item exceeds the largest chunk (memcached: SERVER_ERROR object too
    /// large for cache).
    pub fn class_for(&self, size: usize) -> Option<ClassId> {
        // Classes are sorted by chunk size: binary search the first fit.
        let idx = self
            .classes
            .partition_point(|c| (c.chunk_size as usize) < size);
        (idx < self.classes.len()).then_some(ClassId(idx as u8))
    }

    /// Allocates a chunk in `class`. `None` when the class has no free
    /// chunk and the memory limit forbids another page — the caller (the
    /// store) must then evict.
    pub fn alloc(&mut self, class: ClassId) -> Option<SlabLoc> {
        let limit = self.config.mem_limit;
        let page_size = self.config.page_size;
        let c = &mut self.classes[class.0 as usize];
        c.alloc_count += 1;
        if let Some(loc) = c.free.pop() {
            c.used += 1;
            return Some(loc);
        }
        if self.mem_allocated + page_size > limit {
            return None;
        }
        // Grab a fresh page and carve it.
        let page_idx = c.pages.len() as u32;
        c.pages.push(vec![0u8; page_size].into_boxed_slice());
        c.versions.resize(c.versions.len() + c.per_page as usize, 0);
        self.mem_allocated += page_size;
        for chunk in (1..c.per_page).rev() {
            c.free.push(SlabLoc {
                class,
                page: page_idx,
                chunk,
            });
        }
        c.used += 1;
        Some(SlabLoc {
            class,
            page: page_idx,
            chunk: 0,
        })
    }

    /// Returns a chunk to its class's free list.
    pub fn free(&mut self, loc: SlabLoc) {
        let c = &mut self.classes[loc.class.0 as usize];
        debug_assert!(!c.free.contains(&loc), "double free of slab chunk {loc:?}");
        c.used -= 1;
        c.free.push(loc);
    }

    /// Writes `data` at `offset` within the chunk.
    pub fn write(&mut self, loc: SlabLoc, offset: usize, data: &[u8]) {
        let c = &mut self.classes[loc.class.0 as usize];
        let chunk_size = c.chunk_size as usize;
        assert!(offset + data.len() <= chunk_size, "write outside chunk");
        let base = loc.chunk as usize * chunk_size;
        let page = &mut c.pages[loc.page as usize];
        page[base + offset..base + offset + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes at `offset` within the chunk.
    pub fn read(&self, loc: SlabLoc, offset: usize, len: usize) -> &[u8] {
        let c = &self.classes[loc.class.0 as usize];
        let chunk_size = c.chunk_size as usize;
        assert!(offset + len <= chunk_size, "read outside chunk");
        let base = loc.chunk as usize * chunk_size;
        &c.pages[loc.page as usize][base + offset..base + offset + len]
    }

    /// Current seqlock version of the chunk at `loc`.
    pub fn version(&self, loc: SlabLoc) -> u64 {
        let c = &self.classes[loc.class.0 as usize];
        c.versions[(loc.page * c.per_page + loc.chunk) as usize]
    }

    /// Bumps the chunk's version and returns the new value. The store
    /// calls this on every mutation that changes the chunk's contents or
    /// liveness (set / in-place arithmetic / touch / delete / eviction /
    /// flush), so a remote bypass reader comparing versions observes any
    /// concurrent write as a mismatch.
    pub fn bump_version(&mut self, loc: SlabLoc) -> u64 {
        let c = &mut self.classes[loc.class.0 as usize];
        let v = &mut c.versions[(loc.page * c.per_page + loc.chunk) as usize];
        *v += 1;
        *v
    }

    /// Chunks per page of a class.
    pub fn chunks_per_page(&self, class: ClassId) -> u32 {
        self.classes[class.0 as usize].per_page
    }

    /// Pages currently assigned to a class.
    pub fn page_count(&self, class: ClassId) -> u32 {
        self.classes[class.0 as usize].pages.len() as u32
    }

    /// Raw bytes of one whole chunk addressed by indices (no `SlabLoc`
    /// needed): used by the server's bypass mirror to snapshot a page.
    pub fn chunk_raw(&self, class: ClassId, page: u32, chunk: u32) -> &[u8] {
        let c = &self.classes[class.0 as usize];
        let chunk_size = c.chunk_size as usize;
        let base = chunk as usize * chunk_size;
        &c.pages[page as usize][base..base + chunk_size]
    }

    /// Version of the chunk addressed by indices.
    pub fn version_at(&self, class: ClassId, page: u32, chunk: u32) -> u64 {
        let c = &self.classes[class.0 as usize];
        c.versions[(page * c.per_page + chunk) as usize]
    }

    /// Total bytes of pages grabbed from the OS.
    pub fn mem_allocated(&self) -> usize {
        self.mem_allocated
    }

    /// The configured memory limit.
    pub fn mem_limit(&self) -> usize {
        self.config.mem_limit
    }

    /// Statistics for one class.
    pub fn class_stats(&self, class: ClassId) -> ClassStats {
        let c = &self.classes[class.0 as usize];
        ClassStats {
            chunk_size: c.chunk_size,
            pages: c.pages.len() as u32,
            used: c.used,
            free: c.free.len() as u32,
            alloc_count: c.alloc_count,
        }
    }
}

impl fmt::Debug for SlabAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SlabAllocator({} classes, {}/{} bytes)",
            self.classes.len(),
            self.mem_allocated,
            self.config.mem_limit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SlabAllocator {
        SlabAllocator::new(SlabConfig {
            mem_limit: 4 << 20,
            page_size: 1 << 20,
            growth_factor: 1.25,
            min_chunk: 96,
        })
    }

    #[test]
    fn class_sizes_grow_geometrically() {
        let s = small();
        let mut prev = 0usize;
        for i in 0..s.class_count() - 1 {
            let sz = s.chunk_size(ClassId(i as u8));
            assert!(sz > prev, "class sizes must increase");
            assert_eq!(sz % 8, 0, "chunk sizes are 8-aligned");
            prev = sz;
        }
        assert_eq!(s.chunk_size(ClassId((s.class_count() - 1) as u8)), 1 << 20);
    }

    #[test]
    fn class_for_picks_smallest_fit() {
        let s = small();
        let c = s.class_for(100).unwrap();
        assert!(s.chunk_size(c) >= 100);
        if c.0 > 0 {
            assert!(s.chunk_size(ClassId(c.0 - 1)) < 100);
        }
        // Exactly a chunk size fits that class.
        let sz = s.chunk_size(ClassId(3));
        assert_eq!(s.class_for(sz).unwrap(), ClassId(3));
        // Oversized objects are rejected.
        assert!(s.class_for((1 << 20) + 1).is_none());
        // The largest storable item fits the last class.
        assert_eq!(
            s.class_for(1 << 20).unwrap(),
            ClassId((s.class_count() - 1) as u8)
        );
    }

    #[test]
    fn alloc_free_reuse() {
        let mut s = small();
        let class = s.class_for(500).unwrap();
        let a = s.alloc(class).unwrap();
        let b = s.alloc(class).unwrap();
        assert_ne!(a, b);
        s.free(a);
        let c = s.alloc(class).unwrap();
        assert_eq!(c, a, "freed chunk is reused");
        s.free(b);
        s.free(c);
        assert_eq!(s.class_stats(class).used, 0);
    }

    #[test]
    fn memory_limit_is_enforced() {
        let mut s = small(); // 4 pages total
        let class = s.class_for(900_000).unwrap(); // 1 chunk per page
        let mut got = Vec::new();
        while let Some(loc) = s.alloc(class) {
            got.push(loc);
        }
        assert_eq!(got.len(), 4, "exactly mem_limit/page_size big chunks");
        assert_eq!(s.mem_allocated(), 4 << 20);
        // Freeing lets allocation proceed again.
        s.free(got.pop().unwrap());
        assert!(s.alloc(class).is_some());
    }

    #[test]
    fn pages_are_not_shared_across_classes() {
        let mut s = small();
        let c1 = s.class_for(100).unwrap();
        let c2 = s.class_for(10_000).unwrap();
        let a = s.alloc(c1).unwrap();
        let b = s.alloc(c2).unwrap();
        assert_eq!(a.class, c1);
        assert_eq!(b.class, c2);
        // Each grabbed its own page.
        assert_eq!(s.mem_allocated(), 2 << 20);
    }

    #[test]
    fn data_round_trips_and_does_not_bleed() {
        let mut s = small();
        let class = s.class_for(256).unwrap();
        let a = s.alloc(class).unwrap();
        let b = s.alloc(class).unwrap();
        s.write(a, 0, &[0xaa; 256]);
        s.write(b, 0, &[0xbb; 256]);
        assert!(s.read(a, 0, 256).iter().all(|&x| x == 0xaa));
        assert!(s.read(b, 0, 256).iter().all(|&x| x == 0xbb));
        // Offset writes.
        s.write(a, 100, b"hello");
        assert_eq!(s.read(a, 100, 5), b"hello");
        assert_eq!(s.read(a, 0, 1)[0], 0xaa);
    }

    #[test]
    #[should_panic(expected = "write outside chunk")]
    fn chunk_overflow_is_caught() {
        let mut s = small();
        let class = s.class_for(96).unwrap();
        let size = s.chunk_size(class);
        let a = s.alloc(class).unwrap();
        s.write(a, size - 2, &[1, 2, 3]);
    }

    #[test]
    fn alloc_counter_tracks_requests() {
        let mut s = small();
        let class = s.class_for(200).unwrap();
        for _ in 0..10 {
            let loc = s.alloc(class).unwrap();
            s.free(loc);
        }
        assert_eq!(s.class_stats(class).alloc_count, 10);
    }
}
