//! # mcstore — the memcached storage engine
//!
//! The in-memory cache the paper's system serves: slab allocation
//! (`slabs.c`), a chained hash table with incremental expansion
//! (`assoc.c`), per-class LRU with expired-tail reclaim, lazy expiration,
//! `flush_all` barriers, CAS, and the full storage/arithmetic command set
//! (`items.c`/`memcached.c` semantics). [`Store`] is the pure, clock-free
//! engine; [`SegmentedStore`] splits it into hash-routed segments for the
//! simulated server (one segment = the classic unsharded layout); and
//! [`ShardedStore`] is a thread-safe wrapper exercised by real threads in
//! stress tests and benches. All sharding routes through one
//! [`ShardRouter`] policy.
//!
//! ```
//! use mcstore::{SetOutcome, Store};
//!
//! let mut store = Store::with_defaults();
//! assert_eq!(store.set(b"k", b"v1", 0, 0, 100), SetOutcome::Stored);
//! let v = store.get(b"k", 100).unwrap();
//! assert_eq!(v.data, b"v1");
//! // CAS: a concurrent change invalidates the token.
//! store.set(b"k", b"v2", 0, 0, 101);
//! assert_eq!(store.cas(b"k", b"v3", 0, 0, v.cas, 101), SetOutcome::Exists);
//! ```

#![warn(missing_docs)]

mod shard;
mod sharded;
mod slab;
mod store;

pub use shard::{SegmentedStore, ShardRouter};
pub use sharded::ShardedStore;
pub use slab::{ClassId, ClassStats, SlabAllocator, SlabConfig, SlabLoc};
pub use store::{
    hash_key, normalize_exptime, ItemLocation, NumericError, SetOutcome, SlabEvent, Store,
    StoreConfig, StoreStats, Value, ITEM_HEADER_SIZE, MAX_KEY_LEN, REALTIME_MAXDELTA,
};
